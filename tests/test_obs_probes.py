"""Tests for the live Theorem 5 envelope probes."""

from __future__ import annotations

import dataclasses

import pytest

from repro.adversary.mobile import single_burst_plan
from repro.adversary.strategies import LiarStrategy
from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.metrics.sampler import CorruptionInterval, good_set
from repro.obs import EventBus, FlightRecorder, Theorem5Probe
from repro.obs.probes import violations_from_events
from repro.runner.builders import (
    benign_scenario,
    default_params,
    mobile_byzantine_scenario,
)
from repro.runner.experiment import run


def make_clocks(n, rate=1.0):
    return {node: LogicalClock(FixedRateClock(rho=5e-4, rate=rate))
            for node in range(n)}


@pytest.fixture
def params():
    return default_params(n=4, f=1, pi=2.0)


class TestGoodSetTracking:
    def test_matches_offline_good_set(self, params):
        """Online tracking agrees with the offline Definition 3 helper."""
        probe = Theorem5Probe(params, make_clocks(params.n))
        bus = EventBus(clock=lambda: now[0])
        bus.subscribe(probe.on_event)
        now = [3.0]
        bus.publish("adv.break_in", node=2, strategy="liar")
        now = [5.0]
        bus.publish("adv.release", node=2, strategy="liar")
        intervals = [CorruptionInterval(2, 3.0, 5.0)]
        for tau in (5.5, 6.9, 7.0, 7.1, 10.0):
            expected = good_set(intervals, tau, params.pi, params.n)
            assert probe.good_set(tau) == expected, tau

    def test_controlled_node_is_bad_immediately(self, params):
        probe = Theorem5Probe(params, make_clocks(params.n))
        bus = EventBus()
        bus.subscribe(probe.on_event)
        bus.publish("adv.break_in", node=1, strategy="silent")
        assert 1 not in probe.good_set(100.0)


class TestDeviationProbe:
    def test_clean_clocks_never_fire(self, params):
        probe = Theorem5Probe(params, make_clocks(params.n))
        for i in range(50):
            probe.on_sample(i * 0.1)
        assert probe.ok and probe.first_violation() is None

    def test_fires_once_and_rearms(self, params):
        clocks = make_clocks(params.n)
        probe = Theorem5Probe(params, clocks)
        probe.on_sample(0.0)
        # Push node 0 far from the rest, hold, then bring it back.
        clocks[0].adjust(0.5, 1.0)
        probe.on_sample(1.0)
        probe.on_sample(2.0)
        clocks[0].adjust(2.5, -1.0)
        probe.on_sample(3.0)
        clocks[0].adjust(3.5, 1.0)
        probe.on_sample(4.0)
        deviations = [v for v in probe.violations if v.probe == "deviation"]
        # Edge-triggered: one alert per excursion, not per sample.
        assert len(deviations) == 2
        assert deviations[0].time == 1.0
        assert deviations[0].node is None
        assert deviations[0].measured == pytest.approx(1.0, rel=1e-6)

    def test_warmup_suppresses_checks(self, params):
        clocks = make_clocks(params.n)
        probe = Theorem5Probe(params, clocks, warmup=5.0)
        clocks[0].adjust(0.1, 1.0)
        probe.on_sample(1.0)
        assert probe.ok
        probe.on_sample(6.0)
        assert not probe.ok


class TestAccuracyProbes:
    def test_discontinuity_fires_on_oversized_correction(self, params):
        clocks = make_clocks(params.n)
        probe = Theorem5Probe(params, clocks)
        probe.on_sample(0.0)
        big = 10 * probe.discontinuity_bound
        clocks[1].adjust(0.5, big)
        probe.on_sample(1.0)
        kinds = {v.probe for v in probe.violations}
        assert "discontinuity" in kinds
        discontinuity = next(v for v in probe.violations
                             if v.probe == "discontinuity")
        assert discontinuity.node == 1
        assert discontinuity.measured == pytest.approx(big)

    def test_small_corrections_stay_within_envelope(self, params):
        clocks = make_clocks(params.n)
        probe = Theorem5Probe(params, clocks)
        probe.on_sample(0.0)
        clocks[2].adjust(0.5, probe.discontinuity_bound * 0.5)
        probe.on_sample(1.0)
        assert probe.ok

    def test_drift_fires_on_silent_jump(self, params):
        """A bias change with no recorded adjustment breaks the envelope."""
        clocks = make_clocks(params.n)
        probe = Theorem5Probe(params, clocks)
        probe.on_sample(0.0)
        clocks[3].adj += 0.5  # hijack without an adjustment record
        probe.on_sample(1.0)
        assert [v.probe for v in probe.violations
                if v.node == 3] == ["drift"]

    def test_node_rejoining_good_set_needs_fresh_anchor(self, params):
        """No envelope check on the first good sample after a break-in."""
        clocks = make_clocks(params.n)
        probe = Theorem5Probe(params, clocks)
        bus = EventBus(clock=lambda: 0.5)
        bus.subscribe(probe.on_event)
        probe.on_sample(0.0)
        bus.publish("adv.break_in", node=0, strategy="random-clock")
        clocks[0].adj += 100.0  # adversary scrambles the clock
        bus.publish("adv.release", node=0, strategy="random-clock")
        # After release + PI the node is good again; its first good
        # sample only anchors the envelope, so the scramble while bad
        # cannot be (mis)attributed to drift.
        tau = 0.5 + params.pi + 1.0
        probe.on_sample(tau)
        assert all(v.node != 0 for v in probe.violations)


class TestEndToEnd:
    def test_default_adversarial_run_is_clean(self):
        recorder = FlightRecorder()
        run(mobile_byzantine_scenario(duration=20.0, seed=1),
            recorder=recorder)
        assert recorder.violations == []

    def test_scripted_break_in_fires_before_run_end(self):
        """An over-powerful adversary (f-limit bypassed) trips the probes
        mid-run, before the post-hoc verdict would see anything."""
        params = default_params(n=4, f=1, pi=2.0)

        def plan(scenario, clocks):
            return single_burst_plan(
                nodes=[2, 3], start=5.0, dwell=8.0,
                strategy_factory=lambda node, ep: LiarStrategy(offset=500.0))

        scenario = benign_scenario(params, duration=20.0, seed=3)
        scenario = dataclasses.replace(scenario, plan_builder=plan,
                                       enforce_f_limit=False,
                                       name="scripted-break-in")
        recorder = FlightRecorder()
        run(scenario, recorder=recorder)
        assert not recorder.probe.ok
        first = recorder.probe.first_violation()
        assert first.probe == "deviation"
        assert 5.0 <= first.time < scenario.duration
        # The stream carries the violations for offline analysis.
        replayed = violations_from_events(recorder.events)
        assert [v.probe for v in replayed] \
            == [v.probe for v in recorder.violations]
        assert replayed[0].time == first.time
