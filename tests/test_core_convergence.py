"""Unit tests for convergence functions (Figure 1 semantics)."""

from __future__ import annotations

import math

import pytest

from repro.core.convergence import (
    ClampedConvergence,
    CorrectionDecision,
    MeanConvergence,
    MidpointConvergence,
    PaperConvergence,
    TrimmedMeanConvergence,
    kth_largest,
    kth_smallest,
    paper_order_statistics,
)
from repro.core.estimation import ClockEstimate, timeout_estimate
from repro.errors import ParameterError


def est(peer: int, d: float, a: float = 0.0) -> ClockEstimate:
    return ClockEstimate(peer=peer, distance=d, accuracy=a)


class TestOrderStatistics:
    def test_kth_smallest(self):
        assert kth_smallest([5.0, 1.0, 3.0], 0) == 1.0
        assert kth_smallest([5.0, 1.0, 3.0], 1) == 3.0
        assert kth_smallest([5.0, 1.0, 3.0], 2) == 5.0

    def test_kth_largest(self):
        assert kth_largest([5.0, 1.0, 3.0], 0) == 5.0
        assert kth_largest([5.0, 1.0, 3.0], 2) == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            kth_smallest([1.0], 1)
        with pytest.raises(ParameterError):
            kth_largest([1.0], -1)


class TestPaperConvergence:
    def test_all_agree_no_correction(self):
        cf = PaperConvergence()
        estimates = [est(i, 0.0) for i in range(7)]
        assert cf.correction(estimates, f=2, way_off=1.0) == 0.0

    def test_moves_halfway_to_consensus(self):
        """All peers report +1.0 (exactly): m = M = 1, own clock at 0;
        correction = (min(1,0) + max(1,0)) / 2 = 0.5 — move half-way."""
        cf = PaperConvergence()
        estimates = [est(i, 1.0) for i in range(6)] + [est(6, 0.0)]  # self at 0
        correction = cf.correction(estimates, f=2, way_off=10.0)
        assert correction == pytest.approx(0.5)

    def test_f_extreme_liars_are_discarded(self):
        """f liars at +/- huge cannot move m or M beyond the good range."""
        cf = PaperConvergence()
        good = [est(i, 0.0) for i in range(5)]
        liars = [est(5, 1e9), est(6, -1e9)]
        correction = cf.correction(good + liars, f=2, way_off=1.0)
        assert abs(correction) <= 1e-9

    def test_f_colluding_liars_one_side_bounded_by_good_values(self):
        """f liars pulling one way shift m/M at most to the extreme good
        value: with goods spread [0, 0.4], correction stays within it."""
        cf = PaperConvergence()
        goods = [est(i, 0.1 * i) for i in range(5)]  # 0.0 .. 0.4
        liars = [est(5, 1e6), est(6, 1e6)]
        correction = cf.correction(goods + liars, f=2, way_off=10.0)
        assert 0.0 <= correction <= 0.4

    def test_way_off_branch_jumps_to_midpoint(self):
        """Own clock hopelessly low: every peer reports ~+10 with
        WayOff=1 -> ignore own clock, jump to (m + M) / 2."""
        cf = PaperConvergence()
        estimates = [est(i, 10.0) for i in range(6)] + [est(6, 0.0)]
        correction = cf.correction(estimates, f=2, way_off=1.0)
        assert correction == pytest.approx(10.0)

    def test_inside_way_off_keeps_own_clock_influence(self):
        """Peers at +2 with WayOff=5: own clock still credible, move
        half-way (+1), not all the way."""
        cf = PaperConvergence()
        estimates = [est(i, 2.0) for i in range(6)] + [est(6, 0.0)]
        correction = cf.correction(estimates, f=2, way_off=5.0)
        assert correction == pytest.approx(1.0)

    def test_reading_errors_widen_selection(self):
        """With accuracy a, overestimates are d+a and underestimates
        d-a; symmetric spread cancels in the midpoint."""
        cf = PaperConvergence()
        estimates = [est(i, 0.5, a=0.1) for i in range(7)]
        correction = cf.correction(estimates, f=2, way_off=10.0)
        # m = 0.6 (overestimates), M = 0.4 (underestimates); own clock at
        # 0 extends the interval: (min(0.6, 0) + max(0.4, 0)) / 2 = 0.2.
        assert correction == pytest.approx(0.2)

    def test_up_to_f_timeouts_tolerated(self):
        cf = PaperConvergence()
        estimates = [est(i, 0.2) for i in range(5)] + [timeout_estimate(5), timeout_estimate(6)]
        correction = cf.correction(estimates, f=2, way_off=10.0)
        assert correction == pytest.approx(0.1)

    def test_between_f_and_nf_timeouts_still_safe(self):
        """With f < timeouts <= n - f - 1 the order statistics remain
        finite and pinned to good values."""
        cf = PaperConvergence()
        estimates = [est(i, 0.2) for i in range(4)] + [timeout_estimate(i) for i in range(4, 7)]
        assert cf.correction(estimates, f=2, way_off=10.0) == pytest.approx(0.1)

    def test_too_few_finite_estimates_noop(self):
        """When so many peers time out that the f+1-st statistics are
        infinite, the protocol refuses to move the clock."""
        cf = PaperConvergence()
        estimates = [est(0, 0.2), est(1, 0.2)] + [timeout_estimate(i) for i in range(2, 7)]
        assert cf.correction(estimates, f=2, way_off=10.0) == 0.0

    def test_too_few_estimates_rejected(self):
        cf = PaperConvergence()
        with pytest.raises(ParameterError):
            cf.correction([est(0, 0.0)], f=2, way_off=1.0)

    def test_order_statistics_helper_matches(self):
        estimates = [est(i, float(i)) for i in range(7)]
        m, big_m = paper_order_statistics(estimates, f=2)
        assert m == 2.0
        assert big_m == 4.0


class TestClampedConvergence:
    def test_small_corrections_pass_through(self):
        cf = ClampedConvergence(PaperConvergence(), max_step=1.0)
        estimates = [est(i, 0.5) for i in range(6)] + [est(6, 0.0)]
        inner = PaperConvergence().correction(estimates, 2, 10.0)
        assert cf.correction(estimates, 2, 10.0) == pytest.approx(inner)

    def test_large_corrections_clamped(self):
        cf = ClampedConvergence(PaperConvergence(), max_step=0.1)
        estimates = [est(i, 100.0) for i in range(6)] + [est(6, 0.0)]
        assert cf.correction(estimates, 2, 1.0) == pytest.approx(0.1)

    def test_clamps_negative_side(self):
        cf = ClampedConvergence(PaperConvergence(), max_step=0.1)
        estimates = [est(i, -100.0) for i in range(6)] + [est(6, 0.0)]
        assert cf.correction(estimates, 2, 1.0) == pytest.approx(-0.1)

    def test_bad_max_step_rejected(self):
        with pytest.raises(ParameterError):
            ClampedConvergence(PaperConvergence(), max_step=0.0)


class TestMeanConvergence:
    def test_mean_of_finite(self):
        cf = MeanConvergence()
        estimates = [est(0, 1.0), est(1, 3.0), timeout_estimate(2)]
        assert cf.correction(estimates, f=1, way_off=1.0) == pytest.approx(2.0)

    def test_single_liar_hijacks(self):
        """The vulnerability the paper's CF avoids."""
        cf = MeanConvergence()
        estimates = [est(i, 0.0) for i in range(6)] + [est(6, 1e6)]
        assert cf.correction(estimates, f=2, way_off=1.0) > 1e5

    def test_all_timeouts_noop(self):
        cf = MeanConvergence()
        assert cf.correction([timeout_estimate(i) for i in range(3)], 1, 1.0) == 0.0


class TestTrimmedMeanConvergence:
    def test_trims_f_extremes(self):
        cf = TrimmedMeanConvergence()
        estimates = [est(0, -1e9), est(1, 1e9)] + [est(i, 0.5) for i in range(2, 7)]
        assert cf.correction(estimates, f=1, way_off=1.0) == pytest.approx(0.5)

    def test_needs_more_than_2f(self):
        cf = TrimmedMeanConvergence()
        with pytest.raises(ParameterError):
            cf.correction([est(0, 0.0), est(1, 0.0)], f=1, way_off=1.0)


class TestMidpointConvergence:
    def test_midpoint_of_trimmed_range(self):
        cf = MidpointConvergence()
        estimates = [est(i, d) for i, d in enumerate([-5.0, 0.0, 1.0, 2.0, 7.0])]
        # f=1: low = 2nd smallest = 0.0, high = 2nd largest = 2.0.
        assert cf.correction(estimates, f=1, way_off=1.0) == pytest.approx(1.0)

    def test_timeouts_pushed_to_extremes(self):
        cf = MidpointConvergence()
        estimates = [est(i, 1.0) for i in range(4)] + [timeout_estimate(4)]
        assert cf.correction(estimates, f=1, way_off=1.0) == pytest.approx(1.0)

    def test_infinite_statistics_noop(self):
        cf = MidpointConvergence()
        estimates = [est(0, 1.0)] + [timeout_estimate(i) for i in range(1, 5)]
        assert cf.correction(estimates, f=1, way_off=1.0) == 0.0


class TestCorrectionDecision:
    """decide() reports the Figure 1 branch from the same computation that
    produced the correction, so traces cannot silently diverge."""

    def test_credible_branch_not_discarded(self):
        cf = PaperConvergence()
        estimates = [est(i, 0.1) for i in range(7)]
        decision = cf.decide(estimates, f=2, way_off=1.0)
        assert isinstance(decision, CorrectionDecision)
        assert not decision.own_discarded
        assert decision.correction == cf.correction(estimates, f=2, way_off=1.0)

    def test_way_off_branch_discards_own_clock(self):
        cf = PaperConvergence()
        estimates = [est(i, 50.0) for i in range(7)]  # everyone far ahead
        decision = cf.decide(estimates, f=2, way_off=1.0)
        assert decision.own_discarded
        # Line 12: unconditional jump to the interval midpoint.
        assert decision.correction == pytest.approx((decision.m + decision.big_m) / 2.0)

    def test_degenerate_statistics_not_a_branch(self):
        cf = PaperConvergence()
        estimates = [est(0, 0.0)] + [timeout_estimate(i) for i in range(1, 7)]
        decision = cf.decide(estimates, f=2, way_off=1.0)
        assert decision.correction == 0.0
        assert not decision.own_discarded
        assert math.isinf(decision.m)

    def test_statistics_match_standalone_helper(self):
        cf = PaperConvergence()
        estimates = [est(i, 0.3 * i, 0.05) for i in range(7)]
        decision = cf.decide(estimates, f=2, way_off=10.0)
        m, big_m = paper_order_statistics(estimates, 2)
        assert (decision.m, decision.big_m) == (m, big_m)

    def test_clamped_preserves_branch_report(self):
        cf = ClampedConvergence(PaperConvergence(), max_step=0.01)
        estimates = [est(i, 50.0) for i in range(7)]
        decision = cf.decide(estimates, f=2, way_off=1.0)
        assert decision.own_discarded        # inner branch survives the clamp
        assert decision.correction == 0.01   # but the step is capped

    def test_baseline_decide_never_discards(self):
        cf = MeanConvergence()
        estimates = [est(i, 50.0) for i in range(7)]  # would be WayOff for paper
        decision = cf.decide(estimates, f=2, way_off=1.0)
        assert not decision.own_discarded
        assert decision.correction == cf.correction(estimates, f=2, way_off=1.0)

    def test_baseline_decide_reports_nan_when_no_statistics(self):
        cf = MeanConvergence()
        estimates = [est(0, 1.0)]  # too few for the f+1 statistics
        decision = cf.decide(estimates, f=2, way_off=1.0)
        assert math.isnan(decision.m) and math.isnan(decision.big_m)
