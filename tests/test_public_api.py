"""Public-API smoke tests: the documented entry points work as written."""

from __future__ import annotations

import pytest

import repro


def test_readme_quickstart_verbatim():
    """The README quickstart, executed as documented."""
    from repro import default_params, mobile_byzantine_scenario, run
    from repro.runner.builders import warmup_for

    params = default_params(n=7, f=2, delta=0.005, rho=5e-4, pi=2.0)
    result = run(mobile_byzantine_scenario(params, duration=20.0, seed=1))

    verdict = result.verdict(warmup=warmup_for(params))
    assert verdict.all_ok

    recovery = result.recovery()
    assert recovery.all_recovered
    assert recovery.max_recovery_time < params.pi


def test_all_top_level_exports_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_exports_exist():
    import repro.adversary
    import repro.clocks
    import repro.core
    import repro.metrics
    import repro.net
    import repro.protocols
    import repro.runner
    import repro.service
    import repro.sim

    for module in (repro.adversary, repro.clocks, repro.core, repro.metrics,
                   repro.net, repro.protocols, repro.runner, repro.service,
                   repro.sim):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name}"


def test_version_is_consistent():
    import importlib.metadata

    assert repro.__version__ == "0.1.0"
    try:
        installed = importlib.metadata.version("repro")
    except importlib.metadata.PackageNotFoundError:
        pytest.skip("package not installed")
    assert installed == repro.__version__


def test_registered_protocol_inventory():
    """The protocol registry carries the documented set."""
    from repro.protocols import registered_protocols

    expected = {
        "sync", "drift-only", "averaging", "minimal-correction",
        "round-based", "broadcast-detected", "broadcast-undetected",
        "srikanth-toueg", "interactive-convergence", "drift-compensating",
        "cached-naive", "cached-compensated",
    }
    assert expected <= set(registered_protocols())
