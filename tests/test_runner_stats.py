"""Tests for replication statistics."""

from __future__ import annotations

import pytest

from repro.errors import MeasurementError
from repro.runner.builders import benign_scenario, default_params, warmup_for
from repro.runner.stats import replicate_measure, summarize_replications


class TestSummarize:
    def test_known_values(self):
        summary = summarize_replications([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.mean == pytest.approx(3.0)
        assert summary.std == pytest.approx(1.5811388, rel=1e-6)
        # 95% t CI with df=4: t = 2.776; half-width = t*std/sqrt(5).
        assert summary.half_width == pytest.approx(2.776 * 1.5811388 / 5 ** 0.5,
                                                   rel=1e-3)
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_single_value_degenerates(self):
        summary = summarize_replications([7.0])
        assert summary.mean == 7.0
        assert summary.ci_low == summary.ci_high == 7.0
        assert summary.std == 0.0

    def test_identical_values_zero_width(self):
        summary = summarize_replications([2.0, 2.0, 2.0])
        assert summary.half_width == pytest.approx(0.0)

    def test_higher_confidence_wider(self):
        values = [1.0, 2.0, 3.0, 4.0]
        narrow = summarize_replications(values, confidence=0.80)
        wide = summarize_replications(values, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            summarize_replications([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(MeasurementError):
            summarize_replications([1.0], confidence=1.5)

    def test_str_format(self):
        text = str(summarize_replications([1.0, 2.0, 3.0]))
        assert "±" in text and "95% CI" in text and "n=3" in text


class TestReplicateMeasure:
    def test_deviation_over_seeds(self):
        params = default_params(n=4, f=1)
        summary = replicate_measure(
            lambda seed: benign_scenario(params, duration=3.0, seed=seed),
            lambda result: result.max_deviation(warmup_for(params)),
            seeds=[1, 2, 3],
        )
        assert summary.n == 3
        assert 0.0 < summary.mean < params.bounds().max_deviation
        assert len(summary.values) == 3
        assert summary.ci_high < params.bounds().max_deviation
