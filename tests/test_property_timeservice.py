"""Property-based tests for the secure time service invariants."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.runner.builders import benign_scenario, default_params
from repro.runner.experiment import run
from repro.service import SecureTimeService, Timestamp


_RESULT = None


def synced_service(node=0):
    """A service over a real (cached) run; hypothesis reuses it."""
    global _RESULT
    if _RESULT is None:
        params = default_params(n=4, f=1)
        _RESULT = run(benign_scenario(params, duration=3.0, seed=50))
    return SecureTimeService(_RESULT.processes[node], _RESULT.params)


ages = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
offsets = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


@given(max_age=st.floats(0.0, 10.0, allow_nan=False), offset=offsets)
def test_validation_window_is_exact(max_age, offset):
    """validate_timestamp accepts exactly the window
    [-skew-extra, max_age+skew+extra] of apparent age."""
    service = synced_service()
    ts = Timestamp(value=service.now() - offset, issuer=1)
    accepted = service.validate_timestamp(ts, max_age=max_age)
    allowance = service.skew + service.extra
    in_window = -allowance <= offset <= max_age + allowance
    assert accepted == in_window


@given(max_age=st.floats(0.0, 10.0, allow_nan=False),
       extra_age=st.floats(0.001, 100.0, allow_nan=False))
def test_validation_monotone_in_age(max_age, extra_age):
    """If a timestamp is rejected as stale, any older one is too."""
    service = synced_service()
    base = service.now()
    younger = Timestamp(value=base - max_age, issuer=1)
    older = Timestamp(value=base - max_age - extra_age, issuer=1)
    if not service.validate_timestamp(younger, max_age):
        assert not service.validate_timestamp(older, max_age)


@given(ttl=st.floats(0.0, 50.0, allow_nan=False))
def test_safe_expiry_never_eagerly_expired(ttl):
    """An item stamped via safe_expiry is not expired under either rule
    at issue time."""
    service = synced_service()
    expiry = service.safe_expiry(ttl)
    assert not service.is_expired(expiry, conservative=True)
    assert not service.is_expired(expiry, conservative=False)


@given(expiry_offset=offsets)
def test_conservative_implies_eager(expiry_offset):
    """Certainly-expired implies possibly-expired, never the reverse."""
    service = synced_service()
    expiry = service.now() + expiry_offset
    if service.is_expired(expiry, conservative=True):
        assert service.is_expired(expiry, conservative=False)


@given(length=st.floats(0.5, 10.0, allow_nan=False))
def test_epoch_consistent_with_now(length):
    service = synced_service()
    epoch = service.epoch(length)
    now = service.now()
    assert epoch * length <= now < (epoch + 2) * length
