"""Combined-chaos integration: everything at once, guarantees intact.

One long scenario stacking every stressor the repository models —
rotating Byzantine corruption with the full strategy mix, 5% random
message loss, scheduled link outages, heavy one-sided delay jitter,
wandering clocks, staggered sync phases — and asserts the Theorem 5
verdict plus universal recovery.  The chaos run is the closest thing to
a production environment the simulator can express.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.net.links import JitteredDelay
from repro.runner.builders import (
    default_params,
    mobile_byzantine_scenario,
    warmup_for,
)
from repro.runner.experiment import run


@pytest.fixture(scope="module")
def chaos_result():
    params = default_params(n=7, f=2)
    scenario = mobile_byzantine_scenario(
        params, duration=30.0, seed=77,
        delay_model=JitteredDelay(params.delta, base=0.1 * params.delta,
                                  jitter_mean=0.4 * params.delta),
        loss_rate=0.05,
    )

    # Layer scheduled link outages on top via a wrapping factory.
    from repro.protocols.base import protocol_factory
    inner = protocol_factory("sync")
    armed = []

    def factory(runtime, params_, start_phase):
        if not armed:
            for k, (u, v) in enumerate(((0, 1), (2, 3), (4, 5), (1, 6))):
                start = 3.0 + 6.0 * k
                runtime.network.schedule_outage(u, v, start=start, end=start + 1.0)
            armed.append(True)
        return inner(runtime, params_, start_phase)

    return run(dataclasses.replace(scenario, protocol=factory))


class TestChaos:
    def test_theorem5_verdict(self, chaos_result):
        params = chaos_result.params
        verdict = chaos_result.verdict(warmup=warmup_for(params))
        assert verdict.all_ok, verdict

    def test_every_victim_recovers(self, chaos_result):
        report = chaos_result.recovery()
        assert len(report.events) >= 10
        assert report.all_recovered
        assert report.max_recovery_time < chaos_result.params.pi

    def test_all_nodes_were_corrupted(self, chaos_result):
        assert {c.node for c in chaos_result.corruptions} \
            == set(range(chaos_result.params.n))

    def test_loss_actually_happened(self, chaos_result):
        """The chaos must be real: messages were dropped, syncs saw
        timeouts, yet the bound held."""
        starved = [r for r in chaos_result.trace.syncs
                   if r.replies < chaos_result.params.n - 1]
        assert starved, "expected some syncs with missing replies"

    def test_tail_deviation_far_below_bound(self, chaos_result):
        """Typical-case quality: even under chaos the p95 deviation is
        a small fraction of the worst-case bound."""
        params = chaos_result.params
        pct = chaos_result.deviation_percentiles(warmup=warmup_for(params))
        assert pct[95.0] <= 0.2 * params.bounds().max_deviation
