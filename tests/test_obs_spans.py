"""Tests for span tracing and the Chrome trace export."""

from __future__ import annotations

import json

from repro.obs import EventBus, SpanTracer, chrome_trace
from repro.obs.spans import write_chrome_trace


def make_bus_with_tracer():
    now = [0.0]
    bus = EventBus(clock=lambda: now[0])
    tracer = SpanTracer()
    bus.subscribe(tracer.on_event)
    return now, bus, tracer


class TestSpanTree:
    def test_sync_span_parents_estimates(self):
        now, bus, tracer = make_bus_with_tracer()
        bus.publish("sync.begin", node=0, round=1, local=0.0)
        bus.publish("est.ping", node=0, peer=1, round=1, pings=1)
        bus.publish("est.ping", node=0, peer=2, round=1, pings=1)
        now[0] = 0.004
        bus.publish("est.pong", node=0, peer=1, round=1, rtt=0.004,
                    distance=0.001, accuracy=0.002)
        now[0] = 0.01
        bus.publish("sync.complete", node=0, round=1, correction=0.001,
                    m=0.0, big_m=0.0, own_discarded=False, replies=1,
                    local_before=0.01)

        sync = tracer.sync_spans()[0]
        assert (sync.span_id, sync.status) == ("n0:r1", "ok")
        assert sync.start == 0.0 and sync.end == 0.01
        assert sync.attrs["correction"] == 0.001

        estimates = tracer.estimate_spans()
        assert [s.span_id for s in estimates] == ["n0:r1:p1", "n0:r1:p2"]
        assert all(s.parent_id == "n0:r1" for s in estimates)
        ok, timed_out = estimates
        assert ok.status == "ok" and ok.end == 0.004
        assert ok.attrs["rtt"] == 0.004
        # Peer 2 never answered: closed as timeout at the sync deadline.
        assert timed_out.status == "timeout" and timed_out.end == 0.01

    def test_explicit_timeout_event_closes_estimate(self):
        now, bus, tracer = make_bus_with_tracer()
        bus.publish("sync.begin", node=3, round=2, local=0.0)
        bus.publish("est.ping", node=3, peer=0, round=2, pings=1)
        now[0] = 0.01
        bus.publish("est.timeout", node=3, peer=0, round=2)
        (span,) = tracer.estimate_spans()
        assert span.status == "timeout"
        assert span.duration == 0.01

    def test_duplicate_pong_keeps_first_closing(self):
        now, bus, tracer = make_bus_with_tracer()
        bus.publish("sync.begin", node=0, round=1, local=0.0)
        bus.publish("est.ping", node=0, peer=1, round=1, pings=2)
        now[0] = 0.002
        bus.publish("est.pong", node=0, peer=1, round=1, rtt=0.002,
                    distance=0.0, accuracy=0.001)
        now[0] = 0.006
        bus.publish("est.pong", node=0, peer=1, round=1, rtt=0.006,
                    distance=0.0, accuracy=0.003)
        (span,) = tracer.estimate_spans()
        assert span.end == 0.002 and span.attrs["rtt"] == 0.002

    def test_concurrent_nodes_do_not_interfere(self):
        now, bus, tracer = make_bus_with_tracer()
        bus.publish("sync.begin", node=0, round=1, local=0.0)
        bus.publish("sync.begin", node=1, round=4, local=0.0)
        bus.publish("est.ping", node=0, peer=1, round=1, pings=1)
        bus.publish("est.ping", node=1, peer=0, round=4, pings=1)
        now[0] = 0.01
        bus.publish("sync.complete", node=0, round=1, correction=0.0,
                    m=0.0, big_m=0.0, own_discarded=False, replies=0,
                    local_before=0.01)
        spans = {s.span_id: s for s in tracer.spans}
        assert spans["n0:r1"].status == "ok"
        assert spans["n1:r4"].status == "open"
        assert spans["n0:r1:p1"].status == "timeout"
        assert spans["n1:r4:p0"].status == "open"

    def test_replay_rebuilds_identical_tree(self):
        now, bus, tracer = make_bus_with_tracer()
        recorded = []
        bus.subscribe(recorded.append)
        bus.publish("sync.begin", node=0, round=1, local=0.0)
        bus.publish("est.ping", node=0, peer=1, round=1, pings=1)
        now[0] = 0.01
        bus.publish("sync.complete", node=0, round=1, correction=0.0,
                    m=0.0, big_m=0.0, own_discarded=False, replies=0,
                    local_before=0.01)
        offline = SpanTracer().replay(recorded)
        assert offline.spans == tracer.spans

    def test_slowest_estimates_order_is_deterministic(self):
        now, bus, tracer = make_bus_with_tracer()
        bus.publish("sync.begin", node=0, round=1, local=0.0)
        for peer in (1, 2, 3):
            bus.publish("est.ping", node=0, peer=peer, round=1, pings=1)
        now[0] = 0.004
        bus.publish("est.pong", node=0, peer=2, round=1, rtt=0.004,
                    distance=0.0, accuracy=0.002)
        now[0] = 0.01
        bus.publish("sync.complete", node=0, round=1, correction=0.0,
                    m=0.0, big_m=0.0, own_discarded=False, replies=1,
                    local_before=0.01)
        slowest = tracer.slowest_estimates(top=2)
        # Ties (both timeouts last 0.01) break on span id.
        assert [s.span_id for s in slowest] == ["n0:r1:p1", "n0:r1:p3"]


class TestChromeTrace:
    def test_document_shape(self, tmp_path):
        now, bus, tracer = make_bus_with_tracer()
        bus.publish("sync.begin", node=5, round=1, local=0.0)
        bus.publish("est.ping", node=5, peer=1, round=1, pings=1)
        now[0] = 0.01
        bus.publish("sync.complete", node=5, round=1, correction=0.002,
                    m=0.0, big_m=0.0, own_discarded=False, replies=0,
                    local_before=0.01)
        document = chrome_trace(tracer.spans)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        sync_event = next(e for e in events if e["cat"] == "sync")
        assert sync_event["tid"] == 5
        assert sync_event["dur"] == 0.01 * 1e6
        assert sync_event["args"]["status"] == "ok"

        path = tmp_path / "trace.json"
        write_chrome_trace(tracer.spans, path)
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(document, sort_keys=True))

    def test_open_spans_are_skipped(self):
        _, bus, tracer = make_bus_with_tracer()
        bus.publish("sync.begin", node=0, round=1, local=0.0)
        assert chrome_trace(tracer.spans)["traceEvents"] == []
