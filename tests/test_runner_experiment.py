"""Unit tests for the experiment runner: determinism, sweeps, wiring."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import AdversaryError
from repro.runner.builders import (
    benign_scenario,
    default_params,
    geometric_grid,
    mobile_byzantine_scenario,
    recovery_scenario,
)
from repro.runner.campaign import replicate, sweep
from repro.runner.experiment import run, summarize
from repro.runner.scenario import extremal_clocks, perfect_clocks


def fast_params(n=4, f=1):
    return default_params(n=n, f=f)


class TestDeterminism:
    def test_same_seed_bitwise_identical(self):
        a = run(benign_scenario(fast_params(), duration=2.0, seed=11))
        b = run(benign_scenario(fast_params(), duration=2.0, seed=11))
        assert a.samples.times == b.samples.times
        assert a.samples.clocks == b.samples.clocks
        assert a.events_processed == b.events_processed

    def test_different_seeds_differ(self):
        a = run(benign_scenario(fast_params(), duration=2.0, seed=1))
        b = run(benign_scenario(fast_params(), duration=2.0, seed=2))
        assert a.samples.clocks != b.samples.clocks

    def test_adversarial_run_deterministic(self):
        a = run(mobile_byzantine_scenario(fast_params(), duration=6.0, seed=5))
        b = run(mobile_byzantine_scenario(fast_params(), duration=6.0, seed=5))
        assert a.samples.clocks == b.samples.clocks
        assert [(c.node, c.start, c.end) for c in a.corruptions] == \
               [(c.node, c.start, c.end) for c in b.corruptions]


class TestWiring:
    def test_all_nodes_have_processes_and_clocks(self):
        result = run(benign_scenario(fast_params(), duration=1.0))
        assert set(result.processes) == set(range(4))
        assert set(result.clocks) == set(range(4))

    def test_initial_offsets_applied(self):
        scenario = benign_scenario(fast_params(), duration=1.0,
                                   initial_offsets=[0.0, 0.1, 0.2, 0.3])
        result = run(scenario)
        assert result.samples.clocks[3][0] == pytest.approx(0.3, abs=0.01)

    def test_initial_offset_spread_sampled(self):
        scenario = benign_scenario(fast_params(), duration=1.0,
                                   initial_offset_spread=0.01)
        result = run(scenario)
        first = [result.samples.clocks[i][0] for i in range(4)]
        assert max(first) - min(first) > 0.0
        assert all(abs(v) <= 0.005 for v in first)

    def test_sample_grid_spacing(self):
        params = fast_params()
        scenario = benign_scenario(params, duration=1.0, sample_interval=0.25)
        result = run(scenario)
        assert result.samples.times == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])

    def test_trace_collects_syncs_from_all_nodes(self):
        result = run(benign_scenario(fast_params(), duration=2.0))
        assert {r.node_id for r in result.trace.syncs} == set(range(4))

    def test_corruption_trace_matches_plan(self):
        result = run(mobile_byzantine_scenario(fast_params(), duration=6.0, seed=3))
        break_ins = [r for r in result.trace.corruptions if r.action == "break_in"]
        assert len(break_ins) == len(result.corruptions)

    def test_f_limit_enforced_by_default(self):
        params = fast_params()

        def bad_plan(scenario, clocks):
            from repro.adversary.mobile import PlannedCorruption
            from repro.adversary.strategies import SilentStrategy
            return [PlannedCorruption(node=i, start=0.5, end=1.0,
                                      strategy=SilentStrategy())
                    for i in range(2)]  # 2 > f=1

        scenario = benign_scenario(params, duration=2.0)
        scenario = dataclasses.replace(scenario, plan_builder=bad_plan)
        with pytest.raises(AdversaryError):
            run(scenario)

    def test_stagger_phases_off_gives_lockstep(self):
        result = run(benign_scenario(fast_params(), duration=1.0,
                                     stagger_phases=False))
        firsts = sorted(r.real_time for r in result.trace.syncs
                        if r.round_no == 1)
        assert max(firsts) - min(firsts) < 2 * result.params.max_wait

    def test_clock_factories(self):
        for factory in (perfect_clocks, extremal_clocks):
            result = run(benign_scenario(fast_params(), duration=1.0,
                                         clock_factory=factory))
            assert result.samples.clocks


class TestSweepsAndHelpers:
    def test_sweep_replaces_fields(self):
        base = benign_scenario(fast_params(), duration=1.0)
        records = sweep(base, [{"seed": 1}, {"seed": 2}, {"duration": 2.0}])
        assert len(records) == 3
        assert [r.seed for r in records[:2]] == [1, 2]
        assert records[2].duration == 2.0
        assert all(r.error is None for r in records)

    def test_replicate_runs_per_seed(self):
        base = benign_scenario(fast_params(), duration=1.0)
        records = replicate(base, seeds=[1, 2, 3])
        assert [r.seed for r in records] == [1, 2, 3]

    def test_summarize(self):
        assert summarize([1.0, 2.0, 3.0]) == (1.0, 2.0, 3.0)

    def test_geometric_grid(self):
        grid = geometric_grid(1.0, 8.0, 4)
        assert grid == pytest.approx([1.0, 2.0, 4.0, 8.0])

    def test_geometric_grid_validation(self):
        with pytest.raises(ValueError):
            geometric_grid(1.0, 0.5, 3)


class TestRunResultMeasures:
    def test_verdict_integrates_measures(self):
        result = run(benign_scenario(fast_params(), duration=3.0, seed=1))
        verdict = result.verdict(warmup=1.0)
        assert verdict.all_ok

    def test_recovery_default_tolerance_is_bound(self):
        result = run(recovery_scenario(fast_params(), duration=4.0, seed=1))
        report = result.recovery()
        assert report.tolerance == pytest.approx(result.params.bounds().max_deviation)
