"""Property tests for the columnar + incremental measurement engine.

Three exactness contracts carry the PR 4 engine, and each gets
hypothesis coverage against its reference implementation:

* :class:`~repro.metrics.sampler.GoodSetIndex` /
  :class:`~repro.metrics.sampler.WindowIndex` answer every point query
  identically to the brute per-corruption predicates — including at
  boundary times and their one-ulp neighbours, since the index
  pre-computes float thresholds with ordinal bisection;
* the pure-Python and numpy reduction backends in
  :mod:`repro.metrics.columns` return byte-identical results;
* :class:`~repro.metrics.streaming.OnlineMeasures` reproduces every
  post-hoc measure byte-for-byte from the sampling hook alone, and a
  campaign :class:`~repro.runner.campaign.RunRecord` is identical with
  ``stream_measures`` on or off.
"""

from __future__ import annotations

import dataclasses
import json
import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.columns import (
    HAVE_NUMPY,
    as_column,
    minmax_slice,
    set_numpy,
    spread_slice,
)
from repro.metrics.measures import (
    accuracy_report,
    deviation_series,
    recovery_report,
)
from repro.metrics.sampler import (
    ClockSamples,
    CorruptionInterval,
    GoodSetIndex,
    WindowIndex,
    faulty_at,
    good_set,
)
from repro.metrics.streaming import OnlineMeasures
from repro.runner.campaign import execute_run

N_NODES = 4

times_strategy = st.floats(min_value=0.0, max_value=60.0, allow_nan=False)


@st.composite
def corruption_sets(draw, n_nodes=N_NODES, allow_infinite=True):
    count = draw(st.integers(0, 6))
    corruptions = []
    for _ in range(count):
        node = draw(st.integers(0, n_nodes - 1))
        start = draw(times_strategy)
        if allow_infinite and draw(st.booleans()) and draw(st.booleans()):
            end = math.inf
        else:
            end = start + draw(st.floats(0.0, 12.0, allow_nan=False))
        corruptions.append(CorruptionInterval(node, start, end))
    return corruptions


def boundary_taus(corruptions, pi, extra=()):
    """Every float where a window answer can flip, plus ulp neighbours."""
    anchors = {0.0, pi}
    for c in corruptions:
        for base in (c.start, c.end):
            if not math.isfinite(base):
                continue
            anchors.update((base, base + pi, base - pi))
    anchors.update(extra)
    taus = set()
    for a in anchors:
        if a < 0.0 or not math.isfinite(a):
            continue
        taus.add(a)
        taus.add(math.nextafter(a, math.inf))
        down = math.nextafter(a, -math.inf)
        if down >= 0.0:
            taus.add(down)
    return sorted(taus)


# ---------------------------------------------------------------------------
# GoodSetIndex / WindowIndex vs the brute predicates
# ---------------------------------------------------------------------------


@settings(max_examples=200)
@given(corruptions=corruption_sets(),
       pi=st.floats(0.05, 10.0, allow_nan=False),
       random_taus=st.lists(times_strategy, max_size=8))
def test_good_set_index_matches_brute(corruptions, pi, random_taus):
    index = GoodSetIndex(corruptions, pi, N_NODES)
    for tau in boundary_taus(corruptions, pi, extra=random_taus):
        assert index.good_set(tau) == good_set(corruptions, tau, pi, N_NODES), tau
        assert index.faulty_nodes_at(tau) == faulty_at(corruptions, tau), tau


@settings(max_examples=200)
@given(corruptions=corruption_sets(),
       before=st.floats(0.0, 10.0, allow_nan=False),
       after=st.floats(0.0, 10.0, allow_nan=False),
       random_taus=st.lists(times_strategy, max_size=8))
def test_window_index_matches_definition(corruptions, before, after, random_taus):
    """A corruption excludes its node at anchor t iff it overlaps the
    window [max(0, t - before), t + after] — checked pointwise."""
    index = WindowIndex(corruptions, N_NODES, before=before, after=after)
    anchors = boundary_taus(corruptions, before, extra=random_taus)
    anchors.extend(boundary_taus(corruptions, after))
    for tau in anchors:
        lo = max(0.0, tau - before)
        hi = tau + after
        expected = frozenset(
            c.node for c in corruptions if c.start <= hi and c.end >= lo)
        assert index.excluded_at(tau) == expected, tau


@settings(max_examples=150)
@given(corruptions=corruption_sets(),
       pi=st.floats(0.05, 10.0, allow_nan=False),
       taus=st.lists(times_strategy, min_size=1, max_size=20))
def test_runs_and_cursor_match_point_queries(corruptions, pi, taus):
    """Batch iteration (runs) and the forward cursor agree with the
    random-access point query on any sorted time grid."""
    index = GoodSetIndex(corruptions, pi, N_NODES)
    times = sorted(taus)
    covered = [None] * len(times)
    for lo, hi, included in index.runs(times):
        for i in range(lo, hi):
            covered[i] = included
    cursor = index.cursor()
    for i, tau in enumerate(times):
        expected = index.good_at(tau)
        assert covered[i] == expected, tau
        assert cursor.included_at(tau) == expected, tau


# ---------------------------------------------------------------------------
# Columnar reduction backends
# ---------------------------------------------------------------------------


finite_floats = st.floats(-1e9, 1e9, allow_nan=False)


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy backend not installed")
@settings(max_examples=150)
@given(data=st.data(),
       n_cols=st.integers(2, 5),
       length=st.integers(1, 30))
def test_backends_byte_identical(data, n_cols, length):
    columns = [as_column(data.draw(st.lists(finite_floats, min_size=length,
                                            max_size=length)))
               for _ in range(n_cols)]
    lo = data.draw(st.integers(0, length - 1))
    hi = data.draw(st.integers(lo + 1, length))
    try:
        set_numpy(False)
        py_spread = spread_slice(columns, lo, hi)
        py_min, py_max = minmax_slice(columns, lo, hi)
        set_numpy(True)
        np_spread = spread_slice(columns, lo, hi)
        np_min, np_max = minmax_slice(columns, lo, hi)
    finally:
        set_numpy(None)
    pack = lambda values: struct.pack(f"<{len(values)}d", *values)
    assert pack(py_spread) == pack(np_spread)
    assert pack(py_min) == pack(np_min)
    assert pack(py_max) == pack(np_max)


# ---------------------------------------------------------------------------
# OnlineMeasures vs the post-hoc pipeline
# ---------------------------------------------------------------------------


class _FakeClock:
    """Pure-function-of-time clock with a fixed adjustment history."""

    def __init__(self, offset, rate, adjustments):
        self.offset = offset
        self.rate = rate
        self.adjustments = adjustments

    def read(self, tau):
        return self.offset + self.rate * tau


def _pack_series(series):
    flat = [x for pair in series for x in pair]
    return struct.pack(f"<{len(flat)}d", *flat)


@settings(max_examples=60, deadline=None)
@given(data=st.data(),
       corruptions=corruption_sets(allow_infinite=False),
       count=st.integers(2, 40),
       dt=st.floats(0.05, 2.0, allow_nan=False),
       pi=st.floats(0.1, 8.0, allow_nan=False),
       tolerance=st.floats(0.01, 5.0, allow_nan=False),
       warmup=st.floats(0.0, 30.0, allow_nan=False))
def test_streaming_matches_posthoc(data, corruptions, count, dt, pi,
                                   tolerance, warmup):
    """Every streamed measure is byte-identical to the post-hoc one."""
    clocks = {}
    for node in range(N_NODES):
        offset = data.draw(st.floats(-2.0, 2.0, allow_nan=False))
        rate = data.draw(st.floats(0.9, 1.1, allow_nan=False))
        adjustments = [(data.draw(times_strategy),
                        data.draw(st.floats(-1.0, 1.0, allow_nan=False)),
                        "adj")
                       for _ in range(data.draw(st.integers(0, 2)))]
        clocks[node] = _FakeClock(offset, rate, adjustments)

    grid = [i * dt for i in range(count)]
    stream = OnlineMeasures(clocks, corruptions, pi=pi, n=N_NODES,
                            recovery_tolerance=tolerance, recovery_settle=pi)
    for i, tau in enumerate(grid):
        stream.on_sample(tau, i)
    stream.finalize()

    samples = ClockSamples(
        times=list(grid),
        clocks={node: [clock.read(tau) for tau in grid]
                for node, clock in clocks.items()})
    index = GoodSetIndex(corruptions, pi, N_NODES)

    posthoc_series = deviation_series(samples, corruptions, pi, N_NODES,
                                      warmup=warmup, index=index)
    assert _pack_series(stream.deviation_series(warmup)) == \
        _pack_series(posthoc_series)

    assert stream.accuracy() == accuracy_report(
        samples, corruptions, clocks, pi, N_NODES, index=index)

    assert stream.recovery(tolerance, pi) == recovery_report(
        samples, corruptions, pi, N_NODES, tolerance, pi, index=index)


# ---------------------------------------------------------------------------
# RunRecord parity: stream on/off, numpy on/off
# ---------------------------------------------------------------------------


def _record_json(record):
    return json.dumps(dataclasses.asdict(record), sort_keys=True)


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(0, 2 ** 16),
       scenario=st.sampled_from(["benign", "mobile-byzantine", "recovery"]))
def test_runrecord_parity(seed, scenario):
    """A campaign record is byte-identical with streaming on or off, and
    (when numpy is present) with either reduction backend."""
    config = {
        "params": {"n": 4, "f": 1, "delta": 0.005, "rho": 5e-4, "pi": 2.0},
        "scenario": scenario,
        "duration": 6.0,
        "seed": seed,
    }
    reference = _record_json(execute_run(0, config))
    assert _record_json(execute_run(0, config, stream_measures=True)) == reference
    if HAVE_NUMPY:
        try:
            set_numpy(False)
            python_backend = _record_json(execute_run(0, config))
            python_stream = _record_json(
                execute_run(0, config, stream_measures=True))
            set_numpy(True)
            numpy_backend = _record_json(execute_run(0, config))
        finally:
            set_numpy(None)
        assert python_backend == reference
        assert python_stream == reference
        assert numpy_backend == reference
