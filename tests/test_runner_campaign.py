"""Tests for the campaign executor: fan-out, caching, failure isolation.

Supersedes the old parallel-runner tests.  The determinism contract is
the load-bearing one: a campaign's records must be byte-identical
whether runs execute serially in-process or across a process pool, for
every canonical scenario (including the spec-based adversary plans).
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.errors import CampaignError, ConfigurationError
from repro.runner.builders import (
    benign_scenario,
    default_params,
    mobile_byzantine_scenario,
    recovery_scenario,
    split_world_scenario,
)
from repro.runner.campaign import (
    Campaign,
    CampaignResult,
    RunRecord,
    replicate,
    run_config,
    run_configs,
    sweep,
)


def config(seed=0, scenario="benign", duration=3.0):
    return {
        "params": {"n": 4, "f": 1, "delta": 0.005, "rho": 5e-4, "pi": 2.0},
        "scenario": scenario,
        "duration": duration,
        "seed": seed,
    }


def canonical_configs(duration=4.0):
    """One config per canonical scenario, exercising every plan kind."""
    return [config(seed=s, scenario=name, duration=duration)
            for s, name in enumerate(
                ("benign", "mobile-byzantine", "recovery", "split-world"),
                start=1)]


class TestSerial:
    def test_single_config(self):
        record = run_config(config(seed=1))
        assert isinstance(record, RunRecord)
        assert record.ok
        assert record.max_deviation <= record.verdict.bounds.max_deviation
        assert record.messages_delivered > 0
        assert record.perf is not None
        assert record.seed == 1

    def test_order_preserved(self):
        records = run_configs([config(seed=s) for s in (5, 6, 7)])
        assert [r.seed for r in records] == [5, 6, 7]
        assert [r.index for r in records] == [0, 1, 2]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            run_configs([])

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_configs([config()], workers=0)

    def test_byzantine_config(self):
        record = run_config(config(scenario="mobile-byzantine", duration=6.0))
        assert record.ok
        assert record.recovery.all_recovered
        assert record.corruption_count > 0

    def test_record_is_picklable(self):
        record = run_config(config(seed=2))
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record


class TestParallelDeterminism:
    def test_parallel_matches_serial_exactly_all_canonical(self):
        """Records byte-identical across execution modes, for every
        canonical scenario (spec-based plans included)."""
        configs = canonical_configs()
        serial = Campaign(configs=configs).run(workers=1)
        parallel = Campaign(configs=configs).run(workers=2)
        assert serial.records == parallel.records
        for a, b in zip(serial.records, parallel.records):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_parallel_order_preserved(self):
        configs = [config(seed=s) for s in (9, 8, 7)]
        records = run_configs(configs, workers=2)
        assert [r.seed for r in records] == [9, 8, 7]


class TestFailureHandling:
    def test_isolated_failure_yields_error_record(self):
        bad = dict(config(seed=3), duration=-1.0)
        result = Campaign(configs=[config(seed=1), bad]).run()
        assert result.failed == 1
        (error_record,) = result.errors()
        assert error_record.index == 1
        assert error_record.error is not None
        assert not error_record.ok
        assert result.records[0].ok

    def test_strict_mode_raises_campaign_error(self):
        bad = dict(config(seed=3), duration=-1.0)
        with pytest.raises(CampaignError) as excinfo:
            run_configs([config(seed=1), bad])
        assert excinfo.value.index == 1
        assert excinfo.value.config == bad

    def test_isolated_failure_survives_the_pool(self):
        bad = dict(config(seed=3), duration=-1.0)
        result = Campaign(configs=[config(seed=1), bad,
                                   config(seed=2)]).run(workers=2)
        assert result.failed == 1
        assert result.records[0].ok and result.records[2].ok


class TestCaching:
    def test_second_invocation_executes_zero_runs(self, tmp_path):
        configs = canonical_configs(duration=3.0)
        first = Campaign(configs=configs, cache_dir=tmp_path).run()
        assert (first.executed, first.cached) == (4, 0)
        second = Campaign(configs=configs, cache_dir=tmp_path).run()
        assert (second.executed, second.cached) == (0, 4)
        assert second.records == first.records

    def test_resume_completes_only_missing_runs(self, tmp_path):
        configs = canonical_configs(duration=3.0)
        campaign = Campaign(configs=configs, cache_dir=tmp_path)
        full = campaign.run()
        victim = campaign._cache_path(configs[2])
        victim.unlink()
        resumed = Campaign(configs=configs, cache_dir=tmp_path).run()
        assert (resumed.executed, resumed.cached) == (1, 3)
        assert resumed.records == full.records

    def test_fresh_reexecutes_everything(self, tmp_path):
        configs = [config(seed=1)]
        Campaign(configs=configs, cache_dir=tmp_path).run()
        result = Campaign(configs=configs, cache_dir=tmp_path).run(fresh=True)
        assert (result.executed, result.cached) == (1, 0)

    def test_corrupt_cache_file_is_a_miss(self, tmp_path):
        configs = [config(seed=1)]
        campaign = Campaign(configs=configs, cache_dir=tmp_path)
        campaign.run()
        campaign._cache_path(configs[0]).write_bytes(b"not a pickle")
        result = Campaign(configs=configs, cache_dir=tmp_path).run()
        assert (result.executed, result.cached) == (1, 0)
        assert result.records[0].ok

    def test_error_records_are_never_cached(self, tmp_path):
        bad = dict(config(seed=3), duration=-1.0)
        campaign = Campaign(configs=[bad], cache_dir=tmp_path)
        first = campaign.run()
        assert first.failed == 1
        second = Campaign(configs=[bad], cache_dir=tmp_path).run()
        assert (second.executed, second.cached) == (1, 0)

    def test_cache_key_depends_on_config_and_settings(self, tmp_path):
        campaign = Campaign(configs=[config(seed=1)], cache_dir=tmp_path)
        base = campaign.cache_key(config(seed=1))
        assert campaign.cache_key(config(seed=2)) != base
        warm = Campaign(configs=[config(seed=1)], cache_dir=tmp_path,
                        warmup_intervals=5.0)
        assert warm.cache_key(config(seed=1)) != base

    def test_legacy_bare_record_cache_is_logged_miss(self, tmp_path, caplog):
        """Regression: a pre-format-4 cache file (a bare pickled
        RunRecord, no format envelope) must log and re-execute, never
        raise or be silently trusted."""
        import logging

        configs = [config(seed=1)]
        campaign = Campaign(configs=configs, cache_dir=tmp_path)
        first = campaign.run()
        with campaign._cache_path(configs[0]).open("wb") as handle:
            pickle.dump(first.records[0], handle)  # the old on-disk shape
        with caplog.at_level(logging.INFO, logger="repro.runner.campaign"):
            result = Campaign(configs=configs, cache_dir=tmp_path).run()
        assert (result.executed, result.cached) == (1, 0)
        assert result.records == first.records
        assert any("re-executing" in message for message in caplog.messages)

    def test_unknown_cache_format_is_logged_miss(self, tmp_path, caplog):
        import logging

        configs = [config(seed=1)]
        campaign = Campaign(configs=configs, cache_dir=tmp_path)
        first = campaign.run()
        with campaign._cache_path(configs[0]).open("wb") as handle:
            pickle.dump({"format": 99, "record": first.records[0]}, handle)
        with caplog.at_level(logging.INFO, logger="repro.runner.campaign"):
            result = Campaign(configs=configs, cache_dir=tmp_path).run()
        assert (result.executed, result.cached) == (1, 0)
        assert any("format" in message for message in caplog.messages)

    def test_cache_files_carry_format_envelope(self, tmp_path):
        from repro.runner.campaign import CACHE_FORMAT

        configs = [config(seed=1)]
        campaign = Campaign(configs=configs, cache_dir=tmp_path)
        campaign.run()
        with campaign._cache_path(configs[0]).open("rb") as handle:
            payload = pickle.load(handle)
        assert payload["format"] == CACHE_FORMAT
        assert isinstance(payload["record"], RunRecord)


class TestFallbackSurfacing:
    def test_scalar_backend_reports_no_fallbacks(self):
        result = Campaign(configs=[config(seed=1)]).run()
        assert result.scalar_fallbacks == 0
        assert result.fallback_reasons() == {}
        assert result.records[0].scalar_fallback_reason is None

    def test_vector_backend_in_envelope_reports_no_fallbacks(self):
        result = Campaign(configs=[config(seed=1)], backend="vector").run()
        assert result.scalar_fallbacks == 0
        assert result.records[0].scalar_fallback_reason is None

    def test_vector_backend_fallback_reason_surfaces(self):
        # Message recording is outside the vector envelope: the run
        # still succeeds, but the fallback is counted and explained.
        cfg = dict(config(seed=1), record_messages=True)
        result = Campaign(configs=[cfg], backend="vector").run()
        assert result.records[0].error is None
        assert result.scalar_fallbacks == 1
        reasons = result.fallback_reasons()
        assert len(reasons) == 1
        (reason, count), = reasons.items()
        assert count == 1 and "scalar" in reason

    def test_observed_vector_campaign_reports_fallback(self):
        result = Campaign(configs=[config(seed=1)], backend="vector",
                          observe=True).run()
        assert result.scalar_fallbacks == 1
        assert "flight recorder" in result.records[0].scalar_fallback_reason


class TestBisect:
    @staticmethod
    def liar_config(liars: int, seed: int, duration: float = 6.0) -> dict:
        """Mini-E7: `liars` colluding two-faced nodes on n=4, f=1."""
        cfg = {
            "name": f"e7-bisect-{liars}-{seed}",
            "params": {"n": 4, "f": 1, "delta": 0.005, "rho": 5e-4,
                       "pi": 2.0},
            "duration": duration,
            "seed": seed,
            "enforce_f_limit": False,
            "extra": {"liars": liars, "within_f": liars <= 1},
        }
        if liars:
            cfg["plan"] = {
                "kind": "single-burst",
                "strategy": {"name": "two-faced", "magnitude": 8.0},
                "victims": list(range(liars)),
                "start": 1.0,
                "dwell": duration - 1.5,
            }
        return cfg

    def test_bisect_finds_the_f_boundary(self, tmp_path):
        """Campaign.bisect reproduces the E7 resilience boundary on the
        smallest network: f=1 colluding liar is survivable, f+1=2 is
        not."""
        result = Campaign.bisect(self.liar_config, lo=0, hi=3,
                                 store_dir=tmp_path / "bisect")
        assert result.last_pass == 1   # exactly f
        assert result.first_fail == 2  # exactly f + 1
        assert result.probes[0] is True and result.probes[3] is False
        # The pooled store kept every probe run, tagged and queryable.
        store = result.store
        assert store.query().where("config.extra.within_f", "==", True) \
            .aggregate(ok=("ok", "all"))["ok"] is True
        broken = store.query().where("config.extra.liars", ">=", 2)
        assert broken.aggregate(any_ok=("ok", "any"))["any_ok"] is False
        # Saved store carries the probe map for the EXPERIMENTS entry.
        from repro.runner.store import ResultStore
        saved = ResultStore.load(tmp_path / "bisect")
        assert saved.meta["bisect"]["last_pass"] == 1
        assert saved.meta["bisect"]["first_fail"] == 2

    def test_bisect_degenerate_orientations(self):
        always_pass = lambda q: True
        always_fail = lambda q: False
        result = Campaign.bisect(self.liar_config, lo=0, hi=1,
                                 passes=always_pass)
        assert (result.last_pass, result.first_fail) == (1, None)
        result = Campaign.bisect(self.liar_config, lo=0, hi=1,
                                 passes=always_fail)
        assert (result.last_pass, result.first_fail) == (None, 0)

    def test_bisect_rejects_bad_range(self):
        with pytest.raises(ConfigurationError):
            Campaign.bisect(self.liar_config, lo=3, hi=1)


class TestConstruction:
    def test_from_scenarios_round_trips_builders(self):
        params = default_params(n=4, f=1)
        scenarios = [
            benign_scenario(params, duration=2.0, seed=1),
            mobile_byzantine_scenario(params, duration=4.0, seed=2),
            recovery_scenario(params, duration=4.0, seed=3),
            split_world_scenario(params, duration=4.0, seed=4),
        ]
        campaign = Campaign.from_scenarios(scenarios)
        assert len(campaign.configs) == 4
        result = campaign.run()
        assert isinstance(result, CampaignResult)
        assert result.all_ok, [r.error for r in result.errors()]

    def test_from_scenarios_rejects_raw_callables(self):
        scenario = benign_scenario(default_params(n=4, f=1), duration=1.0)
        scenario = dataclasses.replace(
            scenario, plan_builder=lambda sc, clocks: [])
        with pytest.raises(ConfigurationError, match="plan_builder"):
            Campaign.from_scenarios([scenario])

    def test_sweep_and_replicate_records(self):
        base = benign_scenario(default_params(n=4, f=1), duration=1.0, seed=0)
        records = sweep(base, [{"seed": 1}, {"seed": 2}, {"duration": 2.0}])
        assert [r.seed for r in records] == [1, 2, 0]
        assert records[2].duration == 2.0
        reps = replicate(base, seeds=[4, 5])
        assert [r.seed for r in reps] == [4, 5]
