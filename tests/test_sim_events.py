"""Unit tests for the event queue."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def test_pop_returns_events_in_time_order():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append("c"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(2.0, lambda: fired.append("b"))
    while queue:
        queue.pop().callback()
    assert fired == ["a", "b", "c"]


def test_ties_broken_by_insertion_order():
    queue = EventQueue()
    fired = []
    for label in ("first", "second", "third"):
        queue.push(5.0, lambda lab=label: fired.append(lab))
    while queue:
        queue.pop().callback()
    assert fired == ["first", "second", "third"]


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(0.5, lambda: fired.append("drop"))
    queue.cancel(drop)
    event = queue.pop()
    event.callback()
    assert fired == ["keep"]
    assert event is keep


def test_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0


def test_len_counts_live_events_only():
    queue = EventQueue()
    e1 = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    queue.cancel(e1)
    assert len(queue) == 1


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(early)
    assert queue.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_pop_all_cancelled_raises():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    with pytest.raises(SimulationError):
        queue.pop()


def test_bool_reflects_liveness():
    queue = EventQueue()
    assert not queue
    event = queue.push(1.0, lambda: None)
    assert queue
    queue.cancel(event)
    assert not queue


def test_event_tags_preserved():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None, tag="hello")
    assert event.tag == "hello"


def test_interleaved_push_pop_keeps_order():
    queue = EventQueue()
    queue.push(10.0, lambda: None, tag="late")
    first = queue.pop()
    assert first.tag == "late"
    queue.push(5.0, lambda: None, tag="early")
    queue.push(7.0, lambda: None, tag="mid")
    assert queue.pop().tag == "early"
    assert queue.pop().tag == "mid"
