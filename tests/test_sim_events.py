"""Unit tests for the event queue."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def test_pop_returns_events_in_time_order():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append("c"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(2.0, lambda: fired.append("b"))
    while queue:
        queue.pop().callback()
    assert fired == ["a", "b", "c"]


def test_ties_broken_by_insertion_order():
    queue = EventQueue()
    fired = []
    for label in ("first", "second", "third"):
        queue.push(5.0, lambda lab=label: fired.append(lab))
    while queue:
        queue.pop().callback()
    assert fired == ["first", "second", "third"]


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(0.5, lambda: fired.append("drop"))
    queue.cancel(drop)
    event = queue.pop()
    event.callback()
    assert fired == ["keep"]
    assert event is keep


def test_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0


def test_len_counts_live_events_only():
    queue = EventQueue()
    e1 = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    queue.cancel(e1)
    assert len(queue) == 1


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(early)
    assert queue.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_pop_all_cancelled_raises():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    with pytest.raises(SimulationError):
        queue.pop()


def test_bool_reflects_liveness():
    queue = EventQueue()
    assert not queue
    event = queue.push(1.0, lambda: None)
    assert queue
    queue.cancel(event)
    assert not queue


def test_event_tags_preserved():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None, tag="hello")
    assert event.tag == "hello"


def test_handle_cancel_keeps_len_honest():
    """Cancelling via the Event handle (not queue.cancel) must update the
    queue's live count — the SyncProcess deadline-cancel path."""
    queue = EventQueue()
    handle = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    handle.cancel()
    assert len(queue) == 1
    assert queue.pop().time == 2.0
    assert len(queue) == 0
    assert not queue


def test_handle_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    event.cancel()
    event.cancel()
    queue.cancel(event)
    assert len(queue) == 0


def test_cancel_after_fire_is_noop():
    """Cancelling a handle that already fired must not corrupt the count."""
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    fired = queue.pop()
    assert fired is first and fired.fired
    queue.cancel(fired)
    fired.cancel()
    assert len(queue) == 1
    assert queue.pop().time == 2.0


def test_len_across_push_pop_cancel_sequences():
    queue = EventQueue()
    a = queue.push(1.0, lambda: None)
    b = queue.push(2.0, lambda: None)
    c = queue.push(3.0, lambda: None)
    assert len(queue) == 3
    b.cancel()                       # handle-cancel
    assert len(queue) == 2
    b.cancel()                       # double-cancel: no-op
    assert len(queue) == 2
    assert queue.pop() is a
    assert len(queue) == 1
    a.cancel()                       # cancel-after-fire: no-op
    queue.cancel(a)
    assert len(queue) == 1
    queue.cancel(c)                  # queue-cancel
    assert len(queue) == 0
    c.cancel()                       # double-cancel across both routes
    assert len(queue) == 0
    assert not queue


def test_pop_due_respects_bound():
    queue = EventQueue()
    queue.push(1.0, lambda: None, tag="early")
    queue.push(5.0, lambda: None, tag="late")
    event = queue.pop_due(2.0)
    assert event is not None and event.tag == "early"
    assert queue.pop_due(2.0) is None
    assert len(queue) == 1  # the bounded miss must not consume the event
    assert queue.pop_due(None).tag == "late"
    assert queue.pop_due(None) is None


def test_pop_due_skips_cancelled():
    queue = EventQueue()
    early = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None, tag="keep")
    early.cancel()
    assert queue.pop_due(10.0).tag == "keep"


def test_queue_perf_counters():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(4)]
    assert queue.pushed_total == 4
    assert queue.heap_high_water == 4
    events[0].cancel()
    queue.pop()
    assert queue.cancelled_total == 1
    assert queue.fired_total == 1
    assert len(queue) == 2


def test_interleaved_push_pop_keeps_order():
    queue = EventQueue()
    queue.push(10.0, lambda: None, tag="late")
    first = queue.pop()
    assert first.tag == "late"
    queue.push(5.0, lambda: None, tag="early")
    queue.push(7.0, lambda: None, tag="mid")
    assert queue.pop().tag == "early"
    assert queue.pop().tag == "mid"
