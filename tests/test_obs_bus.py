"""Tests for the observability event bus and its canonical serialization."""

from __future__ import annotations

import math

from repro.obs import EventBus, ObsEvent
from repro.obs.bus import (
    event_from_json,
    event_to_json,
    events_to_jsonl,
    read_events_jsonl,
)


class TestEventBus:
    def test_publish_stamps_seq_and_time(self):
        now = [3.5]
        bus = EventBus(clock=lambda: now[0])
        first = bus.publish("sync.begin", node=1, round=1)
        now[0] = 4.0
        second = bus.publish("sync.complete", node=1, round=1)
        assert (first.seq, first.time) == (0, 3.5)
        assert (second.seq, second.time) == (1, 4.0)
        assert bus.events_published == 2

    def test_subscribers_receive_in_order(self):
        bus = EventBus()
        seen_a, seen_b = [], []
        bus.subscribe(seen_a.append)
        bus.subscribe(seen_b.append)
        bus.publish("a")
        bus.publish("b")
        assert [e.kind for e in seen_a] == ["a", "b"]
        assert seen_a == seen_b

    def test_set_clock_rebinds_time_source(self):
        bus = EventBus()
        assert bus.publish("x").time == 0.0
        bus.set_clock(lambda: 7.25)
        assert bus.publish("y").time == 7.25

    def test_node_defaults_to_none(self):
        event = EventBus().publish("run.end")
        assert event.node is None
        assert event.data == {}


class TestSerialization:
    def test_roundtrip_plain_event(self):
        event = ObsEvent(seq=4, time=1.5, kind="sync.begin", node=2,
                         data={"round": 7, "local": 1.51})
        assert event_from_json(event_to_json(event)) == event

    def test_roundtrip_inf_and_nan(self):
        event = ObsEvent(seq=0, time=0.0, kind="est.timeout", node=1,
                         data={"accuracy": math.inf, "low": -math.inf})
        parsed = event_from_json(event_to_json(event))
        assert parsed.data["accuracy"] == math.inf
        assert parsed.data["low"] == -math.inf
        nan_event = ObsEvent(seq=1, time=0.0, kind="x", node=None,
                             data={"v": math.nan})
        assert math.isnan(event_from_json(event_to_json(nan_event)).data["v"])

    def test_nested_payloads_roundtrip(self):
        event = ObsEvent(seq=0, time=0.0, kind="metrics.snapshot", node=None,
                         data={"snapshot": {"hist": {"min": math.inf,
                                                     "values": [1.0, math.inf]}}})
        parsed = event_from_json(event_to_json(event))
        assert parsed.data["snapshot"]["hist"]["min"] == math.inf
        assert parsed.data["snapshot"]["hist"]["values"] == [1.0, math.inf]

    def test_canonical_form_is_sorted_and_compact(self):
        line = event_to_json(ObsEvent(seq=0, time=1.0, kind="k", node=3,
                                      data={"b": 2, "a": 1}))
        assert line == '{"data":{"a":1,"b":2},"kind":"k","node":3,"seq":0,"t":1.0}'

    def test_jsonl_file_roundtrip(self, tmp_path):
        events = [
            ObsEvent(seq=0, time=0.0, kind="run.start", node=None,
                     data={"n": 4}),
            ObsEvent(seq=1, time=2.5, kind="sync.begin", node=0,
                     data={"round": 1}),
        ]
        path = tmp_path / "stream.jsonl"
        path.write_text(events_to_jsonl(events))
        assert read_events_jsonl(path) == events

    def test_identical_streams_serialize_byte_identical(self):
        def stream():
            bus = EventBus()
            seen = []
            bus.subscribe(seen.append)
            bus.publish("sync.begin", node=0, round=1, local=0.25)
            bus.publish("est.timeout", node=0, peer=1, round=1)
            return events_to_jsonl(seen)

        assert stream() == stream()
