"""Unit tests for the Sync protocol process (Figure 1)."""

from __future__ import annotations

import pytest

from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.core.params import ProtocolParams
from repro.core.sync import SyncProcess
from repro.net.links import FixedDelay
from repro.runtime.messages import Ping, Pong
from repro.net.network import Network
from repro.net.topology import full_mesh
from repro.sim.engine import Simulator
from repro.runtime.process import Process
from repro.sim.runtime import SimRuntime


def make_params(n=4, f=1) -> ProtocolParams:
    return ProtocolParams.derive(n=n, f=f, delta=0.005, rho=5e-4, pi=2.0)


def build_cluster(sim, params, offsets=None, rates=None):
    n = params.n
    offsets = offsets or [0.0] * n
    rates = rates or [1.0] * n
    network = Network(sim, full_mesh(n), FixedDelay(delta=params.delta))
    procs = []
    for i in range(n):
        clock = LogicalClock(FixedRateClock(rho=params.rho, rate=rates[i]), adj=offsets[i])
        proc = SyncProcess(SimRuntime(i, sim, network, clock), params,
                           start_phase=0.01 * i)
        network.bind(proc)
        procs.append(proc)
    return network, procs


def start_all(procs):
    for p in procs:
        p.start()


def test_sync_runs_periodically(sim):
    params = make_params()
    _, procs = build_cluster(sim, params)
    start_all(procs)
    sim.run(until=1.0)
    for proc in procs:
        # Roughly duration / sync_interval rounds, at least a few.
        assert proc.rounds_completed >= 3
        # At most two syncs per T window (Section 4 requirement).
        times = [r.real_time for r in proc.sync_records]
        for i, t in enumerate(times):
            in_window = sum(1 for u in times if t <= u < t + params.t_interval)
            assert in_window <= 2


def test_at_least_one_sync_per_t_window(sim):
    params = make_params()
    _, procs = build_cluster(sim, params)
    start_all(procs)
    sim.run(until=2.0)
    for proc in procs:
        times = [r.real_time for r in proc.sync_records]
        # Every window [t, t + T] after startup contains a completion.
        t = params.t_interval
        while t + params.t_interval <= 2.0:
            assert any(t <= u <= t + params.t_interval for u in times)
            t += params.t_interval


def test_ping_answered_with_current_clock(sim):
    """The no-rounds property: responders report their live clock."""
    params = make_params()
    network, procs = build_cluster(sim, params, offsets=[0.0, 7.0, 0.0, 0.0])

    replies = []

    class Probe(Process):
        def on_message(self, message):
            if isinstance(message.payload, Pong):
                replies.append((self.real_now(), message.payload.clock_value))

    # Rebuild with a probe on node 3's slot is complex; instead ping from
    # node 0's identity via the network and watch node 0's inbox... use a
    # direct ping from an unused process:
    sim.schedule(0.5, lambda: network.send(0, 1, Ping(nonce=999)))

    original = procs[0].on_message

    def spy(message):
        if isinstance(message.payload, Pong) and message.payload.nonce == 999:
            replies.append((sim.now, message.payload.clock_value))
            return
        original(message)

    procs[0].on_message = spy
    start_all(procs)
    sim.run(until=1.0)
    assert len(replies) == 1
    tau, value = replies[0]
    # Node 1's clock ~ tau + 7 (it may have synced toward the others by
    # then, shrinking the offset, but never increased it).
    assert value <= tau + 7.0 + 0.01


def test_identical_clocks_make_tiny_corrections(sim):
    params = make_params()
    _, procs = build_cluster(sim, params)
    start_all(procs)
    sim.run(until=1.0)
    for proc in procs:
        for record in proc.sync_records:
            assert abs(record.correction) <= 2 * params.epsilon


def test_outlier_converges_toward_cluster(sim):
    params = make_params()
    offset = 0.4 * params.way_off  # inside WayOff: gradual convergence
    _, procs = build_cluster(sim, params, offsets=[offset, 0.0, 0.0, 0.0])
    start_all(procs)
    sim.run(until=2.0)
    final_gap = procs[0].clock.read(2.0) - procs[1].clock.read(2.0)
    assert abs(final_gap) < 0.1 * offset


def test_way_off_node_jumps_in_one_sync(sim):
    """Figure 1's else-branch: a clock beyond WayOff discards itself and
    lands near the cluster after a single Sync."""
    params = make_params()
    offset = 5.0 * params.way_off
    _, procs = build_cluster(sim, params, offsets=[offset, 0.0, 0.0, 0.0])
    start_all(procs)
    sim.run(until=2.0)
    jump_records = [r for r in procs[0].sync_records if r.own_discarded]
    assert jump_records, "the WayOff branch should have fired"
    first = jump_records[0]
    assert first.correction == pytest.approx(-offset, rel=0.05)


def test_sync_record_fields(sim):
    params = make_params()
    _, procs = build_cluster(sim, params)
    start_all(procs)
    sim.run(until=0.5)
    record = procs[0].sync_records[0]
    assert record.node_id == 0
    assert record.round_no == 1
    assert record.replies == params.n - 1
    assert record.m <= record.big_m + 2 * params.epsilon  # sane statistics


def test_sync_listener_invoked(sim):
    params = make_params()
    _, procs = build_cluster(sim, params)
    seen = []
    procs[0].sync_listeners.append(seen.append)
    start_all(procs)
    sim.run(until=0.5)
    assert len(seen) == procs[0].rounds_completed


def test_early_completion_when_all_reply(sim):
    """With all peers answering promptly, a Sync should finish well
    before the MaxWait deadline."""
    params = make_params()
    _, procs = build_cluster(sim, params)
    start_all(procs)
    sim.run(until=0.5)
    record = procs[0].sync_records[0]
    # First sync starts at start_phase ~ 0.0 local; completion should be
    # around one RTT (~ delta), far below max_wait.
    assert record.real_time < 0.02 + params.max_wait / 2


def test_recovery_restarts_alarm(sim):
    params = make_params()
    _, procs = build_cluster(sim, params)
    start_all(procs)

    class Dummy:
        def on_message(self, process, message):
            pass

    sim.schedule(0.3, lambda: procs[0].seize(Dummy()))
    sim.schedule(0.6, lambda: procs[0].release())
    sim.run(until=1.5)
    post = [r for r in procs[0].sync_records if r.real_time > 0.6]
    assert post, "sync must resume after release"


def test_adjustments_match_corrections(sim):
    """Every good-state clock adjustment equals a sync correction: the
    protocol is the only writer."""
    params = make_params()
    _, procs = build_cluster(sim, params)
    start_all(procs)
    sim.run(until=1.0)
    for proc in procs:
        deltas = [round(d, 12) for _, d, _ in proc.clock.adjustments]
        corrections = [round(r.correction, 12) for r in proc.sync_records]
        assert deltas == corrections
