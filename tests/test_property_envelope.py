"""Property-based tests for the Appendix A envelope algebra."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.envelope import Envelope, average, envelope_of_biases

rhos = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
values = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
widths = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)
offsets = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)


@st.composite
def envelopes(draw, tau0=None, rho=None):
    t0 = draw(st.floats(0.0, 100.0, allow_nan=False)) if tau0 is None else tau0
    r = draw(rhos) if rho is None else rho
    lo = draw(values)
    width = draw(widths)
    return Envelope(tau0=t0, lo=lo, hi=lo + width, rho=r)


@given(env=envelopes(), dt=offsets)
def test_width_grows_linearly(env, dt):
    assert env.width_at(env.tau0 + dt) == (
        (env.hi - env.lo) + 2 * env.rho * dt
    ) or abs(env.width_at(env.tau0 + dt) - ((env.hi - env.lo) + 2 * env.rho * dt)) < 1e-9


@given(env=envelopes(), dt=offsets, beta=values)
def test_membership_is_monotone_in_time(env, dt, beta):
    """Once a bias value is inside the envelope at its anchor, it stays
    inside at all later times (envelopes only widen)."""
    if env.contains(env.tau0, beta):
        assert env.contains(env.tau0 + dt, beta)


@given(env=envelopes(), c=widths, dt=offsets, beta=values)
def test_widened_contains_original(env, c, dt, beta):
    if env.contains(env.tau0 + dt, beta):
        assert env.widened(c).contains(env.tau0 + dt, beta)


@given(env=envelopes(), dt1=offsets, dt2=offsets)
def test_rebased_region_identical(env, dt1, dt2):
    rebased = env.rebased(env.tau0 + dt1)
    tau = env.tau0 + dt1 + dt2
    a0, b0 = env.interval_at(tau)
    a1, b1 = rebased.interval_at(tau)
    assert abs(a0 - a1) < 1e-6 and abs(b0 - b1) < 1e-6


@given(data=st.data(), rho=rhos, tau0=st.floats(0.0, 10.0, allow_nan=False),
       dt=offsets)
def test_average_membership(data, rho, tau0, dt):
    """beta1 in E1 and beta2 in E2 => (beta1+beta2)/2 in avg(E1, E2)."""
    e1 = data.draw(envelopes(tau0=tau0, rho=rho))
    e2 = data.draw(envelopes(tau0=tau0, rho=rho))
    tau = tau0 + dt
    lo1, hi1 = e1.interval_at(tau)
    lo2, hi2 = e2.interval_at(tau)
    beta1 = data.draw(st.floats(lo1, hi1, allow_nan=False)) if hi1 > lo1 else lo1
    beta2 = data.draw(st.floats(lo2, hi2, allow_nan=False)) if hi2 > lo2 else lo2
    avg = average(e1, e2)
    assert avg.contains(tau, (beta1 + beta2) / 2.0, slack=1e-9)


@given(biases=st.lists(values, min_size=1, max_size=20),
       tau0=st.floats(0.0, 10.0), rho=rhos, dt=offsets)
def test_envelope_of_biases_contains_all(biases, tau0, rho, dt):
    env = envelope_of_biases(tau0, biases, rho)
    for beta in biases:
        assert env.contains(tau0 + dt, beta)


@given(env=envelopes(), beta=values, dt=offsets)
def test_distance_zero_iff_inside(env, beta, dt):
    tau = env.tau0 + dt
    inside = env.contains(tau, beta)
    assert (env.distance_outside(tau, beta) == 0.0) == inside


@given(env=envelopes(), c=widths)
def test_widened_contains_envelope(env, c):
    assert env.widened(c).contains_envelope(env, slack=1e-9)
