"""Tests for the cached-estimation (separate probe thread) variants."""

from __future__ import annotations

import pytest

from repro.protocols import registered_protocols
from repro.protocols.cached_estimation import CachedEstimationProcess
from repro.runner.builders import (
    benign_scenario,
    default_params,
    recovery_scenario,
    warmup_for,
)
from repro.runner.experiment import run


def fast_params(n=4, f=1):
    return default_params(n=n, f=f)


def factory(probe_fraction=None, compensate=False, staleness_mult=8.0):
    def make(runtime, params, start_phase):
        probe = (None if probe_fraction is None
                 else params.sync_interval * probe_fraction)
        return CachedEstimationProcess(
            runtime, params, start_phase=start_phase,
            probe_interval=probe,
            max_staleness=staleness_mult * params.sync_interval,
            compensate=compensate)
    return make


class TestRegistration:
    def test_both_variants_registered(self):
        names = registered_protocols()
        assert "cached-naive" in names and "cached-compensated" in names


class TestBenignBehaviour:
    def test_fast_cache_synchronizes_fine(self):
        params = fast_params()
        result = run(benign_scenario(params, duration=5.0, seed=1,
                                     protocol="cached-naive"))
        assert result.max_deviation(2.0) <= params.bounds().max_deviation

    def test_cache_fills_and_syncs_use_it(self):
        params = fast_params()
        result = run(benign_scenario(params, duration=3.0, seed=1,
                                     protocol="cached-naive"))
        process = result.processes[0]
        assert len(process._cache) == params.n - 1
        # Syncs completed and saw replies (cache hits count as replies).
        assert any(r.replies > 0 for r in process.sync_records[2:])

    def test_empty_cache_start_counts_as_timeouts(self):
        """The first sync may fire before any probes: all timeouts, no
        correction, no crash."""
        params = fast_params()
        result = run(benign_scenario(params, duration=3.0, seed=2,
                                     protocol=factory(probe_fraction=1.0)))
        first = result.processes[0].sync_records[0]
        assert first.replies in range(0, params.n)


class TestTheCaveat:
    """Section 3.1: stale caches void Definition 4; compensation fixes it."""

    def test_naive_slow_cache_breaks_recovery_guarantee(self):
        params = default_params(n=7, f=2)
        result = run(recovery_scenario(params, duration=12.0, seed=1,
                                       protocol=factory(0.5, compensate=False),
                                       displacement=8 * params.way_off))
        bound = params.bounds().max_deviation
        broke_bound = result.max_deviation(warmup_for(params)) > bound
        slow_recovery = result.recovery(tolerance=bound).max_recovery_time \
            > 4 * result.params.t_interval
        assert broke_bound or slow_recovery

    def test_compensated_slow_cache_keeps_guarantee(self):
        params = default_params(n=7, f=2)
        result = run(recovery_scenario(params, duration=12.0, seed=1,
                                       protocol=factory(0.5, compensate=True),
                                       displacement=8 * params.way_off))
        bound = params.bounds().max_deviation
        assert result.max_deviation(warmup_for(params)) <= bound
        assert result.recovery(tolerance=bound).all_recovered

    def test_compensation_subtracts_own_adjustments(self):
        """Unit-level: after an own adjustment, compensated cached
        estimates shift by exactly -delta, naive ones don't."""
        params = fast_params()
        result = run(benign_scenario(params, duration=2.0, seed=3,
                                     protocol=factory(0.25, compensate=True)))
        process = result.processes[0]
        estimates_before = process.cached_estimates()
        process.clock.adjust(process.real_now(), 1.0)
        estimates_after = process.cached_estimates()
        for peer in estimates_before:
            if not estimates_before[peer].timed_out:
                assert estimates_after[peer].distance == pytest.approx(
                    estimates_before[peer].distance - 1.0)

    def test_stale_entries_become_timeouts(self):
        params = fast_params()
        result = run(benign_scenario(params, duration=3.0, seed=4,
                                     protocol=factory(0.25, staleness_mult=8.0)))
        process = result.processes[0]
        # Manufacture staleness by back-dating every cache entry.
        for entry in process._cache.values():
            entry.measured_local -= 100.0
        estimates = process.cached_estimates()
        assert all(e.timed_out for e in estimates.values())

    def test_recovery_clears_cache(self):
        params = fast_params()
        result = run(benign_scenario(params, duration=2.0, seed=5,
                                     protocol="cached-naive"))
        process = result.processes[1]
        assert process._cache

        class Dummy:
            def on_message(self, process, message):
                pass

        process.seize(Dummy())
        process.release()
        assert process._cache == {}
