"""Property suite: the vector backend is float-exact vs the scalar one.

Random small scenarios inside the vector envelope — fuzzed n/f, delay
specs, clock populations, topologies, loss, offsets, and silent-fault
plans (crash and recovery, including nodes that stay crashed through
the horizon) — must produce *identical* results on both backends: the
same Figure-1 ``CorrectionDecision`` sequence (``trace.syncs``), the
same final logical clocks (reading, accumulated adjustment, adjustment
history), the same samples or streamed Definition-3 measures, and the
same deterministic engine counters.  Equality is ``==`` on floats:
bit-exact, never approximate.

The suite runs with whatever columns backend the environment has; the
dedicated pure-python test forces :func:`repro.metrics.columns.set_numpy`
off so the fallback path is exercised even on numpy machines (CI runs
the whole file on both matrix legs).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.plans import PlanSpec, StrategySpec
from repro.metrics.columns import set_numpy
from repro.net.links import DelaySpec
from repro.net.topology import TopologySpec
from repro.runner.builders import default_params
from repro.runner.experiment import RunResult, run
from repro.runner.scenario import Scenario
from repro.runner.vector import run_vector, scalar_only_reason, vector_spec
from repro.sim.vector import run_batch

SILENT = StrategySpec(name="silent")

PLAN_SPECS = [
    None,
    PlanSpec(kind="rotating", strategy=SILENT),
    PlanSpec(kind="round-robin", strategy=SILENT),
    PlanSpec(kind="single-burst", strategy=SILENT,
             options={"victims": [0], "start": 0.2, "dwell": 0.3}),
    PlanSpec(kind="random", strategy=SILENT),
]

DELAY_SPECS = [
    None,  # scenario default
    DelaySpec(model="fixed"),
    DelaySpec(model="uniform"),
    DelaySpec(model="asymmetric"),
    DelaySpec(model="jittered"),
]

CLOCKS = ["wander", "extremal", "perfect"]

TOPOLOGIES = [None, TopologySpec(kind="full-mesh"),
              TopologySpec(kind="ring")]


def assert_exact_parity(scalar: RunResult, vector: RunResult) -> None:
    """Float-exact equality of everything both backends produce."""
    assert scalar.trace.syncs == vector.trace.syncs
    assert scalar.trace.corruptions == vector.trace.corruptions
    assert list(scalar.corruptions) == list(vector.corruptions)

    assert list(scalar.samples.times) == list(vector.samples.times)
    assert (list(scalar.samples.clocks) == list(vector.samples.clocks))
    for node in scalar.samples.clocks:
        assert (list(scalar.samples.clocks[node])
                == list(vector.samples.clocks[node])), f"clock column {node}"
    if scalar.stream is None:
        assert vector.stream is None
    else:
        assert vector.stream is not None
        assert (scalar.stream.deviation_series()
                == vector.stream.deviation_series())

    assert set(scalar.clocks) == set(vector.clocks)
    horizon = scalar.scenario.duration
    for node, clock in scalar.clocks.items():
        other = vector.clocks[node]
        assert clock.adj == other.adj, f"node {node} adj"
        assert clock.adjustments == other.adjustments, f"node {node} history"
        assert clock.read(horizon) == other.read(horizon), f"node {node} read"

    assert scalar.events_processed == vector.events_processed
    assert scalar.messages_delivered == vector.messages_delivered
    for counter in ("events_processed", "events_pushed", "events_cancelled",
                    "cancelled_ratio", "heap_high_water", "pending_events"):
        assert (getattr(scalar.perf, counter)
                == getattr(vector.perf, counter)), f"perf.{counter}"


def fuzzed_scenario(f, extra_nodes, seed, plan_index, delay_index,
                    clock_index, topology_index, loss_milli, spread_micro,
                    stagger, intervals) -> Scenario:
    n = 3 * f + 1 + extra_nodes
    topology = TOPOLOGIES[topology_index]
    if topology is not None and topology.kind == "ring" and f > 1:
        # A ring gives each node 2 peers + itself = 3 estimates, enough
        # for the (f+1)-st order statistics only at f=1; larger f would
        # make *both* backends raise ParameterError before comparing.
        topology = None
    params = default_params(n=n, f=f, delta=0.002, rho=1e-3, pi=1.0,
                            target_k=8)
    return Scenario(
        params=params,
        duration=intervals * params.sync_interval,
        seed=seed,
        topology=topology,
        delay_model=DELAY_SPECS[delay_index],
        clock_factory=CLOCKS[clock_index],
        initial_offset_spread=spread_micro * 1e-6,
        plan_builder=PLAN_SPECS[plan_index],
        sample_interval=params.sync_interval / 3.0,
        loss_rate=loss_milli / 1000.0,
        stagger_phases=stagger,
        name="vector-parity",
    )


PARITY_STRATEGY = dict(
    f=st.integers(1, 2),
    extra_nodes=st.integers(0, 2),
    seed=st.integers(0, 10_000),
    plan_index=st.integers(0, len(PLAN_SPECS) - 1),
    delay_index=st.integers(0, len(DELAY_SPECS) - 1),
    clock_index=st.integers(0, len(CLOCKS) - 1),
    topology_index=st.integers(0, len(TOPOLOGIES) - 1),
    loss_milli=st.sampled_from([0, 50]),
    spread_micro=st.integers(0, 500),
    stagger=st.booleans(),
    intervals=st.sampled_from([3, 5]),
    stream=st.booleans(),
)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(**PARITY_STRATEGY)
def test_vector_matches_scalar_over_model_space(
        f, extra_nodes, seed, plan_index, delay_index, clock_index,
        topology_index, loss_milli, spread_micro, stagger, intervals,
        stream):
    scenario = fuzzed_scenario(f, extra_nodes, seed, plan_index,
                               delay_index, clock_index, topology_index,
                               loss_milli, spread_micro, stagger, intervals)
    assert scalar_only_reason(scenario) is None
    scalar = run(scenario, stream_measures=stream)
    vector = run_vector(scenario, stream_measures=stream)
    assert_exact_parity(scalar, vector)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(**PARITY_STRATEGY)
def test_vector_matches_scalar_pure_python(
        f, extra_nodes, seed, plan_index, delay_index, clock_index,
        topology_index, loss_milli, spread_micro, stagger, intervals,
        stream):
    """Same property with the numpy fast path forced off."""
    set_numpy(False)
    try:
        scenario = fuzzed_scenario(f, extra_nodes, seed, plan_index,
                                   delay_index, clock_index, topology_index,
                                   loss_milli, spread_micro, stagger,
                                   intervals)
        scalar = run(scenario, stream_measures=stream)
        vector = run_vector(scenario, stream_measures=stream)
        assert_exact_parity(scalar, vector)
    finally:
        set_numpy(None)


def test_node_crashed_through_horizon():
    """A victim corrupted until past the horizon (no recovery) matches."""
    params = default_params(n=4, f=1, delta=0.002, rho=1e-3, pi=1.0,
                            target_k=8)
    scenario = Scenario(
        params=params,
        duration=5.0 * params.sync_interval,
        seed=11,
        plan_builder=PlanSpec(
            kind="single-burst", strategy=SILENT,
            options={"victims": [1],
                     "start": 1.5 * params.sync_interval,
                     "dwell": 100.0 * params.sync_interval}),
        initial_offset_spread=3e-4,
        name="crash-no-recovery",
    )
    scalar = run(scenario, stream_measures=True)
    vector = run_vector(scenario, stream_measures=True)
    assert scalar.corruptions, "plan produced no corruption interval"
    assert scalar.corruptions[-1].end >= scenario.duration
    assert_exact_parity(scalar, vector)


def test_recovering_node_rejoins_identically():
    """Rotating silent faults: every node crashes and recovers; the
    post-recovery re-sync must be float-exact on both backends."""
    params = default_params(n=5, f=1, delta=0.002, rho=1e-3, pi=1.0,
                            target_k=8)
    scenario = Scenario(
        params=params,
        duration=13.0 * params.sync_interval,  # fits two episodes: the
        # rotation separates episode starts by dwell + PI + margin
        seed=4,
        plan_builder=PlanSpec(
            kind="rotating", strategy=SILENT,
            options={"dwell": 2.0 * params.sync_interval,
                     "first_start": 0.5 * params.sync_interval}),
        initial_offset_spread=5e-4,
        name="recovery-parity",
    )
    scalar = run(scenario, stream_measures=True)
    vector = run_vector(scenario, stream_measures=True)
    assert len(scalar.corruptions) >= 2
    assert_exact_parity(scalar, vector)


def test_run_batch_verifies_decisions_and_stacks_columns():
    """The batch self-check replays every decision through the masked
    columnar kernel, and the (batch, node) columns equal per-run state."""
    params = default_params(n=5, f=1, delta=0.002, rho=1e-3, pi=1.0,
                            target_k=8)
    scenarios = [
        Scenario(params=params, duration=4.0 * params.sync_interval,
                 seed=seed,
                 plan_builder=PlanSpec(kind="rotating", strategy=SILENT),
                 initial_offset_spread=5e-4, name=f"batch-{seed}")
        for seed in range(6)
    ]
    specs = [vector_spec(s, stream_measures=True) for s in scenarios]
    batch = run_batch(specs, check_decisions=True)
    assert batch.decisions_verified > 0
    assert batch.events_processed == sum(
        output.events_processed for output in batch.outputs)
    assert set(batch.final_clock_columns) == set(range(params.n))
    for index, (scenario, output) in enumerate(zip(scenarios,
                                                   batch.outputs)):
        for node in range(params.n):
            clock = output.clocks[node]
            assert (batch.final_clock_columns[node][index]
                    == clock.read(scenario.duration))
            assert batch.final_adj_columns[node][index] == clock.adj


def test_out_of_envelope_scenario_falls_back_to_scalar():
    """A non-silent strategy is outside the envelope: the vector entry
    point must hand back a result identical to the scalar engine's."""
    params = default_params(n=4, f=1, delta=0.002, rho=1e-3, pi=1.0,
                            target_k=8)
    scenario = Scenario(
        params=params,
        duration=4.0 * params.sync_interval,
        seed=2,
        plan_builder=PlanSpec(
            kind="rotating",
            strategy=StrategySpec(name="liar", kwargs={"offset": 0.5})),
        name="fallback-parity",
    )
    scalar = run(scenario, stream_measures=True)
    vector = run_vector(scenario, stream_measures=True)
    assert_exact_parity(scalar, vector)
    # And the runner-side reason check agrees this config is in-envelope
    # syntactically (the refusal happens at strategy resolution).
    assert scalar_only_reason(scenario) is None


def test_record_messages_is_scalar_only():
    params = default_params(n=4, f=1, delta=0.002, rho=1e-3, pi=1.0,
                            target_k=8)
    scenario = Scenario(params=params, duration=2.0 * params.sync_interval,
                        seed=1, record_messages=True, name="msgs")
    assert scalar_only_reason(scenario) is not None
    vector = run_vector(scenario)
    assert vector.trace.messages  # the scalar fallback recorded traffic


def test_empty_batch_is_rejected_or_trivial():
    """run_batch on zero specs returns an empty, consistent result."""
    batch = run_batch([])
    assert batch.outputs == []
    assert batch.events_processed == 0
    assert batch.final_clock_columns == {}
    assert batch.events_per_second() == 0.0
