"""Unit tests for the simulation engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_schedule_and_run_advances_time(sim):
    fired = []
    sim.schedule(2.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]
    assert sim.now == 2.5


def test_schedule_at_absolute_time(sim):
    fired = []
    sim.schedule_at(4.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [4.0]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1.0))
    sim.schedule(5.0, lambda: fired.append(5.0))
    sim.run(until=2.0)
    assert fired == [1.0]
    assert sim.now == 2.0  # clock advanced to the horizon


def test_run_until_then_resume(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1.0))
    sim.schedule(5.0, lambda: fired.append(5.0))
    sim.run(until=2.0)
    sim.run()
    assert fired == [1.0, 5.0]


def test_events_scheduled_during_run_are_executed(sim):
    fired = []

    def chain():
        fired.append(sim.now)
        if len(fired) < 3:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_max_events_limit(sim):
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    executed = sim.run(max_events=4)
    assert executed == 4
    assert sim.pending_events == 6


def test_stop_terminates_run(sim):
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.pending_events == 1


def test_cancel_scheduled_event(sim):
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    sim.cancel(handle)
    sim.run()
    assert fired == []


def test_step_executes_one_event(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False


def test_events_processed_counter(sim):
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_run_is_not_reentrant(sim):
    def reenter():
        sim.run()

    sim.schedule(1.0, reenter)
    with pytest.raises(SimulationError):
        sim.run()


def test_step_drain_after_handle_cancel(sim):
    """Handle-cancelling a scheduled event then draining with step() must
    not raise: the live count stays honest (seed code overcounted and
    step() hit SimulationError('pop() from an empty event queue'))."""
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    while sim.step():
        pass
    assert sim.pending_events == 0


def test_run_until_with_max_events_no_time_jump(sim):
    """max_events exit must leave ``now`` at the last executed event, not
    jump to the ``until`` horizon past still-pending events."""
    fired = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, lambda t=t: fired.append(t))
    sim.run(until=10.0, max_events=1)
    assert fired == [1.0]
    assert sim.now == 1.0
    # Resume: the remaining events run at their own times, monotonically.
    executed = sim.run(until=10.0)
    assert executed == 2
    assert fired == [1.0, 2.0, 3.0]
    assert sim.now == 10.0  # horizon reached only after the real drain


def test_stop_with_until_leaves_now_at_last_event(sim):
    sim.schedule(1.0, sim.stop)
    sim.schedule(5.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 1.0
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_resumed_run_never_regresses_time(sim):
    """Observed event times must be non-decreasing across run() calls."""
    seen = []
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.schedule(t, lambda: seen.append(sim.now))
    sim.run(until=8.0, max_events=2)
    sim.run(until=8.0)
    assert seen == sorted(seen) == [1.0, 2.0, 3.0, 4.0]


def test_run_until_empty_queue_advances_to_horizon(sim):
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_cancel_via_handle_matches_queue_cancel(sim):
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.cancel(handle)  # double-cancel across both routes: no-op
    sim.run()
    assert fired == []
    assert sim.pending_events == 0


def test_perf_counters_surface(sim):
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    victim = sim.schedule(6.0, lambda: None)
    victim.cancel()
    sim.run()
    perf = sim.perf_counters()
    assert perf.events_processed == 5
    assert perf.events_pushed == 6
    assert perf.events_cancelled == 1
    assert perf.cancelled_ratio == pytest.approx(1 / 6)
    assert perf.heap_high_water == 6
    assert perf.pending_events == 0
    assert perf.run_wall_time > 0.0
    assert perf.events_per_second > 0.0


def test_perf_counters_before_any_run(sim):
    perf = sim.perf_counters()
    assert perf.events_processed == 0
    assert perf.cancelled_ratio == 0.0
    assert perf.events_per_second == 0.0


def test_determinism_same_seed_same_stream():
    a = Simulator(seed=42)
    b = Simulator(seed=42)
    sa = a.rngs.stream("x")
    sb = b.rngs.stream("x")
    assert [sa.random() for _ in range(5)] == [sb.random() for _ in range(5)]


def test_different_streams_are_independent():
    sim = Simulator(seed=42)
    first = [sim.rngs.stream("a").random() for _ in range(3)]
    second = [sim.rngs.stream("b").random() for _ in range(3)]
    assert first != second
