"""Unit tests for the simulation engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_schedule_and_run_advances_time(sim):
    fired = []
    sim.schedule(2.5, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]
    assert sim.now == 2.5


def test_schedule_at_absolute_time(sim):
    fired = []
    sim.schedule_at(4.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [4.0]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1.0))
    sim.schedule(5.0, lambda: fired.append(5.0))
    sim.run(until=2.0)
    assert fired == [1.0]
    assert sim.now == 2.0  # clock advanced to the horizon


def test_run_until_then_resume(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1.0))
    sim.schedule(5.0, lambda: fired.append(5.0))
    sim.run(until=2.0)
    sim.run()
    assert fired == [1.0, 5.0]


def test_events_scheduled_during_run_are_executed(sim):
    fired = []

    def chain():
        fired.append(sim.now)
        if len(fired) < 3:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_max_events_limit(sim):
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    executed = sim.run(max_events=4)
    assert executed == 4
    assert sim.pending_events == 6


def test_stop_terminates_run(sim):
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.pending_events == 1


def test_cancel_scheduled_event(sim):
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    sim.cancel(handle)
    sim.run()
    assert fired == []


def test_step_executes_one_event(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False


def test_events_processed_counter(sim):
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_run_is_not_reentrant(sim):
    def reenter():
        sim.run()

    sim.schedule(1.0, reenter)
    with pytest.raises(SimulationError):
        sim.run()


def test_determinism_same_seed_same_stream():
    a = Simulator(seed=42)
    b = Simulator(seed=42)
    sa = a.rngs.stream("x")
    sb = b.rngs.stream("x")
    assert [sa.random() for _ in range(5)] == [sb.random() for _ in range(5)]


def test_different_streams_are_independent():
    sim = Simulator(seed=42)
    first = [sim.rngs.stream("a").random() for _ in range(3)]
    second = [sim.rngs.stream("b").random() for _ in range(3)]
    assert first != second
