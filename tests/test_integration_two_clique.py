"""Integration test: the Section 5 two-clique counterexample.

The paper: "(3f+1)-connectivity is not sufficient ... two cliques of
3f+1 nodes [joined by a matching] ... our protocol cannot guarantee
that the clocks in one clique do not drift apart from those in the
other."  Each node hears 3f same-clique clocks plus one cross-clique
clock; the f+1 order statistics discard the single cross voice, so each
clique converges internally while the cliques free-run apart.
"""

from __future__ import annotations

import statistics

import pytest

from repro.runner.builders import two_clique_scenario, warmup_for
from repro.runner.experiment import run


class TestTwoCliqueCounterexample:
    @pytest.fixture(scope="class")
    def result(self):
        return run(two_clique_scenario(f=1, duration=40.0, seed=5))

    def test_cliques_internally_synchronized(self, result):
        """Within each clique the protocol works perfectly."""
        params = result.params
        half = params.n // 2
        last = len(result.samples.times) - 1
        for clique in (range(half), range(half, params.n)):
            values = [result.samples.clocks[i][last] for i in clique]
            assert max(values) - min(values) <= params.bounds().max_deviation

    def test_cliques_drift_apart(self, result):
        """The cross-clique gap grows roughly at the mutual drift rate —
        synchronization across the matching fails."""
        params = result.params
        half = params.n // 2

        def gap_at(index):
            c1 = [result.samples.clocks[i][index] for i in range(half)]
            c2 = [result.samples.clocks[i][index] for i in range(half, params.n)]
            return statistics.mean(c1) - statistics.mean(c2)

        early = gap_at(result.samples.index_at_or_after(5.0))
        late = gap_at(len(result.samples.times) - 1)
        assert abs(late) > abs(early)
        assert abs(late) > params.bounds().max_deviation

    def test_gap_growth_rate_matches_mutual_drift(self, result):
        """The cliques free-run: gap ~ duration * ((1+rho) - 1/(1+rho))."""
        params = result.params
        half = params.n // 2
        last = len(result.samples.times) - 1
        horizon = result.samples.times[last]
        c1 = [result.samples.clocks[i][last] for i in range(half)]
        c2 = [result.samples.clocks[i][last] for i in range(half, params.n)]
        gap = statistics.mean(c1) - statistics.mean(c2)
        expected = horizon * ((1 + params.rho) - 1 / (1 + params.rho))
        assert gap == pytest.approx(expected, rel=0.35)

    def test_full_mesh_same_parameters_does_not_drift(self):
        """Control: identical clock population on a full mesh stays
        synchronized — the topology, not the drift, is the problem."""
        scenario = two_clique_scenario(f=1, duration=40.0, seed=5)
        scenario.topology = None  # full mesh default
        result = run(scenario)
        params = result.params
        deviation = result.max_deviation(warmup_for(params))
        assert deviation <= params.bounds().max_deviation
