"""Unit tests for named deterministic random streams."""

from __future__ import annotations

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_returns_same_stream():
    registry = RngRegistry(seed=7)
    assert registry.stream("x") is registry.stream("x")


def test_streams_are_reproducible_across_registries():
    first = [RngRegistry(seed=7).stream("link").random() for _ in range(1)]
    second = [RngRegistry(seed=7).stream("link").random() for _ in range(1)]
    assert first == second


def test_distinct_names_give_distinct_sequences():
    registry = RngRegistry(seed=7)
    a = [registry.stream("a").random() for _ in range(4)]
    b = [registry.stream("b").random() for _ in range(4)]
    assert a != b


def test_distinct_seeds_give_distinct_sequences():
    a = RngRegistry(seed=1).stream("x").random()
    b = RngRegistry(seed=2).stream("x").random()
    assert a != b


def test_derive_seed_is_stable():
    assert derive_seed(10, "foo") == derive_seed(10, "foo")
    assert derive_seed(10, "foo") != derive_seed(10, "bar")
    assert derive_seed(10, "foo") != derive_seed(11, "foo")


def test_creating_unrelated_stream_does_not_perturb_existing():
    """Variance isolation: draws from one stream are independent of
    whether other streams were created."""
    reg1 = RngRegistry(seed=3)
    s1 = reg1.stream("target")
    first = s1.random()

    reg2 = RngRegistry(seed=3)
    reg2.stream("noise")  # extra stream created first
    second = reg2.stream("target").random()
    assert first == second


def test_fork_produces_independent_namespace():
    registry = RngRegistry(seed=5)
    child_a = registry.fork("rep-0")
    child_b = registry.fork("rep-1")
    assert child_a.stream("x").random() != child_b.stream("x").random()
    # Forks are themselves reproducible.
    again = RngRegistry(seed=5).fork("rep-0")
    assert RngRegistry(seed=5).fork("rep-0").stream("x").random() == again.stream("x").random()
