"""Property-based tests for the measurement pipeline.

The measures feed every experimental claim, so their own invariants get
hypothesis coverage: good-set membership vs corruption windows, the
deviation measure's relation to raw samples, and stretch construction.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.measures import deviation_series, good_stretches
from repro.metrics.sampler import ClockSamples, CorruptionInterval, good_set


times_strategy = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def corruption_sets(draw, n_nodes=5):
    count = draw(st.integers(0, 6))
    corruptions = []
    for _ in range(count):
        node = draw(st.integers(0, n_nodes - 1))
        start = draw(times_strategy)
        length = draw(st.floats(0.1, 10.0, allow_nan=False))
        corruptions.append(CorruptionInterval(node, start, start + length))
    return corruptions


@given(corruptions=corruption_sets(), tau=times_strategy,
       pi=st.floats(0.1, 10.0, allow_nan=False))
def test_good_set_definition(corruptions, tau, pi):
    """A node is good at tau iff no corruption touches [tau - PI, tau]
    (clipped at 0) — checked against the definition directly."""
    n = 5
    computed = good_set(corruptions, tau, pi, n)
    lo = max(0.0, tau - pi)
    for node in range(n):
        touched = any(c.node == node and c.start <= tau and c.end >= lo
                      for c in corruptions)
        assert (node not in computed) == touched


@given(corruptions=corruption_sets(), tau=times_strategy,
       pi_small=st.floats(0.1, 5.0, allow_nan=False),
       extra=st.floats(0.0, 5.0, allow_nan=False))
def test_good_set_monotone_in_pi(corruptions, tau, pi_small, extra):
    """A larger PI window can only shrink the good set."""
    n = 5
    large = good_set(corruptions, tau, pi_small + extra, n)
    small = good_set(corruptions, tau, pi_small, n)
    assert large <= small


@given(values=st.lists(st.floats(-100, 100, allow_nan=False), min_size=2,
                       max_size=8))
def test_deviation_is_span_without_faults(values):
    samples = ClockSamples(times=[0.0],
                           clocks={i: [v] for i, v in enumerate(values)})
    series = deviation_series(samples, [], pi=1.0, n=len(values))
    assert series[0][1] == max(values) - min(values)


@given(values=st.lists(st.floats(-100, 100, allow_nan=False), min_size=3,
                       max_size=8),
       excluded=st.integers(0, 2))
def test_deviation_ignores_faulty_nodes(values, excluded):
    """Excluding a node from the good set removes its influence."""
    n = len(values)
    samples = ClockSamples(times=[10.0],
                           clocks={i: [v] for i, v in enumerate(values)})
    corruption = [CorruptionInterval(excluded, 9.5, 10.5)]
    series = deviation_series(samples, corruption, pi=1.0, n=n)
    rest = [v for i, v in enumerate(values) if i != excluded]
    assert series[0][1] == max(rest) - min(rest)


@settings(max_examples=100)
@given(corruptions=corruption_sets(n_nodes=3),
       pi=st.floats(0.1, 5.0, allow_nan=False),
       horizon=st.floats(5.0, 50.0, allow_nan=False))
def test_good_stretches_are_actually_good(corruptions, pi, horizon):
    """Every point of a reported stretch satisfies Definition 3(ii)'s
    window requirement: the node is non-faulty during [t1 - PI, t2]."""
    for node, t1, t2 in good_stretches(corruptions, pi, 3, horizon):
        assert 0.0 <= t1 < t2 <= horizon
        window_lo = max(0.0, t1 - pi)
        for c in corruptions:
            if c.node == node:
                # Half-open boundary: a corruption ending exactly at
                # window_lo (or starting exactly at t2) is a
                # measure-zero touch, permitted by convention.  The 1e-9
                # tolerance absorbs float round-trip noise in
                # t1 = end + pi followed by window_lo = t1 - pi.
                strictly_overlaps = (c.start < t2 - 1e-9
                                     and c.end > window_lo + 1e-9)
                assert not strictly_overlaps, (node, t1, t2, c.start, c.end)


@settings(max_examples=100)
@given(corruptions=corruption_sets(n_nodes=3),
       pi=st.floats(0.1, 5.0, allow_nan=False),
       horizon=st.floats(5.0, 50.0, allow_nan=False))
def test_good_stretches_are_maximal_on_the_right(corruptions, pi, horizon):
    """A stretch ends only at the horizon or at the next corruption."""
    for node, t1, t2 in good_stretches(corruptions, pi, 3, horizon):
        if t2 < horizon:
            assert any(c.node == node and abs(c.start - t2) < 1e-9
                       for c in corruptions)
