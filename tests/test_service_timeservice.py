"""Unit + integration tests for the secure time service."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runner.builders import (
    default_params,
    mobile_byzantine_scenario,
    warmup_for,
)
from repro.runner.experiment import run
from repro.service import SecureTimeService, Timestamp


@pytest.fixture(scope="module")
def synced_run():
    params = default_params(n=4, f=1)
    return run(mobile_byzantine_scenario(params, duration=10.0, seed=11))


def make_service(result, node):
    return SecureTimeService(result.processes[node], result.params)


class TestBasics:
    def test_now_matches_clock(self, synced_run):
        service = make_service(synced_run, 0)
        tau = synced_run.samples.times[-1]
        # After the run, sim.now is the end; now() reads the clock then.
        assert service.now() == pytest.approx(
            synced_run.clocks[0].read(synced_run.processes[0].real_now()))

    def test_timestamp_carries_issuer(self, synced_run):
        service = make_service(synced_run, 2)
        ts = service.timestamp()
        assert ts.issuer == 2
        assert ts.value == pytest.approx(service.now())

    def test_negative_extra_allowance_rejected(self, synced_run):
        with pytest.raises(ConfigurationError):
            SecureTimeService(synced_run.processes[0], synced_run.params,
                              extra_allowance=-1.0)


class TestEpochs:
    def test_epoch_length_must_exceed_skew(self, synced_run):
        service = make_service(synced_run, 0)
        with pytest.raises(ConfigurationError):
            service.epoch(length=service.skew)

    def test_good_nodes_epochs_agree_within_guarantee(self, synced_run):
        """The end-to-end property: all good nodes' epochs differ by at
        most epochs_agree_within()."""
        params = synced_run.params
        length = 0.5
        services = [make_service(synced_run, node) for node in range(params.n)]
        epochs = [s.epoch(length) for s in services]
        allowed = services[0].epochs_agree_within(length)
        assert max(epochs) - min(epochs) <= allowed

    def test_epochs_advance_with_time(self, synced_run):
        service = make_service(synced_run, 0)
        assert service.epoch(0.5) >= 10  # 10 s of run / 0.5 s epochs


class TestFreshness:
    def test_own_fresh_timestamp_validates(self, synced_run):
        service = make_service(synced_run, 0)
        assert service.validate_timestamp(service.timestamp(), max_age=1.0)

    def test_peer_timestamp_validates_across_good_nodes(self, synced_run):
        issuer = make_service(synced_run, 1)
        verifier = make_service(synced_run, 3)
        assert verifier.validate_timestamp(issuer.timestamp(), max_age=1.0)

    def test_stale_timestamp_rejected(self, synced_run):
        service = make_service(synced_run, 0)
        stale = Timestamp(value=service.now() - 5.0, issuer=1)
        assert not service.validate_timestamp(stale, max_age=1.0)

    def test_future_timestamp_beyond_skew_rejected(self, synced_run):
        """A clock claiming to be far ahead cannot belong to a good
        node: reject (this is what 'secure time' buys over plain NTP)."""
        service = make_service(synced_run, 0)
        forged = Timestamp(value=service.now() + 10 * service.skew, issuer=1)
        assert not service.validate_timestamp(forged, max_age=1.0)

    def test_slightly_future_timestamp_tolerated(self, synced_run):
        """Within the deviation window a peer may legitimately be ahead."""
        service = make_service(synced_run, 0)
        slightly_ahead = Timestamp(value=service.now() + 0.5 * service.skew,
                                   issuer=1)
        assert service.validate_timestamp(slightly_ahead, max_age=1.0)


class TestExpiry:
    def test_safe_expiry_not_expired_anywhere(self, synced_run):
        params = synced_run.params
        issuer = make_service(synced_run, 0)
        expiry = issuer.safe_expiry(ttl=1.0)
        for node in range(params.n):
            verifier = make_service(synced_run, node)
            assert not verifier.is_expired(expiry, conservative=False)

    def test_conservative_vs_eager_expiration(self, synced_run):
        service = make_service(synced_run, 0)
        margin = service.skew + service.extra
        # A deadline just behind now: possibly expired, not certainly.
        borderline = service.now() - margin / 2
        assert service.is_expired(borderline, conservative=False)
        assert not service.is_expired(borderline, conservative=True)
        # A deadline far behind now: expired under both rules.
        long_gone = service.now() - 10 * margin
        assert service.is_expired(long_gone, conservative=True)
