"""Tests for the [10]-style broadcast-based comparator."""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.adversary.base import ByzantineStrategy
from repro.adversary.mobile import single_burst_plan
from repro.core.params import ProtocolParams
from repro.errors import ParameterError
from repro.protocols import registered_protocols
from repro.protocols.broadcast_based import BroadcastSyncProcess, Resync
from repro.runner.builders import benign_scenario, default_params, warmup_for
from repro.runner.experiment import run


class ScrambleState(ByzantineStrategy):
    """Full Byzantine control: scramble both the clock and the internal
    epoch counter before leaving ('the adversary ... may also modify the
    internal state of p')."""

    name = "scramble-state"

    def __init__(self, clock_offset: float, epoch_offset: int) -> None:
        self.clock_offset = clock_offset
        self.epoch_offset = epoch_offset

    def on_leave(self, process, rng: random.Random) -> None:
        process.clock.hijack_set(process.real_now(),
                                 process.clock.adj + self.clock_offset)
        if hasattr(process, "epoch"):
            process.epoch += self.epoch_offset


def scramble_scenario(params, protocol, duration=12.0, seed=1):
    def plan(scenario, clocks):
        return single_burst_plan(
            [0], start=2.0, dwell=1.0,
            strategy_factory=lambda n, e: ScrambleState(
                clock_offset=6.0 * params.way_off, epoch_offset=50),
        )

    scenario = benign_scenario(params, duration=duration, seed=seed,
                               protocol=protocol)
    return dataclasses.replace(scenario, plan_builder=plan)


class TestRegistration:
    def test_variants_registered(self):
        names = registered_protocols()
        assert "broadcast-detected" in names
        assert "broadcast-undetected" in names

    def test_majority_requirement(self, sim):
        from repro.clocks.hardware import FixedRateClock
        from repro.clocks.logical import LogicalClock
        from repro.net.links import FixedDelay
        from repro.net.network import Network
        from repro.net.topology import full_mesh

        params = dataclasses.replace(default_params(n=4, f=1), n=2, strict=False)
        network = Network(sim, full_mesh(2), FixedDelay(delta=params.delta))
        clock = LogicalClock(FixedRateClock(rho=params.rho))
        from repro.sim.runtime import SimRuntime
        with pytest.raises(ParameterError, match="majority"):
            BroadcastSyncProcess(SimRuntime(0, sim, network, clock), params)


class TestBenign:
    def test_synchronizes_within_bound(self):
        params = default_params(n=4, f=1)
        result = run(benign_scenario(params, duration=8.0, seed=1,
                                     protocol="broadcast-undetected"))
        assert result.max_deviation(2.0) <= params.bounds().max_deviation

    def test_epochs_advance_in_lockstep(self):
        params = default_params(n=4, f=1)
        result = run(benign_scenario(params, duration=8.0, seed=1,
                                     protocol="broadcast-undetected"))
        epochs = [p.epoch for p in result.processes.values()]
        assert max(epochs) - min(epochs) <= 1
        assert min(epochs) > 5

    def test_works_at_majority_only_n5_f2(self):
        """The [10] advantage: n = 2f+1 suffices (Sync needs 3f+1)."""
        params = dataclasses.replace(default_params(n=7, f=2), n=5, strict=False)
        result = run(benign_scenario(params, duration=8.0, seed=2,
                                     protocol="broadcast-undetected"))
        assert result.max_deviation(2.0) <= params.bounds().max_deviation


class TestDetectionDependence:
    """The paper's critique: [10] assumes detected faults."""

    def test_detected_recovery_rejoins(self):
        params = default_params(n=4, f=1)
        result = run(scramble_scenario(params, "broadcast-detected"))
        report = result.recovery()
        assert report.events and report.all_recovered

    def test_undetected_recovery_never_rejoins(self):
        """Same attack, no detection: the scrambled epoch counter waits
        for an epoch that never comes."""
        params = default_params(n=4, f=1)
        result = run(scramble_scenario(params, "broadcast-undetected"))
        report = result.recovery()
        assert report.events and not report.all_recovered

    def test_sync_recovers_undetected_from_same_attack(self):
        """The paper's protocol needs no detection for the same attack
        (epoch scrambling is a no-op for it; the clock offset is what
        matters)."""
        params = default_params(n=4, f=1)
        result = run(scramble_scenario(params, "sync"))
        report = result.recovery()
        assert report.events and report.all_recovered


class TestSignatureChains:
    def test_under_signed_untimely_announcement_rejected(self):
        """A lone Byzantine announcing a wrong epoch early gains no
        traction: good nodes are not timely for it and the chain never
        reaches f+1 signatures."""
        params = default_params(n=4, f=1)

        class EarlyAnnouncer(ByzantineStrategy):
            name = "early-announcer"

            def on_break_in(self, process, rng):
                process.broadcast(Resync(epoch=40, signers=(process.node_id,)))

        def plan(scenario, clocks):
            return single_burst_plan([0], start=2.0, dwell=1.0,
                                     strategy_factory=lambda n, e: EarlyAnnouncer())

        scenario = benign_scenario(params, duration=8.0, seed=3,
                                   protocol="broadcast-undetected")
        scenario = dataclasses.replace(scenario, plan_builder=plan)
        result = run(scenario)
        # Good nodes never jumped to epoch 40's target.
        assert result.max_deviation(warmup_for(params)) \
            <= params.bounds().max_deviation
        good_epochs = [p.epoch for node, p in result.processes.items() if node != 0]
        assert max(good_epochs) < 30
