"""Unit tests for the Appendix A envelope calculus."""

from __future__ import annotations

import math

import pytest

from repro.core.envelope import Envelope, average, envelope_of_biases, lemma7_shrunk_width
from repro.errors import MeasurementError


def test_interval_at_anchor():
    env = Envelope(tau0=10.0, lo=-1.0, hi=2.0, rho=0.1)
    assert env.interval_at(10.0) == (-1.0, 2.0)
    assert env.width_at(10.0) == 3.0


def test_interval_widens_with_drift():
    env = Envelope(tau0=0.0, lo=-1.0, hi=1.0, rho=0.5)
    assert env.interval_at(2.0) == (-2.0, 2.0)
    assert env.width_at(2.0) == 4.0


def test_evaluation_before_anchor_rejected():
    env = Envelope(tau0=5.0, lo=0.0, hi=1.0, rho=0.0)
    with pytest.raises(MeasurementError):
        env.interval_at(4.0)


def test_inverted_bounds_rejected():
    with pytest.raises(MeasurementError):
        Envelope(tau0=0.0, lo=1.0, hi=0.0, rho=0.0)


def test_negative_rho_rejected():
    with pytest.raises(MeasurementError):
        Envelope(tau0=0.0, lo=0.0, hi=1.0, rho=-0.1)


def test_infinite_sides_allowed():
    env = Envelope(tau0=0.0, lo=-math.inf, hi=0.0, rho=0.1)
    assert env.contains(5.0, -1e12)
    assert not env.contains(5.0, 10.0)


def test_contains_and_distances():
    env = Envelope(tau0=0.0, lo=0.0, hi=1.0, rho=0.0)
    assert env.contains(3.0, 0.5)
    assert env.distance_above(3.0, 1.5) == pytest.approx(0.5)
    assert env.distance_below(3.0, -0.25) == pytest.approx(0.25)
    assert env.distance_outside(3.0, 0.5) == 0.0
    assert env.distance_outside(3.0, 2.0) == pytest.approx(1.0)


def test_contains_with_slack():
    env = Envelope(tau0=0.0, lo=0.0, hi=1.0, rho=0.0)
    assert env.contains(0.0, 1.05, slack=0.1)
    assert not env.contains(0.0, 1.2, slack=0.1)


def test_widened_extends_both_sides():
    env = Envelope(tau0=0.0, lo=0.0, hi=1.0, rho=0.2)
    wide = env.widened(0.5)
    assert wide.interval_at(0.0) == (-0.5, 1.5)
    assert wide.rho == env.rho


def test_widened_negative_rejected():
    with pytest.raises(MeasurementError):
        Envelope(tau0=0.0, lo=0.0, hi=1.0, rho=0.0).widened(-0.1)


def test_rebased_preserves_region():
    env = Envelope(tau0=0.0, lo=0.0, hi=1.0, rho=0.1)
    rebased = env.rebased(5.0)
    for tau in (5.0, 7.5, 20.0):
        assert rebased.interval_at(tau)[0] == pytest.approx(env.interval_at(tau)[0])
        assert rebased.interval_at(tau)[1] == pytest.approx(env.interval_at(tau)[1])


def test_containment_of_envelopes():
    outer = Envelope(tau0=0.0, lo=-2.0, hi=2.0, rho=0.1)
    inner = Envelope(tau0=0.0, lo=-1.0, hi=1.0, rho=0.1)
    assert outer.contains_envelope(inner)
    assert not inner.contains_envelope(outer)


def test_containment_fails_for_faster_widening():
    slow = Envelope(tau0=0.0, lo=-2.0, hi=2.0, rho=0.1)
    fast = Envelope(tau0=0.0, lo=-1.0, hi=1.0, rho=0.5)
    assert not slow.contains_envelope(fast)


def test_average_is_endpointwise_mean():
    e1 = Envelope(tau0=0.0, lo=0.0, hi=2.0, rho=0.1)
    e2 = Envelope(tau0=0.0, lo=-2.0, hi=0.0, rho=0.1)
    avg = average(e1, e2)
    assert avg.interval_at(0.0) == (-1.0, 1.0)


def test_average_membership_lemma():
    """If beta1 in E1 and beta2 in E2 then (beta1+beta2)/2 in avg(E1,E2)
    — the Appendix A averaging fact."""
    e1 = Envelope(tau0=0.0, lo=0.0, hi=2.0, rho=0.1)
    e2 = Envelope(tau0=0.0, lo=-3.0, hi=-1.0, rho=0.1)
    avg = average(e1, e2)
    tau = 4.0
    for b1 in (0.0, 1.0, 2.0, 2.4):
        for b2 in (-3.4, -2.0, -1.0):
            if e1.contains(tau, b1) and e2.contains(tau, b2):
                assert avg.contains(tau, (b1 + b2) / 2.0)


def test_average_requires_matching_anchor_and_rho():
    e1 = Envelope(tau0=0.0, lo=0.0, hi=1.0, rho=0.1)
    e2 = Envelope(tau0=1.0, lo=0.0, hi=1.0, rho=0.1)
    with pytest.raises(MeasurementError):
        average(e1, e2)


def test_envelope_of_biases():
    env = envelope_of_biases(2.0, [0.5, -0.25, 0.1], rho=0.1)
    assert env.tau0 == 2.0
    assert env.lo == -0.25
    assert env.hi == 0.5


def test_envelope_of_biases_empty_rejected():
    with pytest.raises(MeasurementError):
        envelope_of_biases(0.0, [], rho=0.1)


def test_lemma7_shrunk_width_formula():
    assert lemma7_shrunk_width(d_half_width=8.0, epsilon=0.5) == pytest.approx(15.0)


def test_lemma7_shrink_is_real_shrink_above_floor():
    """7D/4 + 2e < 2D exactly when D > 8e — the lemma's D > 8e side
    condition."""
    eps = 0.5
    above = 8 * eps * 1.01
    below = 8 * eps * 0.99
    assert lemma7_shrunk_width(above, eps) < 2 * above
    assert lemma7_shrunk_width(below, eps) > 2 * below
