"""Integration tests: specific attacks, resilience boundaries, and the
comparison claims of Section 1.1.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.adversary.mobile import PlannedCorruption, rotating_plan, single_burst_plan
from repro.adversary.strategies import (
    LiarStrategy,
    NoisyStrategy,
    SilentStrategy,
    StealthDriftStrategy,
    TwoFacedStrategy,
)
from repro.runner.builders import (
    benign_scenario,
    default_params,
    mobile_byzantine_scenario,
    warmup_for,
)
from repro.runner.experiment import run


def fast_params(n=4, f=1):
    return default_params(n=n, f=f)


def burst_scenario(params, strategy_factory, duration=10.0, seed=0, dwell=None,
                   victims=None, **kwargs):
    """A rotating-corruption scenario with a specific strategy."""
    def plan(scenario, clocks):
        return rotating_plan(n=params.n, f=params.f, pi=params.pi,
                             duration=scenario.duration,
                             strategy_factory=strategy_factory,
                             first_start=2.0 * params.t_interval)

    scenario = benign_scenario(params, duration=duration, seed=seed, **kwargs)
    return dataclasses.replace(scenario, plan_builder=plan)


class TestSingleStrategyAttacks:
    @pytest.mark.parametrize("strategy_factory,label", [
        (lambda n, e: SilentStrategy(), "silent"),
        (lambda n, e: LiarStrategy(offset=1e6), "liar"),
        (lambda n, e: NoisyStrategy(spread=1e3), "noisy"),
        (lambda n, e: TwoFacedStrategy(magnitude=100.0), "two-faced"),
        (lambda n, e: StealthDriftStrategy(rate=10.0), "stealth"),
    ])
    def test_deviation_bounded_under_attack(self, strategy_factory, label):
        params = fast_params()
        result = run(burst_scenario(params, strategy_factory, seed=hash(label) % 1000))
        deviation = result.max_deviation(warmup_for(params))
        assert deviation <= params.bounds().max_deviation, (label, deviation)


class TestAveragingIsVulnerable:
    def test_single_liar_breaks_unprotected_averaging(self):
        """The contrast experiment: the same liar that Sync shrugs off
        drags plain averaging beyond the bound."""
        params = fast_params()
        scenario = burst_scenario(params, lambda n, e: LiarStrategy(offset=1e3),
                                  seed=1, protocol="averaging")
        result = run(scenario)
        deviation = result.max_deviation(warmup_for(params))
        assert deviation > params.bounds().max_deviation

    def test_sync_shrugs_off_the_same_liar(self):
        params = fast_params()
        scenario = burst_scenario(params, lambda n, e: LiarStrategy(offset=1e3),
                                  seed=1, protocol="sync")
        result = run(scenario)
        assert result.max_deviation(warmup_for(params)) <= params.bounds().max_deviation


class TestResilienceBoundary:
    def test_f_plus_one_simultaneous_faults_can_break_sync(self):
        """Beyond Definition 2's limit the guarantee is void: f+1
        simultaneous colluding two-faced liars in an n=3f+1 network can
        drive the two remaining good clocks apart (each good node now
        hears f+1 coordinated lies, so the f+1-st order statistic is
        adversary-controlled)."""
        params = fast_params()  # n=4, f=1 -> 2 simultaneous liars

        def plan(scenario, clocks):
            # Both liars tell node 2 "very high" and node 3 "very low".
            return single_burst_plan(
                [0, 1], start=1.0, dwell=scenario.duration - 1.5,
                strategy_factory=lambda n, e: TwoFacedStrategy(
                    magnitude=50.0 * params.way_off,
                    split=lambda recipient: recipient == 3),
            )

        scenario = benign_scenario(params, duration=10.0, seed=3)
        scenario = dataclasses.replace(scenario, plan_builder=plan,
                                       enforce_f_limit=False)
        result = run(scenario)
        # Good set here = nodes 2, 3; with two liars out of four, the
        # f+1 order statistics are adversary-controlled.
        deviation = result.max_deviation(warmup_for(params))
        assert deviation > params.bounds().max_deviation

    def test_exactly_f_faults_fine(self):
        params = fast_params()
        result = run(mobile_byzantine_scenario(params, duration=10.0, seed=4))
        assert result.max_deviation(warmup_for(params)) <= params.bounds().max_deviation


class TestLinkFailures:
    def test_few_link_outages_tolerated(self):
        """Beyond the paper's model: short outages look like timeouts
        (a = inf) and are absorbed by the f+1 selection."""
        params = default_params(n=7, f=2)
        scenario = benign_scenario(params, duration=8.0, seed=5)
        result_scenario = dataclasses.replace(scenario)
        # Fail two links for a stretch mid-run via a plan-less hook:
        from repro.runner.experiment import run as run_fn

        # Use a custom protocol factory wrapper to access the network.
        outages = []

        from repro.protocols.base import protocol_factory
        inner = protocol_factory("sync")

        def factory(runtime, params_, start_phase):
            if not outages:
                runtime.network.schedule_outage(0, 1, start=2.0, end=4.0)
                runtime.network.schedule_outage(2, 3, start=3.0, end=5.0)
                outages.append(True)
            return inner(runtime, params_, start_phase)

        result = run_fn(dataclasses.replace(result_scenario, protocol=factory))
        assert result.max_deviation(warmup_for(params)) <= params.bounds().max_deviation


class TestLossyNetwork:
    """Beyond the paper's reliable-link model: random message loss
    surfaces as estimation timeouts, which the f+1 selection absorbs."""

    @pytest.mark.parametrize("loss", [0.02, 0.10])
    def test_deviation_bounded_under_loss(self, loss):
        params = default_params(n=7, f=2)
        result = run(mobile_byzantine_scenario(params, duration=10.0, seed=6,
                                               loss_rate=loss))
        assert result.max_deviation(warmup_for(params)) <= params.bounds().max_deviation

    def test_recovery_still_works_under_loss(self):
        from repro.runner.builders import recovery_scenario
        params = default_params(n=7, f=2)
        result = run(recovery_scenario(params, duration=10.0, seed=6,
                                       loss_rate=0.05))
        assert result.recovery().all_recovered


class TestReplayAttack:
    """Footnote 3: replay of old messages 'does not pause a problem for
    our application' — session-scoped nonces make stale pongs no-ops."""

    def test_replayed_pongs_do_not_move_clocks(self):
        from repro.adversary.strategies import ReplayStrategy
        params = default_params(n=7, f=2)
        result = run(burst_scenario(params, lambda n, e: ReplayStrategy(),
                                    duration=12.0, seed=8))
        assert result.max_deviation(warmup_for(params)) \
            <= params.bounds().max_deviation

    def test_replay_storm_is_pure_overhead(self):
        """The replay traffic inflates message counts but every stale
        pong is rejected at the session layer."""
        from repro.adversary.strategies import ReplayStrategy
        params = default_params(n=4, f=1)
        clean = run(burst_scenario(params, lambda n, e: SilentStrategy(),
                                   duration=8.0, seed=9))
        noisy = run(burst_scenario(params, lambda n, e: ReplayStrategy(),
                                   duration=8.0, seed=9))
        assert noisy.messages_delivered > clean.messages_delivered
        assert noisy.max_deviation(warmup_for(params)) \
            <= params.bounds().max_deviation


class TestScale:
    def test_n25_f8_bounded(self):
        """A larger deployment (n = 3f+1 = 25) under rotating Byzantine
        faults still meets the bound."""
        params = default_params(n=25, f=8)
        result = run(mobile_byzantine_scenario(params, duration=4.0, seed=10))
        assert result.max_deviation(warmup_for(params)) \
            <= params.bounds().max_deviation


class TestMalformedPayloads:
    """Implementation-level robustness: non-finite clock values from
    Byzantine peers must be rejected at the trust boundary, not fed
    into the order-statistic sort (NaN ordering is input-dependent)."""

    @pytest.mark.parametrize("flavor", ["nan", "inf", "-inf", "mix"])
    def test_nonfinite_replies_bounced(self, flavor):
        from repro.adversary.strategies import MalformedStrategy
        params = default_params(n=7, f=2)
        result = run(burst_scenario(
            params, lambda n, e: MalformedStrategy(flavor), seed=30))
        deviation = result.max_deviation(warmup_for(params))
        assert deviation <= params.bounds().max_deviation
        # And no clock was ever NaN-poisoned.
        import math
        for values in result.samples.clocks.values():
            assert all(math.isfinite(v) for v in values)

    def test_nan_estimate_yields_noop_correction(self):
        """Defense in depth: even if a NaN reached the convergence
        function, the correction is a no-op, never NaN."""
        import math
        from repro.core.convergence import PaperConvergence
        from repro.core.estimation import ClockEstimate

        cf = PaperConvergence()
        for position in range(7):
            estimates = [ClockEstimate(peer=i, distance=0.0, accuracy=0.0)
                         for i in range(7)]
            estimates[position] = ClockEstimate(peer=position,
                                                distance=float("nan"),
                                                accuracy=0.0)
            correction = cf.correction(estimates, f=2, way_off=1.0)
            assert math.isfinite(correction)
