"""Tests for the [19] interactive-convergence and [27] Srikanth-Toueg
baselines (the Section 5 'majority with authentication' family)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.adversary.base import ByzantineStrategy
from repro.adversary.mobile import rotating_plan, single_burst_plan
from repro.adversary.strategies import LiarStrategy
from repro.core.convergence import EgocentricMeanConvergence
from repro.core.estimation import ClockEstimate, timeout_estimate
from repro.errors import ParameterError
from repro.protocols import registered_protocols
from repro.protocols.srikanth_toueg import RoundReady, SrikanthTouegProcess
from repro.runner.builders import (
    benign_scenario,
    default_params,
    recovery_scenario,
    warmup_for,
)
from repro.runner.experiment import run


def est(peer, d, a=0.0):
    return ClockEstimate(peer=peer, distance=d, accuracy=a)


class TestEgocentricMeanConvergence:
    def test_benign_average(self):
        cf = EgocentricMeanConvergence(threshold=1.0)
        estimates = [est(i, 0.1) for i in range(7)]
        assert cf.correction(estimates, f=2, way_off=1.0) == pytest.approx(0.1)

    def test_implausible_readings_replaced_by_own(self):
        cf = EgocentricMeanConvergence(threshold=1.0)
        estimates = [est(i, 0.0) for i in range(5)] + [est(5, 50.0), est(6, -50.0)]
        assert cf.correction(estimates, f=2, way_off=1.0) == 0.0

    def test_timeouts_replaced_by_own(self):
        cf = EgocentricMeanConvergence(threshold=1.0)
        estimates = [est(i, 0.7) for i in range(5)] + [timeout_estimate(5),
                                                       timeout_estimate(6)]
        assert cf.correction(estimates, f=2, way_off=1.0) \
            == pytest.approx(0.7 * 5 / 7)

    def test_byzantine_bias_lever(self):
        """The known weakness vs order statistics: f plausible liars at
        the threshold edge shift the mean by ~f*threshold/n."""
        cf = EgocentricMeanConvergence(threshold=1.0)
        estimates = [est(i, 0.0) for i in range(5)] + [est(5, 0.99), est(6, 0.99)]
        bias = cf.correction(estimates, f=2, way_off=1.0)
        assert bias == pytest.approx(2 * 0.99 / 7)
        assert bias > 0.1  # a standing lever PaperConvergence denies

    def test_requires_3f_plus_1(self):
        cf = EgocentricMeanConvergence()
        with pytest.raises(ParameterError):
            cf.correction([est(0, 0.0)] * 6, f=2, way_off=1.0)

    def test_threshold_defaults_to_way_off(self):
        cf = EgocentricMeanConvergence()
        estimates = [est(i, 0.0) for i in range(6)] + [est(6, 5.0)]
        # way_off = 1.0: the 5.0 reading is replaced.
        assert cf.correction(estimates, f=2, way_off=1.0) == 0.0


class TestInteractiveConvergenceProtocol:
    def test_registered(self):
        assert "interactive-convergence" in registered_protocols()

    def test_benign_within_bound(self):
        params = default_params(n=7, f=2)
        result = run(benign_scenario(params, duration=8.0, seed=1,
                                     protocol="interactive-convergence"))
        assert result.max_deviation(2.0) <= params.bounds().max_deviation

    def test_bounded_under_byzantine_liar(self):
        params = default_params(n=7, f=2)

        def plan(scenario, clocks):
            return rotating_plan(n=params.n, f=params.f, pi=params.pi,
                                 duration=scenario.duration,
                                 strategy_factory=lambda n, e: LiarStrategy(
                                     offset=100.0 * params.way_off),
                                 first_start=2.0 * params.t_interval)

        scenario = benign_scenario(params, duration=10.0, seed=2,
                                   protocol="interactive-convergence")
        scenario = dataclasses.replace(scenario, plan_builder=plan)
        result = run(scenario)
        assert result.max_deviation(warmup_for(params)) \
            <= params.bounds().max_deviation

    def test_recovery_slower_than_sync(self):
        """No WayOff jump: the way-off node converges at ~(1/n) rate per
        sync instead of halving, so recovery takes several times longer."""
        params = default_params(n=7, f=2)
        cnv = run(recovery_scenario(params, duration=12.0, seed=3,
                                    protocol="interactive-convergence"))
        sync = run(recovery_scenario(params, duration=12.0, seed=3,
                                     protocol="sync"))
        cnv_rec = cnv.recovery()
        sync_rec = sync.recovery()
        assert sync_rec.all_recovered
        assert (not cnv_rec.all_recovered
                or cnv_rec.max_recovery_time > 2 * sync_rec.max_recovery_time)


class TestSrikanthToueg:
    def test_registered(self):
        assert "srikanth-toueg" in registered_protocols()

    def test_benign_within_bound(self):
        params = default_params(n=7, f=2)
        result = run(benign_scenario(params, duration=8.0, seed=4,
                                     protocol="srikanth-toueg"))
        assert result.max_deviation(2.0) <= params.bounds().max_deviation

    def test_works_at_bare_majority(self):
        """[27]'s headline: n = 2f+1 suffices (with authentication)."""
        params = dataclasses.replace(default_params(n=7, f=2), n=5, strict=False)
        result = run(benign_scenario(params, duration=8.0, seed=5,
                                     protocol="srikanth-toueg"))
        assert result.max_deviation(2.0) <= params.bounds().max_deviation

    def test_rejects_below_majority(self, sim):
        from repro.clocks.hardware import FixedRateClock
        from repro.clocks.logical import LogicalClock
        from repro.net.links import FixedDelay
        from repro.net.network import Network
        from repro.net.topology import full_mesh

        params = dataclasses.replace(default_params(n=7, f=2), n=4,
                                     strict=False)
        network = Network(sim, full_mesh(4), FixedDelay(delta=params.delta))
        from repro.sim.runtime import SimRuntime
        with pytest.raises(ParameterError, match="majority"):
            SrikanthTouegProcess(
                SimRuntime(0, sim, network,
                           LogicalClock(FixedRateClock(rho=params.rho))),
                params)

    def test_premature_round_needs_f_plus_1_signers(self):
        """f colluding early announcers cannot trigger acceptance: the
        round fires only when a good clock really reaches it."""
        params = default_params(n=7, f=2)

        class EarlyAnnouncer(ByzantineStrategy):
            name = "early-round"

            def on_break_in(self, process, rng):
                for peer in process.neighbors():
                    process.send(peer, RoundReady(round_no=30,
                                                  signer=process.node_id))

        def plan(scenario, clocks):
            return single_burst_plan(
                [0, 1], start=1.0, dwell=1.0,
                strategy_factory=lambda n, e: EarlyAnnouncer())

        scenario = benign_scenario(params, duration=8.0, seed=6,
                                   protocol="srikanth-toueg")
        scenario = dataclasses.replace(scenario, plan_builder=plan)
        result = run(scenario)
        assert result.max_deviation(warmup_for(params)) \
            <= params.bounds().max_deviation
        good_rounds = [p.round_no for node, p in result.processes.items()
                       if node > 1]
        assert max(good_rounds) < 25

    def test_laggard_catches_up_via_future_round(self):
        """A processor napping through rounds accepts the next fully
        supported round directly instead of deadlocking."""
        from repro.adversary.strategies import SilentStrategy

        params = default_params(n=7, f=2)

        def plan(scenario, clocks):
            return single_burst_plan(
                [0], start=1.0, dwell=2.0,
                strategy_factory=lambda n, e: SilentStrategy())

        scenario = benign_scenario(params, duration=10.0, seed=7,
                                   protocol="srikanth-toueg")
        scenario = dataclasses.replace(scenario, plan_builder=plan)
        result = run(scenario)
        rounds = [p.round_no for p in result.processes.values()]
        assert max(rounds) - min(rounds) <= 1
        assert result.recovery().all_recovered
