"""Self-test for the bench-gate verdict logic (tools/bench_gate.py).

Drives the pure ``evaluate(metrics, baseline)`` function with stubbed
metrics dicts — no benchmarking — so the gate's own failure modes are
covered: a clean message (not a formatting crash) when a gated figure
is missing, regression detection, SLO floors, and the skip path for
figures one side lacks.
"""

from __future__ import annotations

import importlib.util
import pathlib

REPO = pathlib.Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "bench_gate", REPO / "tools" / "bench_gate.py")
bench_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_gate)


def healthy_metrics() -> dict:
    return {
        "analysis": {
            "python": {"speedup": 20.0},
            "numpy": {"speedup": 60.0},
        },
        "end_to_end": {"normalized": 4.5},
        "service": {
            "normalized_qps": 1.2,
            "qps": 18_000.0,
            "p99_vs_delta": 0.3,
            "errors": 0,
        },
        "obs_live": {"full_ratio": 0.97},
        "mega_sim": {"speedup": 4.5, "record_parity": 1.0},
    }


class TestEvaluate:
    def test_healthy_run_passes(self):
        ok, lines = bench_gate.evaluate(healthy_metrics(), healthy_metrics())
        assert ok
        assert not any("FAIL" in line or "REGRESSION" in line
                       for line in lines)

    def test_missing_figure_fails_cleanly(self):
        # analysis.python.speedup absent used to crash the gate with a
        # TypeError from formatting None; it must fail with a message.
        metrics = healthy_metrics()
        del metrics["analysis"]["python"]
        ok, lines = bench_gate.evaluate(metrics, healthy_metrics())
        assert not ok
        assert any("analysis.python.speedup" in line and "missing" in line
                   for line in lines)

    def test_regression_below_tolerance_fails(self):
        metrics = healthy_metrics()
        metrics["analysis"]["python"]["speedup"] = 20.0 * 0.7  # >20% drop
        ok, lines = bench_gate.evaluate(metrics, healthy_metrics())
        assert not ok
        assert any("REGRESSION" in line for line in lines)

    def test_drop_within_tolerance_passes(self):
        metrics = healthy_metrics()
        metrics["analysis"]["python"]["speedup"] = 20.0 * 0.9  # <20% drop
        ok, _ = bench_gate.evaluate(metrics, healthy_metrics())
        assert ok

    def test_service_slo_floor_enforced(self):
        metrics = healthy_metrics()
        metrics["service"]["qps"] = 9_000.0
        ok, lines = bench_gate.evaluate(metrics, healthy_metrics())
        assert not ok
        assert any("sustained QPS" in line and "FAILED" in line
                   for line in lines)

    def test_service_p99_ceiling_enforced(self):
        metrics = healthy_metrics()
        metrics["service"]["p99_vs_delta"] = 1.4
        ok, _ = bench_gate.evaluate(metrics, healthy_metrics())
        assert not ok

    def test_failed_queries_fail_the_gate(self):
        metrics = healthy_metrics()
        metrics["service"]["errors"] = 2
        ok, _ = bench_gate.evaluate(metrics, healthy_metrics())
        assert not ok

    def test_telemetry_overhead_floor_enforced(self):
        # Full live telemetry costing more than 10% QPS fails the gate.
        metrics = healthy_metrics()
        metrics["obs_live"]["full_ratio"] = 0.85
        ok, lines = bench_gate.evaluate(metrics, healthy_metrics())
        assert not ok
        assert any("telemetry" in line and "FAILED" in line
                   for line in lines)

    def test_missing_telemetry_ratio_fails(self):
        metrics = healthy_metrics()
        del metrics["obs_live"]
        ok, lines = bench_gate.evaluate(metrics, healthy_metrics())
        assert not ok
        assert any("obs_live.full_ratio" in line and "missing" in line
                   for line in lines)

    def test_numpy_leg_skipped_when_absent(self):
        # Pure-python environments have no numpy figure on either side;
        # the baseline comparison skips it instead of failing.
        metrics = healthy_metrics()
        del metrics["analysis"]["numpy"]
        ok, lines = bench_gate.evaluate(metrics, healthy_metrics())
        assert ok
        assert any("numpy" in line and "skipped" in line for line in lines)

    def test_stale_baseline_predating_sections_is_skipped(self):
        # A baseline JSON written before the obs_live / mega_sim
        # sections existed must not crash the gate (and must not fail
        # it on the baseline comparison): the new sections' GATED
        # figures are skipped while absolute limits still apply.
        stale = healthy_metrics()
        del stale["obs_live"]
        del stale["mega_sim"]
        ok, lines = bench_gate.evaluate(healthy_metrics(), stale)
        assert ok
        assert any("mega-sim" in line and "skipped" in line
                   for line in lines)

    def test_mega_speedup_floor_enforced(self):
        metrics = healthy_metrics()
        metrics["mega_sim"]["speedup"] = bench_gate.MEGA_SPEEDUP_FLOOR - 0.5
        ok, lines = bench_gate.evaluate(metrics, healthy_metrics())
        assert not ok
        assert any("mega-sim" in line and "FAILED" in line
                   for line in lines)

    def test_mega_speedup_regression_fails(self):
        metrics = healthy_metrics()
        # Below the gate's own floor would trip LIMITS; pick a value
        # above the floor but >MEGA_TOLERANCE below the baseline.
        baseline = healthy_metrics()
        baseline["mega_sim"]["speedup"] = 8.0
        metrics["mega_sim"]["speedup"] = 8.0 * (
            1.0 - bench_gate.MEGA_TOLERANCE - 0.1)
        ok, lines = bench_gate.evaluate(metrics, baseline)
        assert not ok
        assert any("mega-sim" in line and "REGRESSION" in line
                   for line in lines)

    def test_record_parity_is_an_absolute_bar(self):
        metrics = healthy_metrics()
        metrics["mega_sim"]["record_parity"] = 0.0
        ok, lines = bench_gate.evaluate(metrics, healthy_metrics())
        assert not ok
        assert any("parity" in line and "FAILED" in line for line in lines)

    def test_missing_mega_section_fails_limits(self):
        metrics = healthy_metrics()
        del metrics["mega_sim"]
        ok, lines = bench_gate.evaluate(metrics, healthy_metrics())
        assert not ok
        assert any("mega_sim.speedup" in line and "missing" in line
                   for line in lines)

    def test_lookup_resolves_and_misses(self):
        metrics = healthy_metrics()
        assert bench_gate.lookup(metrics, "service.qps") == 18_000.0
        assert bench_gate.lookup(metrics, "service.nope") is None
        assert bench_gate.lookup(metrics, "nope.deep.path") is None
