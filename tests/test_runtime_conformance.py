"""Cross-runtime conformance: Sync decides identically on both substrates.

The runtime seam's correctness contract: the *same* protocol class run
on :class:`repro.sim.runtime.SimRuntime` (discrete-event simulator) and
on :class:`repro.rt.runtime.AsyncioRuntime` over a virtual-time loop
with loopback transport must produce the same sequence of Figure 1
correction decisions per node — same rounds, same ``m``/``M``
statistics, same corrections, bit for bit.  Both substrates execute
callbacks in ``(fire_time, insertion_seq)`` order and both compute
timer fire times through the same hardware-clock formula, so any
divergence is a seam bug, not noise.

Property-tested over seeds: each seed derives per-node rates, offsets,
and start phases, so one passing seed is an anecdote but a sweep is
evidence.
"""

from __future__ import annotations

import pytest

from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.core.params import ProtocolParams
from repro.core.sync import SyncProcess
from repro.net.links import FixedDelay
from repro.net.network import Network
from repro.net.topology import full_mesh
from repro.rt.runtime import AsyncioRuntime
from repro.rt.transport import LoopbackTransport
from repro.rt.virtualtime import VirtualTimeLoop
from repro.sim.engine import Simulator
from repro.sim.runtime import SimRuntime

import random

DURATION = 3.0


def make_params(n=4, f=1) -> ProtocolParams:
    return ProtocolParams.derive(n=n, f=f, delta=0.01, rho=5e-4, pi=2.0)


def seed_derived_cluster(params: ProtocolParams, seed: int):
    """Per-node (rate, offset, phase) drawn deterministically from seed."""
    rng = random.Random(seed)
    nodes = []
    for node in range(params.n):
        nodes.append((
            1.0 + rng.uniform(-0.5, 0.5) * params.rho,       # hardware rate
            rng.uniform(0.0, 0.1),                           # initial offset
            rng.uniform(0.0, params.sync_interval),          # start phase
        ))
    return nodes


def decisions(process: SyncProcess):
    """The Figure 1 decision sequence a conformance check compares."""
    return [(r.round_no, r.correction, r.m, r.big_m, r.own_discarded,
             r.replies) for r in process.sync_records]


def run_on_sim(params: ProtocolParams, cluster, crashed=()) -> dict:
    sim = Simulator(seed=0)
    network = Network(sim, full_mesh(params.n),
                      FixedDelay(params.delta, value=params.delta / 2.0))
    processes = {}
    for node, (rate, offset, phase) in enumerate(cluster):
        clock = LogicalClock(FixedRateClock(rho=params.rho, rate=rate),
                             adj=offset)
        process = SyncProcess(SimRuntime(node, sim, network, clock), params,
                              start_phase=phase)
        network.bind(process)
        processes[node] = process
    for node, process in processes.items():
        if node not in crashed:
            process.start()
    sim.run(until=DURATION)
    return processes


def run_on_rt(params: ProtocolParams, cluster, crashed=(),
              instrument=False) -> dict:
    loop = VirtualTimeLoop()
    transport = LoopbackTransport(loop, delay=params.delta / 2.0)
    processes = {}
    bus = None
    if instrument:
        # Full telemetry on the rt substrate: events flowing into a
        # metrics collector must not perturb a single decision.
        from repro.obs import EventBus, MetricsCollector

        bus = EventBus()
        bus.set_clock(loop.time)
        MetricsCollector(bus)
    for node, (rate, offset, phase) in enumerate(cluster):
        clock = LogicalClock(FixedRateClock(rho=params.rho, rate=rate),
                             adj=offset)
        runtime = AsyncioRuntime(node, clock, transport, loop, epoch=0.0,
                                 obs=bus)
        process = SyncProcess(runtime, params, start_phase=phase)
        if bus is not None:
            process.obs = bus
        runtime.bind(process)
        processes[node] = process
    for node, process in processes.items():
        if node not in crashed:
            process.start()
    loop.run_until(DURATION)
    return processes


@pytest.mark.parametrize("seed", range(8))
def test_same_correction_decisions_per_node(seed):
    """Property: every node's full decision sequence matches exactly."""
    params = make_params()
    cluster = seed_derived_cluster(params, seed)
    on_sim = run_on_sim(params, cluster)
    on_rt = run_on_rt(params, cluster)
    for node in range(params.n):
        assert decisions(on_sim[node]) == decisions(on_rt[node]), (
            f"node {node} diverged between runtimes (seed {seed})")
        # Both made progress: the comparison is not vacuous.
        assert on_sim[node].rounds_completed >= 3


@pytest.mark.parametrize("seed", (0, 3))
def test_final_clocks_match(seed):
    """Stronger: the resulting logical clocks agree at the horizon."""
    params = make_params()
    cluster = seed_derived_cluster(params, seed)
    on_sim = run_on_sim(params, cluster)
    on_rt = run_on_rt(params, cluster)
    for node in range(params.n):
        assert (on_sim[node].clock.read(DURATION)
                == on_rt[node].clock.read(DURATION))


@pytest.mark.parametrize("seed", (0, 5))
def test_telemetry_is_write_only_on_rt(seed):
    """Full telemetry on the rt substrate changes no decision and no
    final clock — float-exact, so the live path's instrumented and
    uninstrumented deployments remain the same protocol execution."""
    params = make_params()
    cluster = seed_derived_cluster(params, seed)
    plain = run_on_rt(params, cluster)
    instrumented = run_on_rt(params, cluster, instrument=True)
    for node in range(params.n):
        assert decisions(plain[node]) == decisions(instrumented[node])
        assert (plain[node].clock.read(DURATION)
                == instrumented[node].clock.read(DURATION))
    # And the instrumented rt run still conforms to the simulator.
    on_sim = run_on_sim(params, cluster)
    for node in range(params.n):
        assert decisions(on_sim[node]) == decisions(instrumented[node])


def test_larger_cluster_with_crashed_node():
    """n=7/f=2 with one never-started node (silent crash): the decision
    sequences still match, including the timeout-shaped statistics."""
    params = ProtocolParams.derive(n=7, f=2, delta=0.01, rho=5e-4, pi=2.0)
    cluster = seed_derived_cluster(params, 42)
    sim_procs = run_on_sim(params, cluster, crashed={6})
    rt_procs = run_on_rt(params, cluster, crashed={6})
    for node in range(params.n - 1):
        assert decisions(sim_procs[node]) == decisions(rt_procs[node])
    # The crashed node ran no Sync rounds of its own (it still answers
    # pings — responding is passive, the Section 3.3 no-rounds property).
    assert sim_procs[6].rounds_completed == 0
    assert rt_procs[6].rounds_completed == 0
