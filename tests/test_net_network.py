"""Unit tests for the network fabric: delivery, authentication, outages."""

from __future__ import annotations

import pytest

from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.errors import ConfigurationError, TopologyError
from repro.net.links import FixedDelay
from repro.net.network import Network
from repro.net.topology import from_edges, full_mesh
from repro.runtime.process import Process
from repro.sim.runtime import SimRuntime


class Recorder(Process):
    """Minimal process that records every delivered message."""

    def __init__(self, node_id, sim, network):
        clock = LogicalClock(FixedRateClock(rho=0.0))
        super().__init__(SimRuntime(node_id, sim, network, clock))
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def build(sim, n=3, edges=None, delay=None):
    topology = full_mesh(n) if edges is None else from_edges(n, edges)
    network = Network(sim, topology, delay or FixedDelay(delta=0.01, value=0.004))
    processes = [Recorder(i, sim, network) for i in range(n)]
    for process in processes:
        network.bind(process)
    return network, processes


def test_message_delivered_with_delay(sim):
    network, procs = build(sim)
    network.send(0, 1, "hello")
    sim.run()
    assert len(procs[1].received) == 1
    message = procs[1].received[0]
    assert message.payload == "hello"
    assert message.sender == 0
    assert message.delivered_at == pytest.approx(0.004)


def test_delivery_within_delta_bound(sim):
    network, procs = build(sim)
    network.send(0, 1, "x")
    sim.run()
    message = procs[1].received[0]
    assert 0.0 < message.delivered_at - message.sent_at <= network.delta


def test_no_edge_drops_message(sim):
    network, procs = build(sim, edges=[(0, 1)])
    network.send(0, 2, "lost")
    sim.run()
    assert procs[2].received == []
    assert network.messages_dropped == 1


def test_self_send_rejected(sim):
    network, _ = build(sim)
    with pytest.raises(ConfigurationError):
        network.send(1, 1, "me")


def test_self_send_does_not_mutate_counters(sim):
    """The ConfigurationError path must leave every counter untouched."""
    network, _ = build(sim)
    network.send(0, 1, "real")
    with pytest.raises(ConfigurationError):
        network.send(1, 1, "me")
    assert network.messages_sent == 1
    assert network.messages_dropped == 0


def test_cached_link_rng_matches_registry_stream():
    """The per-link RNG cache must keep using the canonical named stream,
    so delays stay byte-identical to a fresh registry lookup."""
    from repro.net.links import UniformDelay
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngRegistry

    sim = Simulator(seed=99)
    network = Network(sim, full_mesh(2), UniformDelay(delta=0.01))
    receiver = Recorder(1, sim, network)
    network.bind(Recorder(0, sim, network))
    network.bind(receiver)
    for _ in range(5):
        network.send(0, 1, "x")
    sim.run()
    # Deliveries arrive in delay order, not send order — compare sorted.
    observed = sorted(m.delivered_at - m.sent_at for m in receiver.received)

    expected_rng = RngRegistry(99).stream("link:0->1")
    expected = sorted(UniformDelay(delta=0.01).sample(0, 1, expected_rng) for _ in range(5))
    assert observed == expected


def test_broadcast_reaches_all_neighbors(sim):
    network, procs = build(sim, n=4)
    network.broadcast(0, "fanout")
    sim.run()
    for proc in procs[1:]:
        assert [m.payload for m in proc.received] == ["fanout"]
    assert procs[0].received == []


def test_bind_duplicate_rejected(sim):
    network, procs = build(sim)
    with pytest.raises(ConfigurationError):
        network.bind(procs[0])


def test_bind_out_of_range_rejected(sim):
    network, _ = build(sim, n=2)
    stray = Recorder(5, sim, network)
    with pytest.raises(ConfigurationError):
        network.bind(stray)


def test_process_for_unbound_raises(sim):
    network = Network(sim, full_mesh(2), FixedDelay(delta=0.01))
    with pytest.raises(ConfigurationError):
        network.process_for(0)


def test_down_link_drops(sim):
    network, procs = build(sim)
    network.fail_link(0, 1)
    network.send(0, 1, "x")
    sim.run()
    assert procs[1].received == []


def test_restore_link_resumes_delivery(sim):
    network, procs = build(sim)
    network.fail_link(0, 1)
    network.restore_link(0, 1)
    network.send(0, 1, "x")
    sim.run()
    assert len(procs[1].received) == 1


def test_fail_nonexistent_link_rejected(sim):
    network, _ = build(sim, edges=[(0, 1)])
    with pytest.raises(TopologyError):
        network.fail_link(0, 2)


def test_in_flight_message_dropped_when_link_fails(sim):
    network, procs = build(sim)
    network.send(0, 1, "doomed")
    sim.schedule(0.001, lambda: network.fail_link(0, 1))
    sim.run()
    assert procs[1].received == []
    assert network.messages_dropped == 1


def test_scheduled_outage_window(sim):
    network, procs = build(sim)
    network.schedule_outage(0, 1, start=0.01, end=0.02)
    sim.schedule(0.011, lambda: network.send(0, 1, "during"))
    sim.schedule(0.03, lambda: network.send(0, 1, "after"))
    sim.run()
    assert [m.payload for m in procs[1].received] == ["after"]


def test_outage_empty_window_rejected(sim):
    network, _ = build(sim)
    with pytest.raises(ConfigurationError):
        network.schedule_outage(0, 1, start=2.0, end=1.0)


def test_tap_sees_deliveries(sim):
    network, _ = build(sim)
    seen = []
    network.add_tap(seen.append)
    network.send(0, 1, "observed")
    sim.run()
    assert len(seen) == 1
    assert seen[0].payload == "observed"


def test_counters(sim):
    network, _ = build(sim, edges=[(0, 1)])
    network.send(0, 1, "a")
    network.send(0, 2, "b")  # no edge
    sim.run()
    assert network.messages_sent == 2
    assert network.messages_delivered == 1
    assert network.messages_dropped == 1


def test_message_ids_unique(sim):
    network, procs = build(sim)
    for _ in range(5):
        network.send(0, 1, "x")
    sim.run()
    ids = [m.msg_id for m in procs[1].received]
    assert len(set(ids)) == 5


def test_sender_identity_is_authenticated(sim):
    """The recipient sees the true sender id — the link-authentication
    assumption of Section 2.2, enforced structurally."""
    network, procs = build(sim)
    network.send(2, 1, "signed")
    sim.run()
    assert procs[1].received[0].sender == 2


class TestLossyLinks:
    def test_loss_rate_validated(self, sim):
        with pytest.raises(ConfigurationError):
            Network(sim, full_mesh(2), FixedDelay(delta=0.01), loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            Network(sim, full_mesh(2), FixedDelay(delta=0.01), loss_rate=-0.1)

    def test_loss_rate_drops_expected_fraction(self, sim):
        network = Network(sim, full_mesh(2), FixedDelay(delta=0.01, value=0.001),
                          loss_rate=0.3)
        receiver = Recorder(1, sim, network)
        network.bind(Recorder(0, sim, network))
        network.bind(receiver)
        for _ in range(500):
            network.send(0, 1, "x")
        sim.run()
        delivered = len(receiver.received)
        assert 250 < delivered < 450  # ~70% of 500, with slack

    def test_zero_loss_by_default(self, sim):
        network, procs = build(sim)
        for _ in range(50):
            network.send(0, 1, "x")
        sim.run()
        assert len(procs[1].received) == 50

    def test_loss_is_deterministic_per_seed(self):
        from repro.sim.engine import Simulator

        def delivered(seed):
            sim = Simulator(seed=seed)
            network = Network(sim, full_mesh(2), FixedDelay(delta=0.01, value=0.001),
                              loss_rate=0.5)
            receiver = Recorder(1, sim, network)
            network.bind(Recorder(0, sim, network))
            network.bind(receiver)
            for _ in range(100):
                network.send(0, 1, "x")
            sim.run()
            return len(receiver.received)

        assert delivered(7) == delivered(7)
        assert delivered(7) != delivered(8) or delivered(7) != delivered(9)
