"""Tests for the Section 4.3 property checker (Properties 1-3)."""

from __future__ import annotations

import pytest

from repro.core.analysis import section43_properties
from repro.errors import MeasurementError
from repro.runner.builders import (
    benign_scenario,
    default_params,
    mobile_byzantine_scenario,
    two_clique_scenario,
)
from repro.runner.experiment import run


def wide_start_run(n=7, f=2, seed=44, duration=4.0, **kwargs):
    params = default_params(n=n, f=f)
    scenario = benign_scenario(params, duration=duration, seed=seed,
                               initial_offset_spread=0.8 * params.way_off,
                               **kwargs)
    return run(scenario), params


class TestPropertiesHold:
    def test_all_three_on_wide_start(self):
        result, params = wide_start_run()
        for start in (0.0, params.t_interval, 2 * params.t_interval):
            checks = section43_properties(result.samples, result.corruptions,
                                          params, start)
            assert [c.name for c in checks] == ["P1", "P2", "P3"]
            for check in checks:
                assert check.holds, (start, check)

    def test_across_seeds(self):
        for seed in (1, 2, 3):
            result, params = wide_start_run(seed=seed)
            checks = section43_properties(result.samples, result.corruptions,
                                          params, 0.0)
            assert all(check.holds for check in checks), seed

    def test_under_byzantine_adversary(self):
        params = default_params(n=7, f=2)
        result = run(mobile_byzantine_scenario(params, duration=8.0, seed=45))
        start = 4 * params.t_interval
        checks = section43_properties(result.samples, result.corruptions,
                                      params, start)
        # P1 and P2 must hold; P3's strict 7/8 contraction can bottom out
        # at the epsilon floor (the slack covers that).
        for check in checks:
            assert check.holds, check

    def test_minimum_network(self):
        result, params = wide_start_run(n=4, f=1)
        checks = section43_properties(result.samples, result.corruptions,
                                      params, 0.0)
        assert all(check.holds for check in checks)


class TestViolationsDetected:
    def test_drift_only_eventually_violates(self):
        """A non-synchronizing cluster must fail the contraction
        properties — the checker is not vacuous."""
        from repro.runner.scenario import extremal_clocks

        params = default_params(n=7, f=2, rho=5e-3)
        scenario = benign_scenario(params, duration=30.0, seed=46,
                                   protocol="drift-only",
                                   clock_factory=extremal_clocks)
        result = run(scenario)
        # Late interval: drift has accumulated well past the slack.
        failures = []
        t = 20.0
        checks = section43_properties(result.samples, result.corruptions,
                                      params, t, slack_epsilons=1.0)
        failures = [c for c in checks if not c.holds]
        assert failures, "drift-only should violate P1/P3"

    def test_two_clique_violates_p3(self):
        """On the Section 5 counterexample the global good set never
        contracts — P3 fails once the cliques separate."""
        result = run(two_clique_scenario(f=1, duration=40.0, seed=5))
        params = result.params
        checks = section43_properties(result.samples, result.corruptions,
                                      params, 30.0, slack_epsilons=1.0)
        by_name = {c.name: c for c in checks}
        assert not by_name["P3"].holds


class TestInputValidation:
    def test_interval_beyond_samples_rejected(self):
        result, params = wide_start_run(duration=2.0)
        with pytest.raises(MeasurementError):
            section43_properties(result.samples, result.corruptions, params,
                                 interval_start=10.0)

    def test_empty_good_set_rejected(self):
        from repro.metrics.sampler import ClockSamples, CorruptionInterval

        params = default_params(n=4, f=1)
        samples = ClockSamples(times=[0.0, 1.0],
                               clocks={i: [0.0, 1.0] for i in range(4)})
        corr = [CorruptionInterval(i, 0.0, 2.0) for i in range(4)]
        with pytest.raises(MeasurementError):
            section43_properties(samples, corr, params, 0.0)
