"""Timer-handle cancellation semantics, uniform across every runtime.

The :class:`~repro.runtime.api.TimerHandle` contract (the PR 1
queue-honest rules, now promoted to the runtime seam):

* cancelling a pending timer prevents its callback;
* cancelling a timer that already fired is a **no-op** (and leaves
  ``cancelled`` False);
* cancelling twice is a no-op;
* ``cancelled`` is True iff ``cancel()`` ran while the timer was
  pending.

Verified against all three runtimes through one shared harness:
``SimRuntime`` (simulator events), ``AsyncioRuntime`` over the
virtual-time loop, and ``AsyncioRuntime`` over a *real* asyncio event
loop — the latter matters because asyncio's own ``TimerHandle`` does
NOT satisfy the contract (its ``cancel()`` after firing still reports
cancelled), so :class:`~repro.rt.runtime.RtTimerHandle` must mask it.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.net.links import FixedDelay
from repro.net.network import Network
from repro.net.topology import full_mesh
from repro.rt.runtime import AsyncioRuntime
from repro.rt.transport import LoopbackTransport
from repro.rt.virtualtime import VirtualTimeLoop
from repro.sim.engine import Simulator
from repro.sim.runtime import SimRuntime


class SimHarness:
    """SimRuntime + a relative-advance driver."""

    name = "sim"

    def __init__(self):
        self.sim = Simulator(seed=0)
        network = Network(self.sim, full_mesh(2), FixedDelay(delta=0.01))
        self.runtime = SimRuntime(0, self.sim, network,
                                  LogicalClock(FixedRateClock(rho=1e-4)))

    def advance(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def close(self) -> None:
        pass


class VirtualHarness:
    """AsyncioRuntime on the deterministic virtual-time loop."""

    name = "virtual"

    def __init__(self):
        self.loop = VirtualTimeLoop()
        transport = LoopbackTransport(self.loop, delay=0.001)
        self.runtime = AsyncioRuntime(0, LogicalClock(FixedRateClock(rho=1e-4)),
                                      transport, self.loop, epoch=0.0)

    def advance(self, duration: float) -> None:
        self.loop.run_until(self.loop.time() + duration)

    def close(self) -> None:
        pass


class AsyncioHarness:
    """AsyncioRuntime on a real event loop, driven in small steps."""

    name = "asyncio"

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        transport = LoopbackTransport(self.loop, delay=0.001)
        self.runtime = AsyncioRuntime(0, LogicalClock(FixedRateClock(rho=1e-4)),
                                      transport, self.loop)

    def advance(self, duration: float) -> None:
        self.loop.run_until_complete(asyncio.sleep(duration))

    def close(self) -> None:
        self.loop.close()


@pytest.fixture(params=[SimHarness, VirtualHarness, AsyncioHarness],
                ids=lambda cls: cls.name)
def harness(request):
    h = request.param()
    yield h
    h.close()


# Real-asyncio steps need headroom over the 0.01s timer durations; the
# deterministic runtimes advance exactly.
STEP = 0.05
TIMER = 0.01


def test_timer_fires(harness):
    fired = []
    harness.runtime.set_local_timer(TIMER, lambda: fired.append(1))
    harness.advance(STEP)
    assert fired == [1]


def test_cancel_before_fire_suppresses_callback(harness):
    fired = []
    timer = harness.runtime.set_local_timer(TIMER, lambda: fired.append(1))
    timer.cancel()
    assert timer.cancelled
    harness.advance(STEP)
    assert fired == []


def test_cancel_after_fire_is_noop(harness):
    fired = []
    timer = harness.runtime.set_local_timer(TIMER, lambda: fired.append(1))
    harness.advance(STEP)
    assert fired == [1]
    timer.cancel()  # must not raise, must not report cancelled
    assert not timer.cancelled
    harness.advance(STEP)
    assert fired == [1]


def test_double_cancel_is_noop(harness):
    fired = []
    timer = harness.runtime.set_local_timer(TIMER, lambda: fired.append(1))
    timer.cancel()
    timer.cancel()
    assert timer.cancelled
    harness.advance(STEP)
    assert fired == []


def test_cancelled_false_while_pending_and_after_fire(harness):
    timer = harness.runtime.set_local_timer(TIMER, lambda: None)
    assert not timer.cancelled
    harness.advance(STEP)
    assert not timer.cancelled


def test_timers_are_local_clock_durations(harness):
    """A fast hardware clock fires local-duration timers early in real
    time — on every runtime (the Definition 1 timer mechanism)."""
    fast = LogicalClock(FixedRateClock(rho=0.2, rate=1.2))
    runtime = harness.runtime
    original = runtime.clock
    runtime.clock = fast
    try:
        fired = []
        runtime.set_local_timer(0.12, lambda: fired.append(1))
        # 0.12 local units at rate 1.2 = 0.1 real seconds.
        if harness.name == "asyncio":
            harness.advance(0.2)
        else:
            harness.advance(0.099)
            assert fired == []
            harness.advance(0.002)
        assert fired == [1]
    finally:
        runtime.clock = original
