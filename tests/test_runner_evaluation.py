"""Tests for the declarative evaluation layer and `repro evaluate`."""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.cli import main
from repro.errors import EvaluationError
from repro.runner.campaign import Campaign
from repro.runner.evaluation import (
    Check,
    EvaluationSpec,
    evaluate,
    evaluate_all,
    get_spec,
    register_spec,
    registered_specs,
)
from repro.runner.store import ResultStore


def config(seed: int, within_f: bool = True) -> dict:
    return {
        "name": f"eval-{seed}",
        "params": {"n": 4, "f": 1, "delta": 0.005, "rho": 5e-4, "pi": 2.0},
        "duration": 2.0,
        "seed": seed,
        "extra": {"within_f": within_f},
    }


@pytest.fixture(scope="module")
def clean_store() -> ResultStore:
    return Campaign([config(s) for s in (1, 2)]).run().store()


@pytest.fixture(scope="module")
def broken_store(clean_store) -> ResultStore:
    """The deliberately-broken fixture: real runs whose measured
    deviation is forged to 100x the bound — every bound check must
    catch it."""
    forged = []
    for record in clean_store.to_records():
        verdict = dataclasses.replace(
            record.verdict,
            measured_deviation=record.verdict.bounds.max_deviation * 100.0,
            deviation_ok=False,
        )
        forged.append(dataclasses.replace(
            record, verdict=verdict, envelope_occupancy=0.0))
    return ResultStore.from_records(forged)


# ----------------------------------------------------------------------
# Checks and specs
# ----------------------------------------------------------------------


def test_check_rejects_unknown_op():
    with pytest.raises(EvaluationError, match="unknown op"):
        Check(column="x", op="~=", value=1)


def test_check_rejects_value_and_bound_column():
    with pytest.raises(EvaluationError, match="mutually exclusive"):
        Check(column="x", op="<=", value=1.0, bound_column="y")


def test_check_labels():
    assert Check(column="a", op="<=", value=1.5).label() == "a <= 1.5"
    assert Check(column="a", op="<=", bound_column="b").label() == "a <= b"
    assert Check(column="a", op="<=", bound_column="b", scale=2.0).label() \
        == "a <= 2*b"
    assert "tol" in Check(column="a", op="<=", value=1.0,
                          tolerance=0.1).label()
    assert Check(column="a", op="isnull").label() == "a isnull"


def test_specs_are_picklable():
    for spec in registered_specs().values():
        assert pickle.loads(pickle.dumps(spec)) == spec


def test_builtin_registry_has_experiment_specs():
    names = set(registered_specs())
    assert {"theorem5-envelope", "theorem5-accuracy", "claim8-recovery",
            "e7-resilience", "campaign-clean"} <= names


def test_register_spec_conflict_raises():
    spec = get_spec("campaign-clean")
    register_spec(spec)  # idempotent for the identical spec
    with pytest.raises(EvaluationError, match="already registered"):
        register_spec(dataclasses.replace(spec, description="different"))


def test_get_spec_unknown_name():
    with pytest.raises(EvaluationError, match="unknown evaluation spec"):
        get_spec("nope")


# ----------------------------------------------------------------------
# Evaluation outcomes
# ----------------------------------------------------------------------


def test_clean_campaign_passes_builtin_specs(clean_store):
    for name in ("theorem5-envelope", "theorem5-accuracy", "e7-resilience",
                 "campaign-clean"):
        report = evaluate(name, clean_store)
        assert report.passed, report.render()


def test_broken_fixture_fails_bound_checks(broken_store):
    report = evaluate("theorem5-envelope", broken_store)
    assert report.status == "fail"
    by_label = {c.label: c for c in report.checks}
    dev = by_label["verdict.measured_deviation <= verdict.bound.max_deviation"]
    assert not dev.passed and dev.failures == dev.checked
    row, lhs, rhs = dev.worst
    assert lhs > rhs
    occ = by_label["envelope_occupancy >= 1.0"]
    assert not occ.passed
    # The forged verdict also breaks the ok flag the e7 spec checks.
    assert evaluate("e7-resilience", broken_store).status == "fail"
    # ...but accuracy was left intact, so that spec still passes.
    assert evaluate("theorem5-accuracy", broken_store).passed


def test_inapplicable_spec_is_skipped(clean_store):
    # No recovery events in a benign campaign: claim8 must skip, not fail.
    report = evaluate("claim8-recovery", clean_store)
    assert report.skipped and report.selected == 0


def test_missing_required_columns_fail():
    spec = EvaluationSpec(name="x", description="d",
                          required_columns=("no.such.column",))
    store = Campaign([config(3)]).run().store()
    report = evaluate(spec, store)
    assert report.status == "fail"
    assert report.missing_columns == ("no.such.column",)


def test_min_runs_enforced(clean_store):
    spec = EvaluationSpec(
        name="needs-many", description="d", min_runs=50,
        checks=(Check(column="error", op="isnull"),))
    report = evaluate(spec, clean_store)
    assert report.status == "fail"


def test_tolerance_allows_slack(clean_store):
    worst = clean_store.query().aggregate(
        v=("verdict.measured_deviation", "max"))["v"]
    tight = EvaluationSpec(
        name="tight", description="d",
        checks=(Check(column="verdict.measured_deviation", op="<=",
                      value=worst / 2.0),))
    slack = dataclasses.replace(
        tight, name="slack",
        checks=(Check(column="verdict.measured_deviation", op="<=",
                      value=worst / 2.0, tolerance=worst),))
    assert evaluate(tight, clean_store).status == "fail"
    assert evaluate(slack, clean_store).passed


def test_nan_cells_fail_checks(clean_store):
    forged = [dataclasses.replace(r, envelope_occupancy=float("nan"))
              for r in clean_store.to_records()]
    store = ResultStore.from_records(forged)
    assert evaluate("theorem5-envelope", store).status == "fail"


def test_report_json_shape(clean_store):
    payload = evaluate("theorem5-envelope", clean_store).to_json()
    assert payload["status"] == "pass"
    assert payload["checks"] and all("label" in c for c in payload["checks"])
    json.dumps(payload)  # must be serializable as-is


def test_evaluate_all_covers_registry(clean_store):
    reports = evaluate_all(clean_store)
    assert {r.spec for r in reports} == set(registered_specs())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _write_store(tmp_path, store, name="store"):
    target = tmp_path / name
    store.save(target)
    return target


def test_cli_evaluate_pass(tmp_path, capsys, clean_store):
    target = _write_store(tmp_path, clean_store)
    out_json = tmp_path / "report.json"
    code = main(["evaluate", str(target), "--json", str(out_json)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "PASS theorem5-envelope" in out
    assert "SKIP claim8-recovery" in out
    payload = json.loads(out_json.read_text())
    assert payload["runs"] == clean_store.n_runs
    assert {r["spec"] for r in payload["reports"]} == set(registered_specs())


def test_cli_evaluate_fail_exit_code(tmp_path, capsys, broken_store):
    target = _write_store(tmp_path, broken_store)
    code = main(["evaluate", str(target)])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL theorem5-envelope" in out
    assert "worst row" in out


def test_cli_evaluate_selected_specs(tmp_path, capsys, broken_store):
    target = _write_store(tmp_path, broken_store)
    assert main(["evaluate", str(target), "--spec", "theorem5-accuracy"]) == 0
    assert main(["evaluate", str(target), "--spec", "theorem5-envelope"]) == 1
    capsys.readouterr()


def test_cli_evaluate_unknown_spec(tmp_path, capsys, clean_store):
    target = _write_store(tmp_path, clean_store)
    assert main(["evaluate", str(target), "--spec", "nope"]) == 2
    assert "unknown evaluation spec" in capsys.readouterr().err


def test_cli_evaluate_bad_store(tmp_path, capsys):
    assert main(["evaluate", str(tmp_path)]) == 2
    assert "cannot load store" in capsys.readouterr().err


def test_cli_evaluate_list(capsys):
    assert main(["evaluate", "--list"]) == 0
    out = capsys.readouterr().out
    assert "theorem5-envelope" in out and "claim8-recovery" in out


def test_cli_evaluate_no_applicable_spec(tmp_path, capsys, clean_store):
    target = _write_store(tmp_path, clean_store)
    code = main(["evaluate", str(target), "--spec", "claim8-recovery"])
    assert code == 2
    assert "no spec applied" in capsys.readouterr().err


def test_cli_sweep_store_then_evaluate(tmp_path, capsys):
    """The end-to-end CLI path: sweep --store, then evaluate."""
    config_file = tmp_path / "configs.json"
    config_file.write_text(json.dumps([config(11), config(12)]))
    store_dir = tmp_path / "campaign-store"
    assert main(["sweep", str(config_file), "--store", str(store_dir)]) == 0
    assert "results appended to store" in capsys.readouterr().out
    assert main(["evaluate", str(store_dir)]) == 0
    assert "PASS e7-resilience" in capsys.readouterr().out
