"""Tests for the Prometheus exposition renderer and the admin HTTP
endpoint (repro.obs.expo)."""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.obs import MetricsRegistry
from repro.obs.expo import (
    MetricsHttpServer,
    metric_families,
    render_prometheus,
    snapshot_percentile,
)


def sample_snapshot() -> dict:
    registry = MetricsRegistry()
    registry.counter("syncs_completed", 0).inc(3)
    registry.counter("syncs_completed", 1).inc(5)
    registry.counter("probe_violations").inc()  # global series
    registry.gauge("cluster_spread").set(0.0125)
    hist = registry.histogram("query_latency_seconds", 0,
                              buckets=(0.001, 0.01, 0.1))
    for value in (0.0004, 0.002, 0.003, 0.5):
        hist.observe(value)
    return registry.snapshot()


class TestRenderPrometheus:
    def test_counters_get_total_suffix_and_node_label(self):
        body = render_prometheus(sample_snapshot())
        assert "# TYPE repro_syncs_completed_total counter" in body
        assert 'repro_syncs_completed_total{node="0"} 3' in body
        assert 'repro_syncs_completed_total{node="1"} 5' in body

    def test_global_series_carries_no_node_label(self):
        body = render_prometheus(sample_snapshot())
        assert "repro_probe_violations_total 1" in body

    def test_gauges_render_verbatim(self):
        body = render_prometheus(sample_snapshot())
        assert "# TYPE repro_cluster_spread gauge" in body
        assert "repro_cluster_spread 0.0125" in body

    def test_histogram_buckets_are_cumulative_with_inf(self):
        lines = render_prometheus(sample_snapshot()).splitlines()
        buckets = [line for line in lines
                   if line.startswith("repro_query_latency_seconds_bucket")]
        # Cumulative counts: 1 (<=0.001), 3 (<=0.01), 3 (<=0.1), 4 (+Inf).
        assert buckets == [
            'repro_query_latency_seconds_bucket{node="0",le="0.001"} 1',
            'repro_query_latency_seconds_bucket{node="0",le="0.01"} 3',
            'repro_query_latency_seconds_bucket{node="0",le="0.1"} 3',
            'repro_query_latency_seconds_bucket{node="0",le="+Inf"} 4',
        ]
        assert 'repro_query_latency_seconds_count{node="0"} 4' in lines

    def test_histogram_sum_matches_observations(self):
        body = render_prometheus(sample_snapshot())
        total = 0.0004 + 0.002 + 0.003 + 0.5
        sum_line = next(line for line in body.splitlines()
                        if line.startswith("repro_query_latency_seconds_sum"))
        assert float(sum_line.split()[-1]) == pytest.approx(total)

    def test_custom_prefix_and_trailing_newline(self):
        body = render_prometheus(sample_snapshot(), prefix="x_")
        assert "# TYPE x_syncs_completed_total counter" in body
        assert body.endswith("\n")

    def test_empty_snapshot_renders_empty_body(self):
        assert render_prometheus({}) == "\n"


class TestMetricFamilies:
    def test_extracts_type_and_sample_families(self):
        families = metric_families(render_prometheus(sample_snapshot()))
        assert "repro_syncs_completed_total" in families
        assert "repro_cluster_spread" in families
        assert "repro_query_latency_seconds" in families
        assert "repro_query_latency_seconds_bucket" in families
        assert "repro_query_latency_seconds_count" in families

    def test_empty_body_has_no_families(self):
        assert metric_families("\n") == set()


class TestSnapshotPercentile:
    def entry(self) -> dict:
        hist = MetricsRegistry().histogram("lat", 0, buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.7, 5.0):
            hist.observe(value)
        return {
            "count": hist.count, "sum": hist.total,
            "min": hist.min, "max": hist.max, "mean": hist.mean,
            "bucket_bounds": list(hist.buckets),
            "bucket_counts": list(hist.bucket_counts),
        }

    def test_matches_live_histogram_estimate(self):
        from repro.obs.metricsreg import Histogram

        hist = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.7, 5.0):
            hist.observe(value)
        entry = self.entry()
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert snapshot_percentile(entry, q) == hist.percentile(q)

    def test_empty_or_bucketless_entry_is_nan(self):
        assert math.isnan(snapshot_percentile({"count": 0}, 0.5))
        assert math.isnan(snapshot_percentile(
            {"count": 3, "sum": 1.0, "min": 0.1, "max": 0.9}, 0.5))

    def test_overflow_quantile_reports_max(self):
        assert snapshot_percentile(self.entry(), 1.0) == 5.0


class TestMetricsHttpServer:
    async def scrape(self, server: MetricsHttpServer, path: str):
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        await writer.drain()
        raw = await reader.read()
        writer.close()
        head, _, body = raw.decode().partition("\r\n\r\n")
        status = int(head.split()[1])
        return status, head, body

    def serve(self, coro):
        async def scenario():
            server = MetricsHttpServer(
                lambda: render_prometheus(sample_snapshot()),
                lambda: {"bounded": True, "spread": 0.01},
                lambda: {"queries": {"0": 7}})
            await server.start()
            try:
                return await coro(self, server)
            finally:
                server.close()

        return asyncio.run(scenario())

    def test_metrics_endpoint_serves_exposition(self):
        async def check(self, server):
            return await self.scrape(server, "/metrics")

        status, head, body = self.serve(check)
        assert status == 200
        assert "text/plain; version=0.0.4" in head
        assert "repro_syncs_completed_total" in metric_families(body)

    def test_health_and_stats_serve_json(self):
        async def check(self, server):
            health = await self.scrape(server, "/health")
            stats = await self.scrape(server, "/stats")
            return health, stats

        (h_status, h_head, h_body), (s_status, _, s_body) = self.serve(check)
        assert h_status == 200 and s_status == 200
        assert "application/json" in h_head
        assert json.loads(h_body) == {"bounded": True, "spread": 0.01}
        assert json.loads(s_body) == {"queries": {"0": 7}}

    def test_unknown_path_is_404_and_uncounted(self):
        async def check(self, server):
            status, _, _ = await self.scrape(server, "/nope")
            return status, dict(server.scrapes)

        status, scrapes = self.serve(check)
        assert status == 404
        assert "/nope" not in scrapes

    def test_non_get_is_400(self):
        async def check(self, server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return int(raw.split()[1])

        assert self.serve(check) == 400

    def test_scrape_counter_and_idempotent_close(self):
        async def check(self, server):
            await self.scrape(server, "/metrics")
            await self.scrape(server, "/metrics")
            await self.scrape(server, "/health")
            return dict(server.scrapes)

        scrapes = self.serve(check)
        assert scrapes == {"/metrics": 2, "/health": 1}
