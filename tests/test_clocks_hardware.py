"""Unit tests for hardware clock models (Definition 1 / eq. 2)."""

from __future__ import annotations

import pytest

from repro.clocks.hardware import FixedRateClock, PiecewiseRateClock
from repro.errors import ClockError


class TestFixedRateClock:
    def test_perfect_clock_tracks_real_time(self):
        clock = FixedRateClock(rho=0.01, rate=1.0)
        assert clock.read(5.0) == pytest.approx(5.0)

    def test_fast_clock_reads_ahead(self):
        clock = FixedRateClock(rho=0.1, rate=1.1)
        assert clock.read(10.0) == pytest.approx(11.0)

    def test_offset_shifts_reading(self):
        clock = FixedRateClock(rho=0.0, rate=1.0, offset=100.0)
        assert clock.read(2.0) == pytest.approx(102.0)

    def test_inverse_roundtrip(self):
        clock = FixedRateClock(rho=0.1, rate=1.05, offset=3.0)
        for tau in (0.0, 1.0, 7.5, 1000.0):
            assert clock.real_time_at(clock.read(tau)) == pytest.approx(tau)

    def test_rate_outside_envelope_rejected(self):
        with pytest.raises(ClockError):
            FixedRateClock(rho=0.01, rate=1.2)
        with pytest.raises(ClockError):
            FixedRateClock(rho=0.01, rate=0.9)

    def test_envelope_extremes_accepted(self):
        FixedRateClock(rho=0.01, rate=1.01)
        FixedRateClock(rho=0.01, rate=1.0 / 1.01)

    def test_negative_rho_rejected(self):
        with pytest.raises(ClockError):
            FixedRateClock(rho=-0.1)

    def test_read_before_origin_rejected(self):
        clock = FixedRateClock(rho=0.0, origin=5.0)
        with pytest.raises(ClockError):
            clock.read(4.0)

    def test_real_time_after_local_duration(self):
        clock = FixedRateClock(rho=0.1, rate=1.1)
        # 11 local units elapse in 10 real seconds.
        assert clock.real_time_after(0.0, 11.0) == pytest.approx(10.0)

    def test_real_time_after_negative_duration_rejected(self):
        clock = FixedRateClock(rho=0.0)
        with pytest.raises(ClockError):
            clock.real_time_after(0.0, -1.0)


class TestPiecewiseRateClock:
    def test_single_segment_matches_fixed(self):
        piecewise = PiecewiseRateClock(rho=0.1, schedule=[(0.0, 1.05)])
        fixed = FixedRateClock(rho=0.1, rate=1.05)
        for tau in (0.0, 3.3, 10.0):
            assert piecewise.read(tau) == pytest.approx(fixed.read(tau))

    def test_rate_changes_accumulate(self):
        clock = PiecewiseRateClock(rho=0.5, schedule=[(0.0, 1.0), (10.0, 1.5)])
        assert clock.read(10.0) == pytest.approx(10.0)
        assert clock.read(12.0) == pytest.approx(10.0 + 2.0 * 1.5)

    def test_rate_at_segments(self):
        clock = PiecewiseRateClock(rho=0.5, schedule=[(0.0, 1.0), (10.0, 1.5)])
        assert clock.rate_at(5.0) == 1.0
        assert clock.rate_at(10.0) == 1.5
        assert clock.rate_at(50.0) == 1.5

    def test_inverse_roundtrip_across_breakpoints(self):
        clock = PiecewiseRateClock(
            rho=0.5, schedule=[(0.0, 1.2), (5.0, 0.8), (9.0, 1.0)], offset=2.0
        )
        for tau in (0.0, 2.5, 5.0, 7.0, 9.0, 20.0):
            assert clock.real_time_at(clock.read(tau)) == pytest.approx(tau)

    def test_monotonicity(self):
        clock = PiecewiseRateClock(rho=0.5, schedule=[(0.0, 1.4), (1.0, 0.7), (2.0, 1.1)])
        taus = [i * 0.1 for i in range(50)]
        readings = [clock.read(t) for t in taus]
        assert all(b > a for a, b in zip(readings, readings[1:]))

    def test_empty_schedule_rejected(self):
        with pytest.raises(ClockError):
            PiecewiseRateClock(rho=0.1, schedule=[])

    def test_non_increasing_breakpoints_rejected(self):
        with pytest.raises(ClockError):
            PiecewiseRateClock(rho=0.1, schedule=[(0.0, 1.0), (0.0, 1.01)])

    def test_out_of_envelope_rate_rejected(self):
        with pytest.raises(ClockError):
            PiecewiseRateClock(rho=0.01, schedule=[(0.0, 1.0), (1.0, 1.5)])

    def test_drift_bound_eq2_holds_on_pairs(self):
        """eq. (2): hardware elapsed between any two times is within the
        drift envelope of real elapsed."""
        rho = 0.3
        clock = PiecewiseRateClock(
            rho=rho, schedule=[(0.0, 1.3), (2.0, 1.0 / 1.3), (4.0, 1.0), (6.0, 1.25)]
        )
        taus = [i * 0.37 for i in range(30)]
        for i, t1 in enumerate(taus):
            for t2 in taus[i + 1:]:
                elapsed = clock.read(t2) - clock.read(t1)
                assert elapsed >= (t2 - t1) / (1 + rho) - 1e-9
                assert elapsed <= (t2 - t1) * (1 + rho) + 1e-9

    def test_breakpoints_property_is_copy(self):
        clock = PiecewiseRateClock(rho=0.1, schedule=[(0.0, 1.0), (1.0, 1.05)])
        points = clock.breakpoints
        points.append(99.0)
        assert clock.breakpoints == [0.0, 1.0]

    def test_real_time_after_spanning_breakpoint(self):
        clock = PiecewiseRateClock(rho=0.5, schedule=[(0.0, 1.0), (5.0, 1.25)])
        # Local duration 10 starting at tau=0: 5 local in first 5s, then
        # 5 local at rate 1.25 -> 4 more real seconds.
        assert clock.real_time_after(0.0, 10.0) == pytest.approx(9.0)


class TestQuantizedClock:
    def make(self, tick=0.01, rate=1.0):
        from repro.clocks.hardware import QuantizedClock
        return QuantizedClock(FixedRateClock(rho=0.1, rate=rate), tick=tick)

    def test_readings_are_multiples_of_tick(self):
        clock = self.make(tick=0.01)
        for tau in (0.0, 0.123456, 7.7777):
            reading = clock.read(tau)
            assert abs(reading / 0.01 - round(reading / 0.01)) < 1e-9

    def test_reading_error_bounded_by_tick(self):
        clock = self.make(tick=0.01, rate=1.05)
        for tau in (0.0, 1.0, 3.21):
            truth = clock.inner.read(tau)
            assert 0.0 <= truth - clock.read(tau) < 0.01

    def test_readings_monotone_nondecreasing(self):
        clock = self.make(tick=0.05)
        readings = [clock.read(i * 0.013) for i in range(100)]
        assert all(b >= a for a, b in zip(readings, readings[1:]))

    def test_timers_unaffected_by_quantization(self):
        """Local durations run off the raw oscillator."""
        clock = self.make(tick=0.05, rate=1.1)
        assert clock.real_time_after(0.0, 11.0) == pytest.approx(10.0)

    def test_bad_tick_rejected(self):
        with pytest.raises(ClockError):
            self.make(tick=0.0)

    def test_protocol_survives_quantization(self):
        """End-to-end: a cluster on quantized clocks still meets the
        bound computed with epsilon enlarged by the tick."""
        import dataclasses
        from repro.clocks.hardware import QuantizedClock
        from repro.runner.builders import benign_scenario, default_params
        from repro.runner.experiment import run
        from repro.runner.scenario import wander_clocks

        tick = 0.002
        base = default_params(n=4, f=1)
        params = dataclasses.replace(base, epsilon=base.epsilon + tick,
                                     strict=False)

        def quantized(node, p, rng, horizon):
            return QuantizedClock(wander_clocks(node, p, rng, horizon), tick)

        result = run(benign_scenario(params, duration=5.0, seed=60,
                                     clock_factory=quantized))
        assert result.max_deviation(2.0) <= params.bounds().max_deviation
