"""Property test: ``Scenario <-> config`` round-trips losslessly.

Scenarios are fuzzed over the spec registries (clock models, delay
models, topologies, plan kinds, strategies).  For every declarative
scenario the contract is exact:

    Scenario.from_config(s.to_config()) == s

and the config itself survives a JSON round-trip unchanged — the two
properties that make campaign caching and process-pool fan-out sound.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.plans import PlanSpec, StrategySpec
from repro.net.links import DelaySpec
from repro.net.topology import TopologySpec
from repro.runner.builders import default_params
from repro.runner.scenario import Scenario

PARAMS = default_params(n=4, f=1)

seeds = st.integers(min_value=0, max_value=2**31 - 1)
durations = st.floats(min_value=0.5, max_value=64.0,
                      allow_nan=False, allow_infinity=False)
small_floats = st.floats(min_value=1e-6, max_value=1.0,
                         allow_nan=False, allow_infinity=False)

clock_names = st.sampled_from(["wander", "extremal", "perfect",
                               "clique-extremal"])

delay_specs = st.one_of(
    st.none(),
    st.builds(DelaySpec, st.just("uniform"), st.just({})),
    st.builds(lambda v: DelaySpec("fixed", {"value": v}),
              st.floats(min_value=1e-4, max_value=0.005,
                        allow_nan=False, allow_infinity=False)),
    st.builds(DelaySpec, st.just("jittered"), st.just({})),
    st.builds(DelaySpec, st.just("heterogeneous"), st.just({})),
)

topology_specs = st.one_of(
    st.none(),
    st.builds(TopologySpec, st.just("full-mesh"), st.just({})),
    st.builds(TopologySpec, st.just("ring"), st.just({})),
    st.builds(lambda f: TopologySpec("two-cliques", {"f": f}),
              st.just(1)),
)

strategy_specs = st.one_of(
    st.builds(StrategySpec, st.just("standard-mix"), st.just({})),
    st.builds(lambda o: StrategySpec("alternating-reset", {"offset": o}),
              small_floats),
    st.builds(lambda p: StrategySpec("split-world", {"push": p}),
              small_floats),
    st.builds(StrategySpec, st.just("silent"), st.just({})),
)

plan_specs = st.one_of(
    st.none(),
    st.builds(lambda s, d: PlanSpec("rotating", s, {"dwell": d}),
              strategy_specs, small_floats),
    st.builds(lambda s: PlanSpec("round-robin", s, {}), strategy_specs),
    st.builds(lambda s, start: PlanSpec(
        "single-burst", s, {"victims": [0], "start": start, "dwell": 0.5}),
        strategy_specs, small_floats),
    st.builds(lambda s, i: PlanSpec("random", s, {"intensity": i}),
              strategy_specs, st.floats(min_value=0.1, max_value=1.0,
                                        allow_nan=False)),
)

scenarios = st.builds(
    Scenario,
    params=st.just(PARAMS),
    duration=durations,
    seed=seeds,
    clock_factory=clock_names,
    topology=topology_specs,
    delay_model=delay_specs,
    plan_builder=plan_specs,
    initial_offset_spread=st.one_of(st.just(0.0), small_floats),
    loss_rate=st.one_of(st.just(0.0),
                        st.floats(min_value=0.0, max_value=0.2,
                                  allow_nan=False)),
    stagger_phases=st.booleans(),
    enforce_f_limit=st.booleans(),
    sample_interval=st.one_of(st.none(), small_floats),
    name=st.sampled_from(["scenario", "fuzzed", "e1"]),
)


@given(scenario=scenarios)
@settings(max_examples=60, deadline=None)
def test_scenario_config_round_trip(scenario):
    assert scenario.is_declarative()
    config = scenario.to_config()
    assert Scenario.from_config(config) == scenario


@given(scenario=scenarios)
@settings(max_examples=60, deadline=None)
def test_config_survives_json(scenario):
    config = scenario.to_config()
    rehydrated = json.loads(json.dumps(config))
    assert rehydrated == config
    assert Scenario.from_config(rehydrated) == scenario
