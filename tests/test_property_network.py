"""Property-based tests for the network and simulator substrates."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.net.links import FixedDelay, UniformDelay
from repro.net.network import Network
from repro.net.topology import full_mesh
from repro.sim.engine import Simulator
from repro.runtime.process import Process
from repro.sim.runtime import SimRuntime


class Collector(Process):
    """Records (sender, payload, delivered_at) triples."""

    def __init__(self, node_id, sim, network):
        super().__init__(SimRuntime(node_id, sim, network,
                                    LogicalClock(FixedRateClock(rho=0.0))))
        self.received = []

    def on_message(self, message):
        self.received.append((message.sender, message.payload,
                              message.delivered_at))


def build(seed, n=4, delta=0.01):
    sim = Simulator(seed=seed)
    network = Network(sim, full_mesh(n), UniformDelay(delta))
    procs = [Collector(i, sim, network) for i in range(n)]
    for p in procs:
        network.bind(p)
    return sim, network, procs


sends = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.floats(0.0, 5.0,
                                                              allow_nan=False)),
    min_size=0, max_size=30)


@settings(max_examples=60)
@given(seed=st.integers(0, 10_000), plan=sends)
def test_exactly_once_within_delta(seed, plan):
    """Every message between distinct nodes is delivered exactly once,
    within (0, delta] of its send time, to the right recipient."""
    sim, network, procs = build(seed)
    expected = []
    for index, (sender, recipient, at) in enumerate(plan):
        if sender == recipient:
            continue
        expected.append((index, sender, recipient, at))
        sim.schedule_at(at, lambda s=sender, r=recipient, i=index:
                        network.send(s, r, i))
    sim.run()
    total_delivered = sum(len(p.received) for p in procs)
    assert total_delivered == len(expected)
    for index, sender, recipient, at in expected:
        matches = [d for d in procs[recipient].received
                   if d[0] == sender and d[1] == index]
        assert len(matches) == 1
        delivered_at = matches[0][2]
        assert at < delivered_at <= at + network.delta + 1e-12


@settings(max_examples=60)
@given(seed=st.integers(0, 10_000),
       times=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1,
                      max_size=40))
def test_simulator_executes_in_time_order(seed, times):
    sim = Simulator(seed=seed)
    fired = []
    for t in times:
        sim.schedule_at(t, lambda t=t: fired.append(t))
    sim.run()
    assert fired == sorted(times)
    assert sim.events_processed == len(times)


@settings(max_examples=40)
@given(seed=st.integers(0, 10_000),
       times=st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=2,
                      max_size=20),
       cancel_mask=st.lists(st.booleans(), min_size=2, max_size=20))
def test_cancellation_is_exact(seed, times, cancel_mask):
    """Exactly the non-cancelled events fire."""
    sim = Simulator(seed=seed)
    fired = []
    handles = []
    for i, t in enumerate(times):
        handles.append(sim.schedule_at(t, lambda i=i: fired.append(i)))
    kept = []
    for i, handle in enumerate(handles):
        if i < len(cancel_mask) and cancel_mask[i]:
            sim.cancel(handle)
        else:
            kept.append(i)
    sim.run()
    assert sorted(fired) == kept


@settings(max_examples=30)
@given(seed=st.integers(0, 10_000))
def test_identical_seeds_identical_delays(seed):
    """The same (topology, seed, send plan) yields identical delivery
    times — the determinism contract."""
    def deliveries(s):
        sim, network, procs = build(s)
        for k in range(10):
            sim.schedule_at(0.1 * k, lambda k=k: network.send(0, 1, k))
        sim.run()
        return [(p, t) for _, p, t in procs[1].received]

    assert deliveries(seed) == deliveries(seed)
