"""Query-protocol tests: answer semantics, UDP round trips, conformance.

:func:`answer_query` is the transport-free core; the UDP server is a
shell around it.  The conformance tests here hold the two paths to
identical answers on the same deterministic service, which is what
licenses benchmarking the wire path and trusting the semantics tests.
"""

from __future__ import annotations

import asyncio
from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.rt.codec import decode_datagram, encode_datagram
from repro.service.query import (
    OP_EPOCH,
    OP_HEALTH,
    OP_NOW,
    OP_STATS,
    OP_VALIDATE,
    AdminReply,
    QueryError,
    TimeQuery,
    TimeQueryClient,
    TimeQueryServer,
    TimeReply,
    answer_query,
)


class FakeTimeService:
    """Deterministic SecureTimeService stand-in.

    ``now()`` advances by a fixed step per read so replies are
    reproducible; validation and epochs follow the real service's
    contract (``ReproError`` for an impossible epoch length).
    """

    def __init__(self, start: float = 100.0, step: float = 0.25,
                 node_id: int = 0) -> None:
        self.process = SimpleNamespace(node_id=node_id)
        self._clock = start
        self._step = step

    def now(self) -> float:
        self._clock += self._step
        return self._clock

    def validate_timestamp(self, ts, max_age: float) -> bool:
        return ts.value >= self._clock - max_age

    def epoch(self, length: float) -> int:
        if length <= 0:
            raise ReproError(f"epoch length must be positive, got {length}")
        return int(self._clock // length)


class TestAnswerQuery:
    def test_now_reads_the_clock(self):
        service = FakeTimeService(start=100.0, step=0.25)
        reply = answer_query(service, TimeQuery(op=OP_NOW, qid=7))
        assert reply == TimeReply(qid=7, ok=True, value=100.25, node=0)

    def test_validate_fresh_and_stale(self):
        service = FakeTimeService(start=100.0, step=0.0)
        fresh = answer_query(service, TimeQuery(
            op=OP_VALIDATE, qid=1, ts_value=99.9, ts_issuer=2, max_age=1.0))
        stale = answer_query(service, TimeQuery(
            op=OP_VALIDATE, qid=2, ts_value=90.0, ts_issuer=2, max_age=1.0))
        assert (fresh.ok, fresh.value) == (True, 1.0)
        assert (stale.ok, stale.value) == (True, 0.0)

    def test_epoch_number(self):
        service = FakeTimeService(start=100.0, step=0.0)
        reply = answer_query(service, TimeQuery(op=OP_EPOCH, qid=3,
                                                epoch_length=30.0))
        assert reply.ok and reply.value == 3.0

    def test_unknown_op_is_error_reply_not_exception(self):
        reply = answer_query(FakeTimeService(),
                             TimeQuery(op="explode", qid=4))
        assert not reply.ok
        assert "explode" in reply.error

    def test_service_error_is_error_reply_not_exception(self):
        reply = answer_query(FakeTimeService(), TimeQuery(
            op=OP_EPOCH, qid=5, epoch_length=-1.0))
        assert not reply.ok
        assert "epoch length" in reply.error

    def test_node_id_override(self):
        reply = answer_query(FakeTimeService(node_id=0),
                             TimeQuery(op=OP_NOW, qid=6), node_id=3)
        assert reply.node == 3


class FakeIntrospection:
    """ClusterIntrospection stand-in with canned documents."""

    def stats(self):
        return {"health": {"bounded": True}, "queries": {"0": {}}}

    def health(self):
        return {"bounded": True, "spread": 0.001}


class TestAdminOps:
    def test_stats_and_health_render_introspection(self):
        intro = FakeIntrospection()
        stats = answer_query(FakeTimeService(), TimeQuery(op=OP_STATS, qid=1),
                             introspection=intro)
        health = answer_query(FakeTimeService(),
                              TimeQuery(op=OP_HEALTH, qid=2),
                              introspection=intro)
        assert isinstance(stats, AdminReply) and stats.ok
        assert stats.kind == OP_STATS
        assert stats.payload == intro.stats()
        assert health.ok and health.payload == intro.health()

    def test_disabled_introspection_fails_cleanly(self):
        reply = answer_query(FakeTimeService(), TimeQuery(op=OP_STATS, qid=3))
        assert isinstance(reply, AdminReply)
        assert not reply.ok
        assert reply.error == "introspection not enabled"
        assert reply.payload == {}

    def test_introspection_error_is_error_reply_not_exception(self):
        class Exploding:
            def health(self):
                raise ReproError("sampler gone")

        reply = answer_query(FakeTimeService(),
                             TimeQuery(op=OP_HEALTH, qid=4),
                             introspection=Exploding())
        assert not reply.ok
        assert "sampler gone" in reply.error

    @pytest.mark.parametrize("wire", ("binary", "json"))
    def test_admin_reply_round_trips_both_wires(self, wire):
        reply = AdminReply(qid=9, ok=True, node=2, kind=OP_HEALTH,
                           payload={"bounded": True, "rounds": {"0": 3}})
        datagram = encode_datagram(2, -1, reply, 10.5, wire=wire)
        sender, recipient, decoded, sent_at = decode_datagram(datagram)
        assert (sender, recipient, sent_at) == (2, -1, 10.5)
        assert decoded == reply  # dict payload survives the generic body


async def _serve(service, *, server_wire="binary"):
    server = TimeQueryServer(service, wire=server_wire)
    await server.start()
    return server


class TestUdpRoundTrip:
    def run(self, coro):
        return asyncio.run(coro)

    def test_now_over_real_sockets_carries_server_clock(self):
        async def scenario():
            server = await _serve(FakeTimeService(start=100.0, step=0.25))
            client = TimeQueryClient(port=server.address[1])
            try:
                await client.connect()
                reply, server_clock = await asyncio.wait_for(
                    client.submit(OP_NOW), timeout=2.0)
                return reply, server_clock, server.queries_answered
            finally:
                client.close()
                server.close()

        reply, server_clock, answered = self.run(scenario())
        assert reply.ok and reply.value == 100.25
        # The reply datagram is stamped with a second clock read.
        assert server_clock == 100.5
        assert answered == 1

    def test_convenience_coroutines(self):
        async def scenario():
            server = await _serve(FakeTimeService(start=100.0, step=0.0))
            client = TimeQueryClient(port=server.address[1])
            try:
                await client.connect()
                now = await client.now()
                fresh = await client.validate_timestamp(99.9, issuer=1,
                                                        max_age=1.0)
                epoch = await client.epoch(30.0)
                return now, fresh, epoch
            finally:
                client.close()
                server.close()

        now, fresh, epoch = self.run(scenario())
        assert now == 100.0
        assert fresh is True
        assert epoch == 3

    def test_error_reply_raises_query_error(self):
        async def scenario():
            server = await _serve(FakeTimeService())
            client = TimeQueryClient(port=server.address[1])
            try:
                await client.connect()
                with pytest.raises(QueryError):
                    await client.epoch(-5.0)
                return server.queries_failed
            finally:
                client.close()
                server.close()

        assert self.run(scenario()) == 1

    def test_timeout_raises_query_error(self):
        async def scenario():
            # A bound-but-mute socket: bind a server, then close it so
            # nothing answers.
            server = await _serve(FakeTimeService())
            port = server.address[1]
            server.close()
            client = TimeQueryClient(port=port, timeout=0.05)
            try:
                await client.connect()
                with pytest.raises(QueryError):
                    await client.request(OP_NOW)
            finally:
                client.close()

        self.run(scenario())

    def test_malformed_query_counted_not_answered(self):
        async def scenario():
            server = await _serve(FakeTimeService())
            server._on_datagram(b"garbage", ("127.0.0.1", 9))
            # A well-formed datagram that is not a TimeQuery is equally
            # not a query.
            from repro.runtime.messages import Ping
            server._on_datagram(
                encode_datagram(-1, 0, Ping(nonce=1), 0.0),
                ("127.0.0.1", 9))
            counters = (server.malformed_dropped, server.queries_answered)
            server.close()
            return counters

        assert self.run(scenario()) == (2, 0)

    def test_json_client_interoperates_with_binary_server(self):
        # The rolling-upgrade scenario at the query boundary: decode
        # sniffs the wire, so a legacy JSON client works unchanged
        # against a binary server (and the reply wire is the server's).
        async def scenario():
            server = await _serve(FakeTimeService(start=100.0, step=0.0),
                                  server_wire="binary")
            client = TimeQueryClient(port=server.address[1], wire="json")
            try:
                await client.connect()
                return await client.now()
            finally:
                client.close()
                server.close()

        assert self.run(scenario()) == 100.0

    def test_rejects_unknown_wire(self):
        with pytest.raises(ConfigurationError):
            TimeQueryClient(wire="yaml")
        with pytest.raises(ConfigurationError):
            TimeQueryServer(FakeTimeService(), wire="yaml")


class TestConformance:
    def test_udp_path_matches_direct_dispatch(self):
        """The wire adds framing, not semantics: every op answered over
        UDP equals the direct ``answer_query`` answer on an identical
        service."""
        queries = [
            TimeQuery(op=OP_NOW, qid=1),
            TimeQuery(op=OP_VALIDATE, qid=2, ts_value=99.9, ts_issuer=1,
                      max_age=1.0),
            TimeQuery(op=OP_EPOCH, qid=3, epoch_length=30.0),
            TimeQuery(op="bogus", qid=4),
            TimeQuery(op=OP_EPOCH, qid=5, epoch_length=-1.0),
        ]
        # step=0: the UDP server reads the clock twice per query (the
        # answer plus the reply's sent_at stamp), so only a constant
        # clock makes the two paths comparable query-by-query.
        direct = [answer_query(FakeTimeService(start=100.0, step=0.0), q)
                  for q in queries]

        async def scenario():
            server = await _serve(FakeTimeService(start=100.0, step=0.0))
            client = TimeQueryClient(port=server.address[1])
            try:
                await client.connect()
                replies = []
                for query in queries:
                    future = client.submit(
                        query.op, ts_value=query.ts_value,
                        ts_issuer=query.ts_issuer, max_age=query.max_age,
                        epoch_length=query.epoch_length)
                    reply, _ = await asyncio.wait_for(future, timeout=2.0)
                    replies.append(reply)
                return replies
            finally:
                client.close()
                server.close()

        over_udp = asyncio.run(scenario())
        # qids are client-assigned and the binary wire renders an op it
        # cannot name as its unknown-op marker, so verdicts must match
        # everywhere but error *text* only where the wire knows the op.
        strip = lambda r: (r.ok, r.value, r.node)
        assert [strip(r) for r in over_udp] == [strip(r) for r in direct]
        assert over_udp[4].error == direct[4].error
        assert not over_udp[3].ok and "unknown query op" in over_udp[3].error


class TestAdminOverUdp:
    def test_stats_and_health_coroutines(self):
        async def scenario():
            server = TimeQueryServer(FakeTimeService(),
                                     introspection=FakeIntrospection())
            await server.start()
            client = TimeQueryClient(port=server.address[1])
            try:
                await client.connect()
                return await client.stats(), await client.health()
            finally:
                client.close()
                server.close()

        stats, health = asyncio.run(scenario())
        assert stats == FakeIntrospection().stats()
        assert health == FakeIntrospection().health()

    def test_disabled_introspection_raises_query_error(self):
        async def scenario():
            server = await _serve(FakeTimeService())
            client = TimeQueryClient(port=server.address[1])
            try:
                await client.connect()
                with pytest.raises(QueryError, match="introspection"):
                    await client.health()
                return server.queries_answered, server.queries_failed
            finally:
                client.close()
                server.close()

        assert asyncio.run(scenario()) == (1, 1)


class TestTelemetryOnQueryPath:
    def make_server(self, metrics):
        service = FakeTimeService(start=100.0, step=0.0)
        server = TimeQueryServer(service, metrics=metrics)
        sent = []
        server._endpoint = SimpleNamespace(
            sendto=lambda data, addr=None: sent.append(data))
        return server, sent

    def drive(self, server):
        queries = [
            TimeQuery(op=OP_NOW, qid=1),
            TimeQuery(op=OP_VALIDATE, qid=2, ts_value=99.9, ts_issuer=1,
                      max_age=1.0),
            TimeQuery(op=OP_EPOCH, qid=3, epoch_length=30.0),
        ]
        for query in queries:
            server._on_datagram(encode_datagram(-1, 0, query, 0.0),
                                ("127.0.0.1", 9))
        return len(queries)

    def test_latency_histogram_observes_each_query(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        server, _ = self.make_server(registry)
        count = self.drive(server)
        hist = registry.latency_histogram("query_latency_seconds",
                                          server.node_id)
        assert hist.count == count
        assert hist.min > 0.0

    def test_metrics_do_not_change_reply_bytes(self):
        """The wire-byte guard: instrumenting the server changes nothing
        a client can see — identical reply datagrams, byte for byte."""
        from repro.obs import MetricsRegistry

        plain_server, plain_sent = self.make_server(None)
        self.drive(plain_server)
        metered_server, metered_sent = self.make_server(MetricsRegistry())
        self.drive(metered_server)
        assert plain_sent == metered_sent
        assert plain_sent  # the comparison is not vacuous
