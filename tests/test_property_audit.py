"""Property-based tests for the Definition 2 f-limit auditor.

The auditor must match a brute-force check of the definition: for every
window ``[tau, tau + PI]``, the number of distinct nodes whose
corruption intersects the window is at most ``f``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.mobile import PlannedCorruption, audit_f_limited, rotating_plan
from repro.adversary.strategies import SilentStrategy
from repro.errors import AdversaryError


@st.composite
def corruption_plans(draw):
    count = draw(st.integers(0, 8))
    plan = []
    for _ in range(count):
        node = draw(st.integers(0, 4))
        start = draw(st.floats(0.0, 20.0, allow_nan=False))
        length = draw(st.floats(0.1, 5.0, allow_nan=False))
        plan.append(PlannedCorruption(node=node, start=start, end=start + length,
                                      strategy=SilentStrategy()))
    return plan


def brute_force_ok(plan, f, pi):
    """Check Definition 2 directly at every critical window position."""
    if not plan:
        return True
    # Candidate window starts: every inflated-interval endpoint.
    candidates = set()
    for c in plan:
        candidates.add(c.start - pi)
        candidates.add(c.start)
        candidates.add(c.end)
    for tau in candidates:
        touched = {c.node for c in plan
                   if c.start <= tau + pi and c.end >= tau}
        if len(touched) > f:
            return False
    return True


@settings(max_examples=200)
@given(plan=corruption_plans(), f=st.integers(1, 4),
       pi=st.floats(0.1, 5.0, allow_nan=False))
def test_auditor_matches_brute_force(plan, f, pi):
    expected_ok = brute_force_ok(plan, f, pi)
    if expected_ok:
        audit_f_limited(plan, f, pi)
    else:
        with pytest.raises(AdversaryError):
            audit_f_limited(plan, f, pi)


@settings(max_examples=50)
@given(n=st.integers(4, 10), f=st.integers(1, 3),
       pi=st.floats(0.5, 3.0, allow_nan=False),
       duration=st.floats(5.0, 50.0, allow_nan=False),
       dwell_frac=st.floats(0.2, 2.0, allow_nan=False))
def test_rotating_plans_always_pass_audit(n, f, pi, duration, dwell_frac):
    """The generator's claim: every rotating plan is f-limited."""
    if n < 3 * f + 1:
        n = 3 * f + 1
    plan = rotating_plan(n=n, f=f, pi=pi, duration=duration,
                         strategy_factory=lambda node, ep: SilentStrategy(),
                         dwell=dwell_frac * pi)
    audit_f_limited(plan, f, pi)
    assert brute_force_ok(plan, f, pi)


@settings(max_examples=60)
@given(n=st.integers(4, 12), f=st.integers(1, 3),
       pi=st.floats(0.5, 3.0, allow_nan=False),
       duration=st.floats(5.0, 40.0, allow_nan=False),
       seed=st.integers(0, 10_000),
       intensity=st.floats(0.1, 1.0, allow_nan=False))
def test_random_plans_always_f_limited(n, f, pi, duration, seed, intensity):
    """random_plan's by-construction claim, checked both ways."""
    import random as random_module
    from repro.adversary.mobile import random_plan

    if n < 3 * f + 1:
        n = 3 * f + 1
    plan = random_plan(n=n, f=f, pi=pi, duration=duration,
                       strategy_factory=lambda node, ep: SilentStrategy(),
                       rng=random_module.Random(seed), intensity=intensity)
    audit_f_limited(plan, f, pi)
    assert brute_force_ok(plan, f, pi)
