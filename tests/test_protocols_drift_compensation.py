"""Unit + integration tests for the drift-compensating extension."""

from __future__ import annotations

import pytest

from repro.protocols.drift_compensation import DriftCompensatingProcess
from repro.runner.builders import (
    benign_scenario,
    default_params,
    mobile_byzantine_scenario,
    recovery_scenario,
    warmup_for,
)
from repro.runner.experiment import run
from repro.runner.scenario import extremal_clocks


def fast_params(n=4, f=1):
    return default_params(n=n, f=f)


class TestConstruction:
    def test_registered(self):
        from repro.protocols import registered_protocols
        assert "drift-compensating" in registered_protocols()

    def test_bad_gain_rejected(self, sim):
        from repro.clocks.hardware import FixedRateClock
        from repro.clocks.logical import LogicalClock
        from repro.net.links import FixedDelay
        from repro.net.network import Network
        from repro.net.topology import full_mesh

        params = fast_params()
        network = Network(sim, full_mesh(4), FixedDelay(delta=params.delta))
        clock = LogicalClock(FixedRateClock(rho=params.rho))
        from repro.sim.runtime import SimRuntime
        with pytest.raises(ValueError):
            DriftCompensatingProcess(SimRuntime(0, sim, network, clock),
                                     params, gain=0.0)

    def test_default_limit_is_twice_rho(self, sim):
        from repro.clocks.hardware import FixedRateClock
        from repro.clocks.logical import LogicalClock
        from repro.net.links import FixedDelay
        from repro.net.network import Network
        from repro.net.topology import full_mesh

        params = fast_params()
        network = Network(sim, full_mesh(4), FixedDelay(delta=params.delta))
        clock = LogicalClock(FixedRateClock(rho=params.rho))
        from repro.sim.runtime import SimRuntime
        process = DriftCompensatingProcess(SimRuntime(0, sim, network, clock),
                                           params)
        assert process.comp_limit == pytest.approx(2 * params.rho)


class TestBehaviour:
    def test_learns_rate_error_on_extremal_clocks(self):
        """A fast node's comp_rate should converge toward its true rate
        error relative to the cluster median (negative, ~ -rho)."""
        params = fast_params()
        result = run(benign_scenario(params, duration=8.0, seed=1,
                                     clock_factory=extremal_clocks,
                                     protocol="drift-compensating"))
        fast_node = result.processes[0]   # even nodes run at 1 + rho
        assert fast_node.comp_rate < 0
        assert abs(fast_node.comp_rate) <= 2 * params.rho

    def test_comp_rate_always_clamped(self):
        params = fast_params()
        result = run(mobile_byzantine_scenario(params, duration=10.0, seed=2,
                                               protocol="drift-compensating"))
        for process in result.processes.values():
            assert abs(process.comp_rate) <= process.comp_limit + 1e-15

    def test_improves_deviation_on_extremal_clocks(self):
        params = fast_params()
        plain = run(benign_scenario(params, duration=10.0, seed=3,
                                    clock_factory=extremal_clocks))
        comp = run(benign_scenario(params, duration=10.0, seed=3,
                                   clock_factory=extremal_clocks,
                                   protocol="drift-compensating"))
        warm = 5.0  # allow the feedback loop to converge
        assert comp.max_deviation(warm) < plain.max_deviation(warm)

    def test_still_meets_theorem5_under_byzantine(self):
        """Security retained: the extension must not break the bound."""
        params = fast_params()
        result = run(mobile_byzantine_scenario(params, duration=12.0, seed=4,
                                               protocol="drift-compensating"))
        verdict = result.verdict(warmup=warmup_for(params))
        assert verdict.deviation_ok and verdict.discontinuity_ok

    def test_feedback_state_lost_on_recovery(self):
        params = fast_params()
        result = run(recovery_scenario(params, duration=6.0, seed=5,
                                       protocol="drift-compensating"))
        assert result.recovery().all_recovered

    def test_recovers_like_plain_sync(self):
        """Compensation must not slow the WayOff jump."""
        params = fast_params()
        plain = run(recovery_scenario(params, duration=8.0, seed=6))
        comp = run(recovery_scenario(params, duration=8.0, seed=6,
                                     protocol="drift-compensating"))
        assert comp.recovery().max_recovery_time <= \
            plain.recovery().max_recovery_time + params.t_interval
