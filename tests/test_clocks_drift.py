"""Unit tests for drift-schedule generators."""

from __future__ import annotations

import random

import pytest

from repro.clocks.drift import alternating_schedule, clamp_rate, constant_rate, wander_schedule
from repro.clocks.hardware import PiecewiseRateClock
from repro.errors import ClockError


def test_clamp_rate_inside_envelope_unchanged():
    assert clamp_rate(1.0, 0.01) == 1.0


def test_clamp_rate_clamps_both_sides():
    rho = 0.01
    assert clamp_rate(2.0, rho) == pytest.approx(1.01)
    assert clamp_rate(0.5, rho) == pytest.approx(1.0 / 1.01)


def test_constant_rate_signs():
    rho = 0.02
    assert constant_rate(rho, +1) == [(0.0, 1.02)]
    assert constant_rate(rho, -1) == [(0.0, pytest.approx(1.0 / 1.02))]
    assert constant_rate(rho, 0) == [(0.0, 1.0)]


def test_alternating_schedule_flips_each_period():
    schedule = alternating_schedule(rho=0.1, period=2.0, horizon=7.0)
    rates = [r for _, r in schedule]
    assert rates[0] == pytest.approx(1.1)
    assert rates[1] == pytest.approx(1.0 / 1.1)
    assert rates[2] == pytest.approx(1.1)
    assert len(schedule) == 4  # t = 0, 2, 4, 6


def test_alternating_schedule_start_slow():
    schedule = alternating_schedule(rho=0.1, period=1.0, horizon=1.0, start_fast=False)
    assert schedule[0][1] == pytest.approx(1.0 / 1.1)


def test_alternating_schedule_rejects_bad_period():
    with pytest.raises(ClockError):
        alternating_schedule(rho=0.1, period=0.0, horizon=1.0)


def test_wander_schedule_rates_within_envelope():
    rho = 0.05
    schedule = wander_schedule(rho, step=0.5, horizon=50.0, rng=random.Random(1))
    lo, hi = 1.0 / (1.0 + rho), 1.0 + rho
    assert all(lo <= rate <= hi for _, rate in schedule)


def test_wander_schedule_covers_horizon():
    schedule = wander_schedule(0.01, step=1.0, horizon=10.0, rng=random.Random(2))
    assert schedule[0][0] == 0.0
    assert schedule[-1][0] >= 10.0


def test_wander_schedule_deterministic_per_rng_seed():
    a = wander_schedule(0.01, step=1.0, horizon=5.0, rng=random.Random(3))
    b = wander_schedule(0.01, step=1.0, horizon=5.0, rng=random.Random(3))
    assert a == b


def test_wander_schedule_rejects_bad_step():
    with pytest.raises(ClockError):
        wander_schedule(0.01, step=-1.0, horizon=5.0, rng=random.Random(0))


def test_wander_schedule_feeds_piecewise_clock():
    rho = 0.02
    schedule = wander_schedule(rho, step=0.25, horizon=20.0, rng=random.Random(4))
    clock = PiecewiseRateClock(rho, schedule)
    # eq. (2) over the whole horizon.
    elapsed = clock.read(20.0) - clock.read(0.0)
    assert 20.0 / (1 + rho) - 1e-9 <= elapsed <= 20.0 * (1 + rho) + 1e-9


def test_opposite_alternating_clocks_achieve_worst_mutual_drift():
    """Two anti-phase extremal clocks diverge at the full mutual rate."""
    rho = 0.1
    fast_first = PiecewiseRateClock(rho, alternating_schedule(rho, 1.0, 4.0, True))
    slow_first = PiecewiseRateClock(rho, alternating_schedule(rho, 1.0, 4.0, False))
    gap_at_1 = fast_first.read(1.0) - slow_first.read(1.0)
    expected = 1.0 * (1 + rho) - 1.0 / (1 + rho)
    assert gap_at_1 == pytest.approx(expected)
