"""Tests for the live telemetry plane (repro.obs.live): registry wiring
on the real-cluster path, the wall-clock Theorem 5 probe, and the
introspection documents behind every admin surface."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs import ObsConfig
from repro.obs.live import (
    ClusterIntrospection,
    LiveTelemetry,
    merged_latency,
)
from repro.rt.live import build_cluster, default_live_params
from repro.rt.virtualtime import VirtualTimeLoop


def telemetry_run(duration=4.0, seed=3, n=4, f=1, config=None,
                  sample_interval=0.1):
    params = default_live_params(n=n, f=f)
    loop = VirtualTimeLoop()
    cluster = build_cluster(params, loop, seed=seed, transport="loopback",
                            telemetry=True if config is None else config)
    cluster.start(sample_interval=sample_interval)
    loop.run_until(duration)
    cluster.sample_once()
    return params, cluster


class TestLiveTelemetry:
    def test_registry_populated_from_live_run(self):
        params, cluster = telemetry_run()
        snap = cluster.telemetry.metrics.snapshot()
        # Protocol counters per node, from the bus events.
        for node in map(str, range(params.n)):
            assert snap["counters"]["syncs_completed"][node] >= 1
            assert snap["counters"]["replies_sent"][node] >= 1
        # Transport counters pulled off the shared loopback hub
        # (one global series: the hub has no node_id).
        assert snap["counters"]["transport_sent"]["_"] > 0
        assert snap["counters"]["transport_delivered"]["_"] > 0
        # Correction-magnitude histograms ride sync.complete.
        assert snap["histograms"]["correction_abs"]["0"]["count"] >= 1
        # The sampler feeds the spread gauges.
        assert snap["gauges"]["cluster_spread"]["_"] >= 0.0
        assert (snap["gauges"]["cluster_spread_bound"]["_"]
                == params.bounds().max_deviation)

    def test_run_start_header_matches_recorder_schema(self):
        params, cluster = telemetry_run(duration=1.0)
        start = cluster.telemetry.events[0]
        assert start.kind == "run.start"
        bounds = params.bounds()
        assert start.data["n"] == params.n
        assert start.data["max_deviation_bound"] == bounds.max_deviation
        assert start.data["discontinuity_bound"] == bounds.discontinuity

    def test_stop_finalizes_with_snapshot_and_end(self):
        _, cluster = telemetry_run(duration=1.0)
        cluster.stop()
        kinds = [event.kind for event in cluster.telemetry.events]
        assert kinds[-1] == "run.end"
        assert kinds[-2] == "metrics.snapshot"
        # Idempotent: a second stop appends nothing.
        cluster.stop()
        assert [e.kind for e in cluster.telemetry.events] == kinds

    def test_clean_run_has_no_probe_violations(self):
        _, cluster = telemetry_run()
        assert cluster.telemetry.violations == []

    def test_injected_drift_violation_is_flagged(self):
        # Yank node 0's clock far outside every Theorem 5 envelope
        # mid-run: the wall-clock probe must flag it on the next sample.
        params, cluster = telemetry_run()
        tau = cluster.now()
        cluster.clocks[0].adjust(tau, 50.0 * params.bounds().max_deviation)
        cluster.sample_once()
        violations = cluster.telemetry.violations
        assert violations
        probes = {violation.probe for violation in violations}
        assert "deviation" in probes
        kinds = [event.kind for event in cluster.telemetry.events]
        assert "probe.violation" in kinds

    def test_events_jsonl_round_trips(self, tmp_path):
        _, cluster = telemetry_run(duration=1.0)
        cluster.stop()
        path = tmp_path / "live.jsonl"
        cluster.telemetry.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert first["kind"] == "run.start"
        assert json.loads(lines[-1])["kind"] == "run.end"

    def test_config_selects_subsystems(self):
        config = ObsConfig(spans=False, probes=False)
        _, cluster = telemetry_run(duration=1.0, config=config)
        telemetry = cluster.telemetry
        assert telemetry.tracer is None
        assert telemetry.probe is None
        assert telemetry.collector is not None
        assert telemetry.violations == []

    def test_metrics_property_safe_without_collector(self):
        config = ObsConfig(spans=False, metrics=False, probes=False)
        _, cluster = telemetry_run(duration=1.0, config=config)
        snap = cluster.telemetry.metrics.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestIntrospection:
    def test_health_on_converged_cluster(self):
        params, cluster = telemetry_run()
        doc = cluster.introspection().health()
        assert doc["bounded"] is True
        assert doc["nodes"] == params.n
        assert doc["samples"] > 0
        assert doc["spread"] <= doc["bound"]
        assert doc["max_spread"] <= doc["bound"]
        assert doc["telemetry"] is True
        assert doc["violations"] == 0
        assert all(rounds >= 1 for rounds in doc["rounds"].values())
        # No queries served: latency percentiles are absent, not junk.
        assert doc["query_p50"] is None and doc["query_p99"] is None

    def test_health_without_telemetry(self):
        params = default_live_params()
        loop = VirtualTimeLoop()
        cluster = build_cluster(params, loop, seed=3, transport="loopback")
        cluster.start(sample_interval=0.1)
        loop.run_until(2.0)
        cluster.sample_once()
        doc = cluster.introspection().health()
        assert doc["bounded"] is True
        assert doc["telemetry"] is False
        assert doc["violations"] is None

    def test_health_unbounded_after_injected_fault(self):
        params, cluster = telemetry_run()
        tau = cluster.now()
        cluster.clocks[0].adjust(tau, 50.0 * params.bounds().max_deviation)
        cluster.sample_once()
        assert cluster.introspection().health()["bounded"] is False

    def test_health_not_bounded_before_first_sample(self):
        # Zero samples means no evidence: health must not claim bounded.
        params = default_live_params()
        loop = VirtualTimeLoop()
        cluster = build_cluster(params, loop, seed=3, transport="loopback",
                                telemetry=True)
        doc = cluster.introspection().health()
        assert doc["samples"] == 0
        assert doc["bounded"] is False

    def test_stats_document_shape(self):
        _, cluster = telemetry_run()
        doc = cluster.introspection().stats()
        assert set(doc) == {"health", "transport", "queries", "metrics"}
        assert doc["transport"]["_"]["transport_sent"] > 0
        assert doc["queries"] == {}  # no query servers on this cluster
        assert "syncs_completed" in doc["metrics"]["counters"]
        json.dumps(doc)  # the whole document must be JSON-able

    def test_loopback_hub_has_no_drop_counters(self):
        # Loopback can't drop datagrams; the families must be absent,
        # not zero-valued lies.
        _, cluster = telemetry_run()
        counters = cluster.introspection().transport_counters()
        assert set(counters) == {"_"}
        assert "transport_malformed_dropped" not in counters["_"]

    def test_udp_transports_expose_drop_counters(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            params = default_live_params(n=4, f=1)
            cluster = build_cluster(params, loop, seed=1, transport="udp",
                                    telemetry=True)
            try:
                addresses = {node: await udp.start()
                             for node, udp in cluster.transports.items()}
                for udp in cluster.transports.values():
                    udp.set_peers(addresses)
                cluster.start(sample_interval=0.1)
                await asyncio.sleep(0.4)
                cluster.sample_once()
                counters = cluster.introspection().transport_counters()
                snap = cluster.telemetry.metrics.snapshot()
            finally:
                cluster.stop()
            return params, counters, snap

        params, counters, snap = asyncio.run(scenario())
        assert set(counters) == set(map(str, range(params.n)))
        for node in counters.values():
            assert node["transport_malformed_dropped"] == 0
            assert node["transport_misrouted_dropped"] == 0
            assert node["transport_version_dropped"] == 0
            assert node["transport_sent"] > 0
        # And the same families land per-node in the registry.
        assert set(snap["counters"]["transport_malformed_dropped"]) == set(
            map(str, range(params.n)))


class TestMergedLatency:
    def test_merges_per_node_histograms(self):
        snapshot = {"histograms": {"query_latency_seconds": {
            "0": {"count": 2, "sum": 0.3, "min": 0.1, "max": 0.2,
                  "bucket_bounds": [0.15, 0.25],
                  "bucket_counts": [1, 1, 0]},
            "1": {"count": 1, "sum": 0.05, "min": 0.05, "max": 0.05,
                  "bucket_bounds": [0.15, 0.25],
                  "bucket_counts": [1, 0, 0]},
        }}}
        merged = merged_latency(snapshot)
        assert merged["count"] == 3
        assert merged["sum"] == pytest.approx(0.35)
        assert merged["min"] == 0.05 and merged["max"] == 0.2
        assert merged["bucket_counts"] == [2, 1, 0]

    def test_absent_or_empty_family_is_none(self):
        assert merged_latency({}) is None
        assert merged_latency({"histograms": {"query_latency_seconds": {
            "0": {"count": 0, "sum": 0.0, "min": None, "max": None},
        }}}) is None


class TestDeterminism:
    def test_telemetry_stream_reproducible(self):
        def run():
            _, cluster = telemetry_run(seed=7)
            cluster.stop()
            return cluster.telemetry.events_jsonl()

        assert run() == run()

    def test_telemetry_does_not_change_decisions(self):
        def decisions(telemetry: bool):
            params = default_live_params()
            loop = VirtualTimeLoop()
            cluster = build_cluster(params, loop, seed=5,
                                    transport="loopback",
                                    telemetry=telemetry)
            cluster.start(sample_interval=0.1)
            loop.run_until(3.0)
            return {
                node: [(r.round_no, r.correction, r.m, r.big_m)
                       for r in proc.sync_records]
                for node, proc in cluster.processes.items()
            }

        assert decisions(False) == decisions(True)
