"""Unit tests for scenario resolution and clock factories."""

from __future__ import annotations

import random

import pytest

from repro.net.links import FixedDelay, UniformDelay
from repro.net.topology import ring
from repro.runner.builders import default_params
from repro.runner.scenario import (
    Scenario,
    extremal_clocks,
    perfect_clocks,
    wander_clocks,
)


@pytest.fixture
def scenario(params):
    return Scenario(params=params, duration=5.0)


class TestResolution:
    def test_default_topology_is_full_mesh(self, scenario):
        topo = scenario.resolved_topology()
        assert topo.n == scenario.params.n
        assert topo.edge_count() == scenario.params.n * (scenario.params.n - 1) // 2

    def test_explicit_topology_respected(self, params):
        topo = ring(params.n)
        scenario = Scenario(params=params, duration=1.0, topology=topo)
        assert scenario.resolved_topology() is topo

    def test_default_delay_model_is_uniform_with_delta(self, scenario):
        model = scenario.resolved_delay_model()
        assert isinstance(model, UniformDelay)
        assert model.delta == scenario.params.delta

    def test_explicit_delay_model_respected(self, params):
        model = FixedDelay(params.delta)
        scenario = Scenario(params=params, duration=1.0, delay_model=model)
        assert scenario.resolved_delay_model() is model

    def test_default_sample_interval_is_max_wait(self, scenario):
        assert scenario.resolved_sample_interval() == scenario.params.max_wait

    def test_explicit_sample_interval(self, params):
        scenario = Scenario(params=params, duration=1.0, sample_interval=0.25)
        assert scenario.resolved_sample_interval() == 0.25


class TestInitialOffsets:
    def test_default_zero(self, scenario):
        rng = random.Random(0)
        assert scenario.initial_offset_for(0, rng) == 0.0

    def test_explicit_list_wins(self, params):
        offsets = [0.1 * i for i in range(params.n)]
        scenario = Scenario(params=params, duration=1.0, initial_offsets=offsets,
                            initial_offset_spread=100.0)
        rng = random.Random(0)
        assert scenario.initial_offset_for(3, rng) == pytest.approx(0.3)

    def test_spread_sampled_within_half_spread(self, params):
        scenario = Scenario(params=params, duration=1.0, initial_offset_spread=2.0)
        rng = random.Random(0)
        values = [scenario.initial_offset_for(i, rng) for i in range(100)]
        assert all(-1.0 <= v <= 1.0 for v in values)
        assert max(values) > 0.3 and min(values) < -0.3


class TestClockFactories:
    def test_wander_clocks_obey_drift_bound(self, params):
        clock = wander_clocks(0, params, random.Random(1), horizon=10.0)
        elapsed = clock.read(10.0) - clock.read(0.0)
        assert 10.0 / (1 + params.rho) - 1e-9 <= elapsed <= 10.0 * (1 + params.rho) + 1e-9

    def test_extremal_clocks_alternate(self, params):
        fast = extremal_clocks(0, params, random.Random(1), 10.0)
        slow = extremal_clocks(1, params, random.Random(1), 10.0)
        assert fast.rate_at(0.0) == pytest.approx(1 + params.rho)
        assert slow.rate_at(0.0) == pytest.approx(1 / (1 + params.rho))

    def test_perfect_clocks_track_real_time(self, params):
        clock = perfect_clocks(0, params, random.Random(1), 10.0)
        assert clock.read(7.5) == pytest.approx(7.5)

    def test_wander_clocks_differ_per_rng(self, params):
        a = wander_clocks(0, params, random.Random(1), 10.0)
        b = wander_clocks(1, params, random.Random(2), 10.0)
        assert a.read(10.0) != b.read(10.0)
