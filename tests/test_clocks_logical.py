"""Unit tests for logical clocks (C = H + adj)."""

from __future__ import annotations

import pytest

from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock


def make_clock(rate: float = 1.0, adj: float = 0.0) -> LogicalClock:
    return LogicalClock(FixedRateClock(rho=0.1, rate=rate), adj=adj)


def test_read_is_hardware_plus_adj():
    clock = make_clock(rate=1.1, adj=5.0)
    assert clock.read(10.0) == pytest.approx(11.0 + 5.0)


def test_adjust_accumulates():
    clock = make_clock()
    clock.adjust(1.0, 2.0)
    clock.adjust(2.0, -0.5)
    assert clock.adj == pytest.approx(1.5)
    assert clock.read(2.0) == pytest.approx(3.5)


def test_adjust_records_history():
    clock = make_clock()
    clock.adjust(1.0, 2.0)
    clock.adjust(3.0, -1.0)
    assert clock.adjustments == [(1.0, 2.0, 2.0), (3.0, -1.0, 1.0)]


def test_bias_definition():
    clock = make_clock(rate=1.0, adj=0.25)
    # C(tau) = tau + 0.25, so bias = 0.25 at every tau.
    for tau in (0.0, 1.0, 9.0):
        assert clock.bias(tau) == pytest.approx(0.25)


def test_bias_of_drifting_clock_grows():
    clock = make_clock(rate=1.1)
    assert clock.bias(0.0) == pytest.approx(0.0)
    assert clock.bias(10.0) == pytest.approx(1.0)


def test_hijack_set_overwrites_adj_and_records_delta():
    clock = make_clock(adj=1.0)
    clock.hijack_set(5.0, 10.0)
    assert clock.adj == 10.0
    assert clock.adjustments == [(5.0, 9.0, 10.0)]


def test_set_value_targets_clock_reading():
    clock = make_clock(rate=1.1)
    clock.set_value(10.0, 42.0)
    assert clock.read(10.0) == pytest.approx(42.0)


def test_adjustment_does_not_change_hardware_elapsed():
    """Definition 1: adj shifts the clock value, not its rate — local
    durations measured on hardware are unaffected."""
    clock = make_clock(rate=1.05)
    before = clock.hardware.read(10.0) - clock.hardware.read(0.0)
    clock.adjust(5.0, 100.0)
    after = clock.hardware.read(10.0) - clock.hardware.read(0.0)
    assert before == after
