"""Unit tests for Byzantine strategies."""

from __future__ import annotations

import random

import pytest

from repro.adversary.strategies import (
    LiarStrategy,
    NearBoundaryResetStrategy,
    NoisyStrategy,
    RandomClockStrategy,
    SilentStrategy,
    SplitWorldStrategy,
    StealthDriftStrategy,
    TwoFacedStrategy,
)
from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.net.links import FixedDelay
from repro.runtime.messages import Message, Ping, Pong
from repro.net.network import Network
from repro.net.topology import full_mesh
from repro.runtime.process import Process
from repro.sim.runtime import SimRuntime


class Inbox(Process):
    def __init__(self, node_id, sim, network, clock=None):
        clock = clock or LogicalClock(FixedRateClock(rho=0.0))
        super().__init__(SimRuntime(node_id, sim, network, clock))
        self.pongs = []

    def on_message(self, message):
        if isinstance(message.payload, Pong):
            self.pongs.append(message.payload)


def build(sim, n=4):
    network = Network(sim, full_mesh(n), FixedDelay(delta=0.01, value=0.002))
    procs = [Inbox(i, sim, network) for i in range(n)]
    for p in procs:
        network.bind(p)
    return network, procs


def ping_message(sender: int, recipient: int, nonce: int = 1) -> Message:
    return Message(sender=sender, recipient=recipient, payload=Ping(nonce=nonce),
                   sent_at=0.0, delivered_at=0.0, msg_id=0)


RNG = random.Random(0)


def test_silent_strategy_drops_everything(sim):
    network, procs = build(sim)
    strategy = SilentStrategy()
    strategy.on_message(procs[1], ping_message(0, 1), RNG)
    sim.run()
    assert procs[0].pongs == []


def test_random_clock_scrambles_within_spread(sim):
    network, procs = build(sim)
    strategy = RandomClockStrategy(spread=10.0)
    before = procs[1].clock.adj
    strategy.on_break_in(procs[1], random.Random(1))
    assert procs[1].clock.adj != before
    assert abs(procs[1].clock.adj - before) <= 10.0


def test_random_clock_answers_from_scrambled_clock(sim):
    network, procs = build(sim)
    strategy = RandomClockStrategy(spread=10.0)
    strategy.on_break_in(procs[1], random.Random(1))
    strategy.on_message(procs[1], ping_message(0, 1), RNG)
    sim.run()
    assert len(procs[0].pongs) == 1
    # The reply was generated at tau=0 with a unit-rate clock, so the
    # reported value is exactly the scrambled adjustment.
    assert procs[0].pongs[0].clock_value == pytest.approx(procs[1].clock.adj)


def test_random_clock_silent_mode(sim):
    network, procs = build(sim)
    strategy = RandomClockStrategy(spread=10.0, answer_pings=False)
    strategy.on_message(procs[1], ping_message(0, 1), RNG)
    sim.run()
    assert procs[0].pongs == []


def test_liar_offsets_every_reply(sim):
    network, procs = build(sim)
    strategy = LiarStrategy(offset=1e6)
    strategy.on_message(procs[1], ping_message(0, 1), RNG)
    sim.run()
    assert procs[0].pongs[0].clock_value == pytest.approx(1e6, rel=1e-3)


def test_noisy_replies_vary(sim):
    network, procs = build(sim)
    strategy = NoisyStrategy(spread=100.0)
    rng = random.Random(2)
    strategy.on_message(procs[1], ping_message(0, 1, nonce=1), rng)
    strategy.on_message(procs[1], ping_message(0, 1, nonce=2), rng)
    sim.run()
    values = [p.clock_value for p in procs[0].pongs]
    assert len(values) == 2 and values[0] != values[1]


def test_two_faced_gives_opposite_answers(sim):
    network, procs = build(sim)
    strategy = TwoFacedStrategy(magnitude=5.0)
    strategy.on_message(procs[1], ping_message(0, 1), RNG)   # node 0: even -> low
    strategy.on_message(procs[1], ping_message(3, 1), RNG)   # node 3: odd -> high
    sim.run()
    low = procs[0].pongs[0].clock_value
    high = procs[3].pongs[0].clock_value
    assert high - low == pytest.approx(10.0, abs=0.1)


def test_two_faced_custom_split(sim):
    network, procs = build(sim)
    strategy = TwoFacedStrategy(magnitude=5.0, split=lambda node: node < 2)
    strategy.on_message(procs[1], ping_message(0, 1), RNG)
    strategy.on_message(procs[1], ping_message(2, 1), RNG)
    sim.run()
    assert procs[0].pongs[0].clock_value < procs[2].pongs[0].clock_value


def test_split_world_pushes_recipients_outward(sim):
    network, procs = build(sim)
    clocks = {i: p.clock for i, p in enumerate(procs)}
    # Give node 0 a low clock and node 3 a high clock.
    clocks[0].adjust(0.0, -1.0)
    clocks[3].adjust(0.0, +1.0)
    strategy = SplitWorldStrategy(clocks, push=50.0)
    strategy.on_message(procs[1], ping_message(0, 1), RNG)
    strategy.on_message(procs[1], ping_message(3, 1), RNG)
    sim.run()
    told_low = procs[0].pongs[0].clock_value
    told_high = procs[3].pongs[0].clock_value
    assert told_low < clocks[0].read(sim.now)   # pushed further down
    assert told_high > clocks[3].read(sim.now)  # pushed further up


def test_near_boundary_reset_fires_on_leave_only(sim):
    network, procs = build(sim)
    strategy = NearBoundaryResetStrategy(offset=3.0)
    before = procs[1].clock.adj
    strategy.on_break_in(procs[1], RNG)
    assert procs[1].clock.adj == before
    strategy.on_leave(procs[1], RNG)
    assert procs[1].clock.adj == pytest.approx(before + 3.0)


def test_stealth_drift_skew_grows(sim):
    network, procs = build(sim)
    strategy = StealthDriftStrategy(rate=2.0)
    strategy.on_break_in(procs[1], RNG)
    strategy.on_message(procs[1], ping_message(0, 1, nonce=1), RNG)
    sim.run(until=1.0)
    strategy.on_message(procs[1], ping_message(0, 1, nonce=2), RNG)
    sim.run()
    first, second = [p.clock_value for p in procs[0].pongs]
    # Reply at t=0 has no skew; at t=1 skew = 2.0 (minus 1s of clock advance).
    assert second - first == pytest.approx(1.0 + 2.0, abs=0.1)


def test_stealth_drift_resets_on_leave(sim):
    network, procs = build(sim)
    strategy = StealthDriftStrategy(rate=2.0)
    strategy.on_break_in(procs[1], RNG)
    strategy.on_leave(procs[1], RNG)
    # No skew state left; replying without break-in does nothing.
    strategy.on_message(procs[1], ping_message(0, 1), RNG)
    sim.run()
    assert procs[0].pongs == []
