"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.params import ProtocolParams
from repro.runner.builders import default_params
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=1234)


@pytest.fixture
def params() -> ProtocolParams:
    """The canonical laptop-scale parameterization (n=7, f=2)."""
    return default_params()


@pytest.fixture
def small_params() -> ProtocolParams:
    """Minimum-size network (n=4, f=1)."""
    return default_params(n=4, f=1)


def make_fast_params(n: int = 4, f: int = 1) -> ProtocolParams:
    """Parameters tuned for very short integration runs."""
    return default_params(n=n, f=f, delta=0.002, rho=1e-3, pi=1.0, target_k=8)
