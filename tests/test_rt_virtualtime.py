"""Unit tests for the virtual-time event loop."""

from __future__ import annotations

from repro.rt.virtualtime import VirtualTimeLoop


def test_time_starts_at_zero():
    loop = VirtualTimeLoop()
    assert loop.time() == 0.0


def test_callbacks_fire_in_time_order():
    loop = VirtualTimeLoop()
    order = []
    loop.call_at(0.3, lambda: order.append("c"))
    loop.call_at(0.1, lambda: order.append("a"))
    loop.call_at(0.2, lambda: order.append("b"))
    loop.run_until(1.0)
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    loop = VirtualTimeLoop()
    order = []
    for label in ("first", "second", "third"):
        loop.call_at(0.5, lambda label=label: order.append(label))
    loop.run_until(1.0)
    assert order == ["first", "second", "third"]


def test_run_until_sets_time_to_deadline():
    loop = VirtualTimeLoop()
    loop.call_at(0.25, lambda: None)
    loop.run_until(2.0)
    assert loop.time() == 2.0


def test_callback_sees_its_own_fire_time():
    loop = VirtualTimeLoop()
    seen = []
    loop.call_at(0.75, lambda: seen.append(loop.time()))
    loop.run_until(1.0)
    assert seen == [0.75]


def test_callbacks_can_reschedule():
    loop = VirtualTimeLoop()
    fired = []

    def tick():
        fired.append(loop.time())
        if len(fired) < 5:
            loop.call_later(0.1, tick)

    loop.call_later(0.1, tick)
    loop.run_until(1.0)
    assert len(fired) == 5
    assert fired[-1] == 0.5


def test_deadline_excludes_later_events():
    loop = VirtualTimeLoop()
    fired = []
    loop.call_at(0.5, lambda: fired.append("early"))
    loop.call_at(1.5, lambda: fired.append("late"))
    loop.run_until(1.0)
    assert fired == ["early"]
    loop.run_until(2.0)
    assert fired == ["early", "late"]


def test_cancelled_calls_do_not_run():
    loop = VirtualTimeLoop()
    fired = []
    handle = loop.call_at(0.5, lambda: fired.append(1))
    handle.cancel()
    assert handle.cancelled()
    executed = loop.run_until(1.0)
    assert fired == []
    assert executed == 0


def test_past_deadline_clamps_to_now():
    loop = VirtualTimeLoop()
    loop.run_until(1.0)
    fired = []
    loop.call_at(0.2, lambda: fired.append(loop.time()))
    loop.run_until(1.5)
    assert fired == [1.0]  # past-due schedules fire "now", never rewind


def test_run_until_idle_drains_everything():
    loop = VirtualTimeLoop()
    fired = []
    loop.call_at(3.0, lambda: fired.append(1))
    loop.call_at(7.0, lambda: fired.append(2))
    count = loop.run_until_idle()
    assert count == 2
    assert loop.time() == 7.0
    assert loop.pending == 0


def test_pending_counts_live_callbacks():
    loop = VirtualTimeLoop()
    keep = loop.call_at(1.0, lambda: None)
    drop = loop.call_at(2.0, lambda: None)
    drop.cancel()
    assert loop.pending == 1
    assert keep.when == 1.0
