"""Tests for the JSON result exporter."""

from __future__ import annotations

import json

from repro.metrics.export import result_to_dict, write_result
from repro.runner.builders import (
    benign_scenario,
    default_params,
    mobile_byzantine_scenario,
    warmup_for,
)
from repro.runner.experiment import run


def make_result():
    params = default_params(n=4, f=1)
    return run(mobile_byzantine_scenario(params, duration=6.0, seed=20))


def test_round_trips_through_json():
    result = make_result()
    payload = result_to_dict(result, warmup=warmup_for(result.params))
    encoded = json.dumps(payload)
    decoded = json.loads(encoded)
    assert decoded["params"]["n"] == 4
    assert decoded["verdict"]["all_ok"] is True
    assert decoded["counters"]["messages_delivered"] > 0
    assert len(decoded["corruptions"]) == len(result.corruptions)


def test_infinities_encoded_as_strings():
    result = make_result()
    payload = result_to_dict(result)
    # Force an infinity through the encoder path.
    from repro.metrics.export import _finite
    assert _finite(float("inf")) == "inf"
    assert _finite(float("-inf")) == "-inf"
    assert _finite(float("nan")) == "nan"
    json.dumps(payload)  # no ValueError from non-finite floats


def test_samples_opt_in():
    result = make_result()
    lean = result_to_dict(result)
    fat = result_to_dict(result, include_samples=True)
    assert "samples" not in lean
    assert len(fat["samples"]["times"]) == len(result.samples.times)
    assert set(fat["samples"]["clocks"]) == {"0", "1", "2", "3"}


def test_write_result(tmp_path):
    result = make_result()
    path = tmp_path / "run.json"
    write_result(result, path, warmup=1.0)
    decoded = json.loads(path.read_text())
    assert decoded["verdict"]["warmup"] == 1.0


def test_cli_json_flag(tmp_path, capsys):
    from repro.cli import main

    out_path = tmp_path / "cli.json"
    code = main(["run", "--scenario", "benign", "--duration", "2",
                 "--n", "4", "--f", "1", "--json", str(out_path)])
    assert code == 0
    decoded = json.loads(out_path.read_text())
    assert decoded["scenario"]["name"] == "benign"


def test_perf_counters_exported():
    result = run(benign_scenario(duration=3.0, seed=5))
    payload = result_to_dict(result)
    perf = payload["perf"]
    assert perf["events_processed"] == result.events_processed
    assert perf["events_pushed"] >= perf["events_processed"]
    assert 0.0 <= perf["cancelled_ratio"] <= 1.0
    assert perf["heap_high_water"] > 0
    # Wall-clock quantities stay out of the record: identical-seed runs
    # must serialize byte-identically.
    assert "run_wall_time" not in perf
    assert "events_per_second" not in perf
    json.dumps(payload)  # still JSON-safe


def test_obs_section_present_only_with_recorder(tmp_path):
    from repro.obs import FlightRecorder

    plain = run(benign_scenario(duration=3.0, seed=5))
    assert "obs" not in result_to_dict(plain)

    recorder = FlightRecorder()
    observed = run(benign_scenario(duration=3.0, seed=5), recorder=recorder)
    payload = result_to_dict(observed)
    obs = payload["obs"]
    assert obs["events"] == len(recorder.events)
    assert obs["spans"] == len(recorder.spans)
    assert obs["violations"] == []
    assert "syncs_completed" in obs["metrics"]["counters"]
    json.dumps(payload)
