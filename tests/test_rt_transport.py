"""Wire codec and transport tests for the rt path."""

from __future__ import annotations

import asyncio
import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.runtime.messages import AppPayload, Message, Ping, Pong
from repro.rt.transport import (
    LoopbackTransport,
    TransportError,
    UdpTransport,
    decode_datagram,
    decode_payload,
    encode_datagram,
    encode_payload,
    register_payload,
)
from repro.rt.virtualtime import VirtualTimeLoop


class Inbox:
    """Minimal MessageHandler: records deliveries."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def deliver(self, message):
        self.received.append(message)


class TestCodec:
    def test_ping_roundtrip(self):
        ping = Ping(nonce=42, round_no=7)
        assert decode_payload(encode_payload(ping)) == ping

    def test_pong_roundtrip(self):
        pong = Pong(nonce=9, clock_value=123.456789)
        assert decode_payload(encode_payload(pong)) == pong

    def test_app_payload_roundtrip(self):
        payload = AppPayload(kind="audit", body={"x": [1, 2, 3]})
        assert decode_payload(encode_payload(payload)) == payload

    def test_datagram_roundtrip_preserves_floats(self):
        sender, recipient, payload, sent_at = decode_datagram(
            encode_datagram(3, 5, Pong(nonce=1, clock_value=0.1 + 0.2), 1.75))
        assert (sender, recipient, sent_at) == (3, 5, 1.75)
        assert payload.clock_value == 0.1 + 0.2  # exact, not approximate

    def test_unregistered_payload_rejected(self):
        @dataclasses.dataclass(frozen=True)
        class Unknown:
            x: int

        with pytest.raises(TransportError):
            encode_payload(Unknown(x=1))

    def test_unknown_wire_key_rejected(self):
        with pytest.raises(TransportError):
            decode_payload({"k": "nope"})

    def test_malformed_datagram_rejected(self):
        with pytest.raises(TransportError):
            decode_datagram(b"not json at all")

    def test_register_payload_extends_codec(self):
        @dataclasses.dataclass(frozen=True)
        class Heartbeat:
            beat: int

        register_payload("test-heartbeat", Heartbeat)
        assert decode_payload(encode_payload(Heartbeat(beat=3))) == Heartbeat(beat=3)

    def test_register_conflicting_key_rejected(self):
        @dataclasses.dataclass(frozen=True)
        class Impostor:
            nonce: int

        with pytest.raises(ConfigurationError):
            register_payload("ping", Impostor)

    def test_missing_required_field_raises_transport_error(self):
        # A wire dict naming a known payload but missing one of its
        # required fields used to escape as a bare TypeError from the
        # dataclass constructor; corrupt input must stay TransportError
        # so the transport's malformed counter catches it.
        with pytest.raises(TransportError):
            decode_payload({"k": "pong", "nonce": 1})


class TestLoopback:
    def test_delivery_after_fixed_delay(self):
        loop = VirtualTimeLoop()
        hub = LoopbackTransport(loop, delay=0.25)
        a, b = Inbox(0), Inbox(1)
        hub.bind(0, a)
        hub.bind(1, b)
        hub.send(0, 1, Ping(nonce=1))
        loop.run_until(0.2)
        assert b.received == []
        loop.run_until(0.3)
        assert len(b.received) == 1
        message = b.received[0]
        assert message.sender == 0 and message.recipient == 1
        assert message.sent_at == 0.0
        assert message.delivered_at == 0.25

    def test_neighbors_excludes_self(self):
        loop = VirtualTimeLoop()
        hub = LoopbackTransport(loop, delay=0.01)
        for node in range(3):
            hub.bind(node, Inbox(node))
        assert sorted(hub.neighbors(1)) == [0, 2]

    def test_send_to_unbound_node_is_dropped(self):
        loop = VirtualTimeLoop()
        hub = LoopbackTransport(loop, delay=0.01)
        hub.bind(0, Inbox(0))
        hub.send(0, 99, Ping(nonce=1))
        loop.run_until(1.0)
        assert hub.messages_delivered == 0

    def test_fifo_per_link(self):
        loop = VirtualTimeLoop()
        hub = LoopbackTransport(loop, delay=0.1)
        receiver = Inbox(1)
        hub.bind(0, Inbox(0))
        hub.bind(1, receiver)
        for nonce in range(5):
            hub.send(0, 1, Ping(nonce=nonce))
        loop.run_until(1.0)
        assert [m.payload.nonce for m in receiver.received] == list(range(5))


class TestUdp:
    def run_pair(self, coro):
        return asyncio.run(coro)

    def test_roundtrip_over_real_sockets(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            epoch = loop.time()
            now = lambda: loop.time() - epoch
            a, b = UdpTransport(0, now), UdpTransport(1, now)
            addr_a = await a.start()
            addr_b = await b.start()
            peers = {0: addr_a, 1: addr_b}
            a.set_peers(peers)
            b.set_peers(peers)
            inbox = Inbox(1)
            b.bind(1, inbox)
            a.send(0, 1, Pong(nonce=5, clock_value=1.25))
            for _ in range(100):
                if inbox.received:
                    break
                await asyncio.sleep(0.01)
            a.close()
            b.close()
            return inbox.received

        received = self.run_pair(scenario())
        assert len(received) == 1
        message = received[0]
        assert message.payload == Pong(nonce=5, clock_value=1.25)
        assert message.sender == 0
        assert message.delivered_at >= message.sent_at >= 0.0

    def test_malformed_datagrams_counted_and_dropped(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            transport = UdpTransport(0, loop.time)
            await transport.start()
            transport.bind(0, Inbox(0))
            transport._on_datagram(b"garbage")
            dropped = transport.malformed_dropped
            transport.close()
            return dropped

        assert self.run_pair(scenario()) == 1

    def test_misrouted_datagram_counted_separately(self):
        # A well-formed datagram for another node is a routing problem,
        # not corruption: it must land in misrouted_dropped, leaving
        # malformed_dropped for genuinely broken input.
        async def scenario():
            loop = asyncio.get_running_loop()
            transport = UdpTransport(0, loop.time)
            await transport.start()
            transport.bind(0, Inbox(0))
            transport._on_datagram(
                encode_datagram(5, 7, Ping(nonce=1), 0.0))
            counters = (transport.misrouted_dropped,
                        transport.malformed_dropped)
            transport.close()
            return counters

        assert self.run_pair(scenario()) == (1, 0)

    def test_future_wire_version_counted_separately(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            transport = UdpTransport(0, loop.time)
            await transport.start()
            transport.bind(0, Inbox(0))
            datagram = bytearray(encode_datagram(1, 0, Ping(nonce=1), 0.0))
            datagram[1] = 9  # a wire version from the future
            transport._on_datagram(bytes(datagram))
            counters = (transport.version_dropped,
                        transport.malformed_dropped)
            transport.close()
            return counters

        assert self.run_pair(scenario()) == (1, 0)

    def test_send_as_other_node_rejected(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            transport = UdpTransport(0, loop.time)
            await transport.start()
            try:
                with pytest.raises(ConfigurationError):
                    transport.send(1, 0, Ping(nonce=1))
                with pytest.raises(ConfigurationError):
                    transport.bind(1, Inbox(1))
            finally:
                transport.close()

        self.run_pair(scenario())
