"""Tier-1 wiring for tools/check_layering.py.

The kernel layers (core, sim, clocks) must never import the
orchestration or telemetry layers (runner, obs) at runtime — Campaign
workers pickle kernel objects, and DESIGN.md section 7 forbids the
simulation from observing itself.  Running the checker as a test turns
an accidental upward import into a suite failure instead of a latent
pickling bug.
"""

from __future__ import annotations

import ast
import importlib.util
import pathlib
import subprocess
import sys

import repro

ROOT = pathlib.Path(repro.__file__).resolve().parents[2]
TOOL = ROOT / "tools" / "check_layering.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_layering", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_check_layering_tool_passes():
    result = subprocess.run([sys.executable, str(TOOL)],
                            capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "layering clean" in result.stdout


def test_collector_flags_runtime_upward_import():
    tool = _load_tool()
    source = (
        "from repro.obs import FlightRecorder\n"
        "import repro.runner.campaign\n"
    )
    collector = tool.ImportCollector("repro.core.sync")
    collector.visit(ast.parse(source))
    layers = {tool.layer_of(target) for _, target in collector.imports}
    assert layers == {"obs", "runner"}


def test_collector_skips_type_checking_blocks():
    tool = _load_tool()
    source = (
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.runner.scenario import Scenario\n"
        "from repro.net.message import Message\n"
    )
    collector = tool.ImportCollector("repro.sim.process")
    collector.visit(ast.parse(source))
    targets = [t for _, t in collector.imports]
    assert "repro.runner.scenario" not in targets
    assert "repro.net.message" in targets


def test_collector_resolves_relative_imports():
    tool = _load_tool()
    collector = tool.ImportCollector("repro.core.sync")
    collector.visit(ast.parse("from .params import ProtocolParams\n"))
    assert [t for _, t in collector.imports] == ["repro.core.params"]


def test_kernel_layers_have_no_upward_imports():
    tool = _load_tool()
    assert tool.check() == []


def test_runtime_seam_rules_enforced():
    """The runtime-seam refactor's contract: protocol layers must not
    import the concrete substrates, and the substrates must not import
    each other."""
    tool = _load_tool()
    for layer in ("core", "protocols", "runtime"):
        assert {"sim", "net"} <= tool.FORBIDDEN[layer], (
            f"{layer} must forbid the concrete substrates")
    assert "sim" in tool.FORBIDDEN["rt"]
    assert "rt" in tool.FORBIDDEN["sim"]


def test_collector_flags_substrate_import_from_protocol_layer():
    tool = _load_tool()
    source = (
        "from repro.sim.engine import Simulator\n"
        "from repro.net.network import Network\n"
        "from repro.runtime.process import Process\n"
    )
    collector = tool.ImportCollector("repro.protocols.averaging")
    collector.visit(ast.parse(source))
    flagged = {tool.layer_of(target) for _, target in collector.imports
               if tool.layer_of(target) in tool.FORBIDDEN["protocols"]}
    assert flagged == {"sim", "net"}


def test_runner_ranks_place_store_and_evaluation_between_core_and_cli():
    """The results-as-data contract: store sits above execution, the
    evaluation layer above the store, and the campaign executor on top
    — so records/store/evaluation are importable without the executor."""
    tool = _load_tool()
    ranks = tool.RUNNER_RANKS
    assert ranks["records"] < ranks["store"]
    assert ranks["scenario"] < ranks["store"]
    assert ranks["experiment"] < ranks["store"]
    assert ranks["vector"] < ranks["store"]
    assert ranks["store"] < ranks["evaluation"]
    assert ranks["evaluation"] < ranks["campaign"]
    assert ranks["stats"] < ranks["campaign"]


def test_runner_rank_resolution():
    tool = _load_tool()
    assert tool.runner_rank("repro.runner.store") == tool.RUNNER_RANKS["store"]
    assert tool.runner_rank("repro.runner") is None          # facade is exempt
    assert tool.runner_rank("repro.core.sync") is None
    assert tool.runner_rank("repro.runner.store.sub") == tool.RUNNER_RANKS["store"]


def test_cli_is_import_terminal():
    """Only __main__ (and the CLI itself) may import repro.cli."""
    tool = _load_tool()
    assert tool.CLI_MODULE == "repro.cli"
    assert tool.CLI_IMPORTERS_ALLOWED == {"repro.__main__", "repro.cli"}
