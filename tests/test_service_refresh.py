"""Tests for the live proactive-refresh layer."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.metrics.sampler import good_set
from repro.runner.builders import (
    benign_scenario,
    default_params,
    mobile_byzantine_scenario,
    warmup_for,
)
from repro.runner.experiment import run
from repro.service.refresh import RefreshingSyncProcess, make_refreshing


EPOCH_LEN = 0.5


def refresh_run(scenario_builder, duration=12.0, seed=40, n=4, f=1, **kwargs):
    params = default_params(n=n, f=f)
    return run(scenario_builder(params, duration=duration, seed=seed,
                                protocol=make_refreshing(EPOCH_LEN), **kwargs))


class TestConstruction:
    def test_epoch_len_must_exceed_skew_window(self, sim):
        from repro.clocks.hardware import FixedRateClock
        from repro.clocks.logical import LogicalClock
        from repro.net.links import FixedDelay
        from repro.net.network import Network
        from repro.net.topology import full_mesh

        params = default_params(n=4, f=1)
        network = Network(sim, full_mesh(4), FixedDelay(delta=params.delta))
        from repro.sim.runtime import SimRuntime
        with pytest.raises(ConfigurationError):
            RefreshingSyncProcess(
                SimRuntime(0, sim, network,
                           LogicalClock(FixedRateClock(rho=params.rho))),
                params, epoch_len=0.01)


class TestBenign:
    def test_rotations_happen_on_schedule(self):
        result = refresh_run(benign_scenario)
        for process in result.processes.values():
            expected = int(12.0 / EPOCH_LEN)
            assert abs(process.key_epoch - expected) <= 1
            assert len(process.rotations) >= expected - 1

    def test_rotation_epochs_strictly_increase(self):
        result = refresh_run(benign_scenario)
        for process in result.processes.values():
            epochs = [r.epoch for r in process.rotations]
            assert all(b > a for a, b in zip(epochs, epochs[1:]))

    def test_peers_track_each_other(self):
        result = refresh_run(benign_scenario)
        for node, process in result.processes.items():
            for peer in range(result.params.n):
                if peer != node:
                    assert process.share_compatible_with(peer)


class TestUnderByzantineStorm:
    @pytest.fixture(scope="class")
    def storm(self):
        params = default_params(n=7, f=2)
        return run(mobile_byzantine_scenario(
            params, duration=24.0, seed=41, protocol=make_refreshing(EPOCH_LEN)))

    def test_good_epochs_agree_within_one_throughout(self, storm):
        """The proactive-security property, live: at every rotation
        instant, all Definition 3 good processors' key epochs (derived
        from their sampled clocks) differ by at most 1."""
        params = storm.params
        warmup = warmup_for(params)
        checked = 0
        for i, tau in enumerate(storm.samples.times):
            if tau < warmup:
                continue
            good = good_set(storm.corruptions, tau, params.pi, params.n)
            if len(good) < 2:
                continue
            epochs = [int(storm.samples.clocks[node][i] // EPOCH_LEN)
                      for node in good]
            assert max(epochs) - min(epochs) <= 1, (tau, epochs)
            checked += 1
        assert checked > 100

    def test_recovered_nodes_rederive_epoch_without_detection(self, storm):
        """Every corrupted-and-released node's live key_epoch catches up
        (it is clock-derived, not stored authority)."""
        final_epochs = [p.key_epoch for p in storm.processes.values()]
        assert max(final_epochs) - min(final_epochs) <= 1

    def test_rotation_monotone_despite_scrambles(self, storm):
        for process in storm.processes.values():
            epochs = [r.epoch for r in process.rotations]
            assert all(b > a for a, b in zip(epochs, epochs[1:]))

    def test_shares_stay_combinable(self, storm):
        """At run end, every pair of good processors can combine shares
        (epoch skew <= 1) — the threshold never breaks."""
        params = storm.params
        tau = storm.samples.times[-1]
        good = good_set(storm.corruptions, tau, params.pi, params.n)
        for a in good:
            for b in good:
                if a != b:
                    pa = storm.processes[a]
                    assert abs(pa.key_epoch - storm.processes[b].key_epoch) <= 1
