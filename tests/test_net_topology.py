"""Unit tests for topologies, including the Section 5 counterexample."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.net.topology import Topology, from_edges, full_mesh, ring, two_cliques


class TestTopology:
    def test_add_and_query_edge(self):
        topo = Topology(3)
        topo.add_edge(0, 1)
        assert topo.has_edge(0, 1)
        assert topo.has_edge(1, 0)
        assert not topo.has_edge(0, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Topology(3).add_edge(1, 1)

    def test_out_of_range_node_rejected(self):
        topo = Topology(3)
        with pytest.raises(TopologyError):
            topo.add_edge(0, 3)
        with pytest.raises(TopologyError):
            topo.has_edge(-1, 0)

    def test_remove_edge(self):
        topo = Topology(3)
        topo.add_edge(0, 1)
        topo.remove_edge(0, 1)
        assert not topo.has_edge(0, 1)
        topo.remove_edge(0, 1)  # no-op, no error

    def test_neighbors_sorted(self):
        topo = Topology(4)
        topo.add_edge(2, 3)
        topo.add_edge(2, 0)
        topo.add_edge(2, 1)
        assert topo.neighbors(2) == [0, 1, 3]

    def test_degree_and_edge_count(self):
        topo = Topology(4)
        topo.add_edge(0, 1)
        topo.add_edge(0, 2)
        assert topo.degree(0) == 2
        assert topo.degree(3) == 0
        assert topo.edge_count() == 2

    def test_zero_nodes_rejected(self):
        with pytest.raises(TopologyError):
            Topology(0)

    def test_connectivity(self):
        topo = Topology(4)
        topo.add_edge(0, 1)
        topo.add_edge(2, 3)
        assert not topo.is_connected()
        topo.add_edge(1, 2)
        assert topo.is_connected()


class TestGenerators:
    def test_full_mesh_has_all_edges(self):
        topo = full_mesh(5)
        assert topo.edge_count() == 10
        assert all(topo.degree(u) == 4 for u in range(5))
        assert topo.is_connected()

    def test_ring_structure(self):
        topo = ring(5)
        assert topo.edge_count() == 5
        assert all(topo.degree(u) == 2 for u in range(5))

    def test_from_edges(self):
        topo = from_edges(3, [(0, 1), (1, 2)])
        assert topo.has_edge(0, 1)
        assert topo.has_edge(1, 2)
        assert not topo.has_edge(0, 2)

    def test_two_cliques_size_and_structure(self):
        f = 2
        topo = two_cliques(f)
        size = 3 * f + 1
        assert topo.n == 2 * size
        # Within-clique edges are complete.
        for u in range(size):
            for v in range(u + 1, size):
                assert topo.has_edge(u, v)
        # Matching edges connect clique positions.
        for i in range(size):
            assert topo.has_edge(i, size + i)
        # No other cross edges.
        assert not topo.has_edge(0, size + 1)

    def test_two_cliques_is_3f_plus_1_connected_by_degree(self):
        """Each node's degree is (3f) within-clique + 1 matching, giving
        min degree 3f+1 — consistent with the paper's claim that the
        graph is (3f+1)-connected."""
        f = 2
        topo = two_cliques(f)
        assert all(topo.degree(u) == 3 * f + 1 for u in range(topo.n))

    def test_two_cliques_requires_positive_f(self):
        with pytest.raises(TopologyError):
            two_cliques(0)

    def test_two_cliques_connectivity_witness(self):
        """Removing the 3f+1 matching endpoints in one clique still
        leaves the survivors of that clique connected (clique edges),
        matching (3f+1)-connectivity rather than less."""
        topo = two_cliques(1)
        assert topo.is_connected()


class TestRandomConnected:
    def test_respects_min_degree_and_connectivity(self):
        import random
        from repro.net.topology import random_connected

        topo = random_connected(12, p=0.4, rng=random.Random(1), min_degree=3)
        assert topo.is_connected()
        assert all(topo.degree(u) >= 3 for u in range(12))

    def test_deterministic_per_rng(self):
        import random
        from repro.net.topology import random_connected

        a = random_connected(8, 0.5, random.Random(2), min_degree=2)
        b = random_connected(8, 0.5, random.Random(2), min_degree=2)
        assert all(a.neighbors(u) == b.neighbors(u) for u in range(8))

    def test_impossible_constraints_raise(self):
        import random
        from repro.net.topology import random_connected

        with pytest.raises(TopologyError):
            random_connected(10, p=0.01, rng=random.Random(3), min_degree=5,
                             max_tries=5)
