"""Unit tests for the process abstraction: timers, seize/release."""

from __future__ import annotations

import pytest

from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.net.links import FixedDelay
from repro.net.network import Network
from repro.net.topology import full_mesh
from repro.sim.runtime import SimRuntime
from repro.runtime.process import Process


class TimerProcess(Process):
    def __init__(self, node_id, sim, network, rate=1.0):
        clock = LogicalClock(FixedRateClock(rho=0.5, rate=rate))
        super().__init__(SimRuntime(node_id, sim, network, clock))
        self.fired = []
        self.started = 0
        self.recovered = 0

    def start(self):
        self.started += 1

    def on_recover(self):
        self.recovered += 1
        super().on_recover()

    def on_message(self, message):
        self.fired.append(("msg", message.payload))


def build(sim, n=2, rate=1.0):
    network = Network(sim, full_mesh(n), FixedDelay(delta=0.01, value=0.005))
    procs = [TimerProcess(i, sim, network, rate=rate) for i in range(n)]
    for p in procs:
        network.bind(p)
    return network, procs


def test_local_timer_fires_at_converted_real_time(sim):
    _, procs = build(sim, rate=1.25)
    proc = procs[0]
    proc.set_local_timer(5.0, lambda: proc.fired.append(sim.now))
    sim.run()
    # 5 local units at rate 1.25 elapse in 4 real seconds.
    assert proc.fired == [pytest.approx(4.0)]


def test_local_timer_unaffected_by_adjustment(sim):
    """adj changes the clock reading but not elapsed local time, so a
    pending timer must not move (Definition 1)."""
    _, procs = build(sim)
    proc = procs[0]
    proc.set_local_timer(2.0, lambda: proc.fired.append(sim.now))
    sim.schedule(1.0, lambda: proc.clock.adjust(1.0, 100.0))
    sim.run()
    assert proc.fired == [pytest.approx(2.0)]


def test_cancel_all_timers(sim):
    _, procs = build(sim)
    proc = procs[0]
    proc.set_local_timer(1.0, lambda: proc.fired.append("a"))
    proc.set_local_timer(2.0, lambda: proc.fired.append("b"))
    proc.cancel_all_timers()
    sim.run()
    assert proc.fired == []


def test_local_now_reads_logical_clock(sim):
    _, procs = build(sim, rate=1.25)
    proc = procs[0]
    proc.clock.adjust(0.0, 3.0)
    sim.schedule(4.0, lambda: proc.fired.append(proc.local_now()))
    sim.run()
    assert proc.fired == [pytest.approx(4.0 * 1.25 + 3.0)]


class Controller:
    """Fake adversary controller capturing routed messages."""

    def __init__(self):
        self.seen = []

    def on_message(self, process, message):
        self.seen.append(message.payload)


def test_seize_routes_messages_to_controller(sim):
    network, procs = build(sim)
    controller = Controller()
    procs[1].seize(controller)
    network.send(0, 1, "intercepted")
    sim.run()
    assert controller.seen == ["intercepted"]
    assert procs[1].fired == []


def test_seize_cancels_timers_and_suppresses_pending(sim):
    _, procs = build(sim)
    proc = procs[0]
    proc.set_local_timer(2.0, lambda: proc.fired.append("should-not-fire"))
    sim.schedule(1.0, lambda: proc.seize(Controller()))
    sim.run()
    assert proc.fired == []


def test_timer_armed_before_seize_suppressed_even_if_uncancelled(sim):
    """The timer shim double-checks control at fire time."""
    _, procs = build(sim)
    proc = procs[0]

    def fire():
        proc.fired.append("fired")

    proc.set_local_timer(2.0, fire)
    # Seize without going through cancel (directly flip the flag) to
    # exercise the shim's runtime check.
    sim.schedule(1.0, lambda: setattr(proc, "controlled", True))
    sim.run()
    assert proc.fired == []


def test_release_triggers_recovery_and_restart(sim):
    network, procs = build(sim)
    proc = procs[1]
    proc.seize(Controller())
    proc.release()
    assert proc.recovered == 1
    assert proc.started == 1
    assert not proc.controlled


def test_release_preserves_clock_adjustment(sim):
    """Recovery must NOT reset adj — re-synchronizing the clock value is
    the protocol's job, per the paper."""
    _, procs = build(sim)
    proc = procs[1]
    proc.seize(Controller())
    proc.clock.hijack_set(0.0, 999.0)
    proc.release()
    assert proc.clock.adj == 999.0


def test_deliver_goes_to_protocol_when_not_controlled(sim):
    network, procs = build(sim)
    network.send(0, 1, "normal")
    sim.run()
    assert procs[1].fired == [("msg", "normal")]
