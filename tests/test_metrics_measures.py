"""Unit tests for deviation / accuracy / recovery measures."""

from __future__ import annotations

import math

import pytest

from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.errors import MeasurementError
from repro.metrics.measures import (
    accuracy_report,
    deviation_series,
    good_stretches,
    max_deviation,
    recovery_report,
)
from repro.metrics.sampler import ClockSamples, CorruptionInterval


def grid_samples(times, per_node_values):
    return ClockSamples(times=list(times),
                        clocks={n: list(v) for n, v in per_node_values.items()})


class TestDeviation:
    def test_constant_gap_measured(self):
        samples = grid_samples([0.0, 1.0], {0: [0.0, 1.0], 1: [0.3, 1.3], 2: [0.1, 1.1]})
        series = deviation_series(samples, [], pi=1.0, n=3)
        assert series == [(0.0, pytest.approx(0.3)), (1.0, pytest.approx(0.3))]

    def test_faulty_node_excluded(self):
        samples = grid_samples([0.0, 1.0], {0: [0.0, 1.0], 1: [99.0, 99.0], 2: [0.1, 1.1]})
        corruption = [CorruptionInterval(1, 0.0, 5.0)]
        assert max_deviation(samples, corruption, pi=1.0, n=3) == pytest.approx(0.1)

    def test_warmup_skips_early_samples(self):
        samples = grid_samples([0.0, 1.0], {0: [5.0, 1.0], 1: [0.0, 1.0]})
        assert max_deviation(samples, [], pi=1.0, n=2, warmup=0.5) == pytest.approx(0.0)

    def test_small_good_set_skipped(self):
        samples = grid_samples([0.0], {0: [0.0], 1: [1.0]})
        corr = [CorruptionInterval(0, 0.0, 1.0)]
        assert deviation_series(samples, corr, pi=1.0, n=2) == []

    def test_empty_after_warmup_raises(self):
        samples = grid_samples([0.0], {0: [0.0], 1: [0.0]})
        with pytest.raises(MeasurementError):
            max_deviation(samples, [], pi=1.0, n=2, warmup=5.0)


class TestGoodStretches:
    def test_no_faults_whole_run(self):
        stretches = good_stretches([], pi=1.0, n=2, horizon=10.0)
        assert stretches == [(0, 0.0, 10.0), (1, 0.0, 10.0)]

    def test_stretch_starts_pi_after_release(self):
        corr = [CorruptionInterval(0, 2.0, 3.0)]
        stretches = good_stretches(corr, pi=1.0, n=1, horizon=10.0)
        assert stretches == [(0, 0.0, 2.0), (0, 4.0, 10.0)]

    def test_short_gap_yields_no_stretch(self):
        corr = [CorruptionInterval(0, 2.0, 3.0), CorruptionInterval(0, 3.5, 4.0)]
        stretches = good_stretches(corr, pi=1.0, n=1, horizon=10.0)
        # The [3.0, 3.5] gap is shorter than PI: no stretch inside it.
        assert (0, 0.0, 2.0) in stretches
        assert (0, 5.0, 10.0) in stretches
        assert len(stretches) == 2


class TestAccuracy:
    def test_perfect_clock_zero_drift(self):
        times = [float(i) for i in range(6)]
        samples = grid_samples(times, {0: times})
        clocks = {0: LogicalClock(FixedRateClock(rho=0.0))}
        report = accuracy_report(samples, [], clocks, pi=1.0, n=1)
        assert report.implied_drift == pytest.approx(0.0)
        assert report.max_discontinuity == 0.0

    def test_drifting_clock_measured(self):
        times = [float(i) for i in range(6)]
        samples = grid_samples(times, {0: [t * 1.01 for t in times]})
        clocks = {0: LogicalClock(FixedRateClock(rho=0.02, rate=1.01))}
        report = accuracy_report(samples, [], clocks, pi=1.0, n=1)
        assert report.implied_drift == pytest.approx(0.01, rel=0.05)

    def test_good_adjustment_counts_as_discontinuity(self):
        times = [0.0, 1.0, 2.0]
        samples = grid_samples(times, {0: [0.0, 1.0, 2.0]})
        clock = LogicalClock(FixedRateClock(rho=0.0))
        clock.adjust(1.0, 0.25)
        report = accuracy_report(samples, [], {0: clock}, pi=1.0, n=1)
        assert report.max_discontinuity == pytest.approx(0.25)

    def test_adjustment_during_recovery_window_excluded(self):
        """Corrections within PI of a corruption are outside the
        Definition 3(ii) guarantee and must not count."""
        times = [0.0, 1.0, 2.0, 3.0, 4.0]
        samples = grid_samples(times, {0: times})
        clock = LogicalClock(FixedRateClock(rho=0.0))
        clock.adjust(2.1, 500.0)  # huge recovery jump just after release
        corr = [CorruptionInterval(0, 1.5, 2.0)]
        report = accuracy_report(samples, corr, {0: clock}, pi=1.0, n=1)
        assert report.max_discontinuity == 0.0

    def test_no_samples_rejected(self):
        with pytest.raises(MeasurementError):
            accuracy_report(ClockSamples(), [], {}, pi=1.0, n=0)


class TestRecovery:
    def make_run(self, recovered_values):
        """Node 1 is corrupted during [1, 2]; node 0 and 2 are good and
        track real time. recovered_values gives node 1's clock at the
        sample times after release."""
        times = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        good = times
        samples = grid_samples(times, {
            0: good,
            1: [0.0, 0.0] + recovered_values,
            2: good,
        })
        corr = [CorruptionInterval(1, 1.0, 2.0)]
        return samples, corr

    def test_immediate_recovery(self):
        samples, corr = self.make_run([2.0, 3.0, 4.0, 5.0])
        report = recovery_report(samples, corr, pi=1.0, n=3, tolerance=0.1, settle=1.0)
        assert len(report.events) == 1
        event = report.events[0]
        assert event.rejoined_at == pytest.approx(2.0)
        assert event.recovery_time == pytest.approx(0.0)
        assert report.all_recovered

    def test_delayed_recovery(self):
        samples, corr = self.make_run([50.0, 50.0, 4.0, 5.0])
        report = recovery_report(samples, corr, pi=1.0, n=3, tolerance=0.1, settle=1.0)
        assert report.events[0].rejoined_at == pytest.approx(4.0)
        assert report.events[0].recovery_time == pytest.approx(2.0)
        assert report.events[0].initial_distance == pytest.approx(48.0)

    def test_never_recovers(self):
        samples, corr = self.make_run([50.0, 50.0, 50.0, 50.0])
        report = recovery_report(samples, corr, pi=1.0, n=3, tolerance=0.1, settle=1.0)
        assert not report.all_recovered
        assert math.isinf(report.max_recovery_time)

    def test_unstable_rejoin_not_counted(self):
        """Dipping into the good range then leaving again does not count
        as recovered at the dip."""
        samples, corr = self.make_run([3.0, 50.0, 4.0, 5.0])
        report = recovery_report(samples, corr, pi=1.0, n=3, tolerance=0.1, settle=1.0)
        assert report.events[0].rejoined_at == pytest.approx(4.0)

    def test_unreleased_corruption_not_measured(self):
        times = [0.0, 1.0, 2.0]
        samples = grid_samples(times, {0: times, 1: times})
        corr = [CorruptionInterval(1, 1.0, math.inf)]
        report = recovery_report(samples, corr, pi=1.0, n=2, tolerance=0.1)
        assert report.events == []


class TestPercentiles:
    def test_percentiles_of_known_series(self):
        from repro.metrics.measures import deviation_percentiles
        times = [float(i) for i in range(10)]
        # node 1 is `i * 0.01` ahead at sample i: deviations 0.00..0.09.
        samples = grid_samples(times, {
            0: times,
            1: [t + 0.01 * i for i, t in enumerate(times)],
        })
        result = deviation_percentiles(samples, [], pi=1.0, n=2,
                                       percentiles=(50.0, 100.0))
        assert result[100.0] == pytest.approx(0.09)
        assert result[50.0] == pytest.approx(0.04)

    def test_bad_percentile_rejected(self):
        from repro.metrics.measures import deviation_percentiles
        samples = grid_samples([0.0], {0: [0.0], 1: [0.0]})
        with pytest.raises(MeasurementError):
            deviation_percentiles(samples, [], pi=1.0, n=2, percentiles=(0.0,))

    def test_max_percentile_equals_max_deviation(self):
        from repro.metrics.measures import deviation_percentiles
        from repro.runner.builders import benign_scenario, default_params
        from repro.runner.experiment import run
        result = run(benign_scenario(default_params(n=4, f=1), duration=3.0,
                                     seed=2))
        pct = result.deviation_percentiles(warmup=1.0)
        assert pct[100.0] == pytest.approx(result.max_deviation(warmup=1.0))
        assert pct[50.0] <= pct[95.0] <= pct[100.0]
