"""Integration tests for the flight recorder and stream determinism."""

from __future__ import annotations

import json

import pytest

from repro.obs import FlightRecorder, ObsConfig, summarize_events
from repro.obs.bus import read_events_jsonl
from repro.runner.builders import benign_scenario, default_params, \
    mobile_byzantine_scenario
from repro.runner.experiment import run


def record_run(scenario, config=None):
    recorder = FlightRecorder(config)
    result = run(scenario, recorder=recorder)
    return recorder, result


class TestRecorderIntegration:
    def test_full_stack_on_adversarial_run(self):
        recorder, result = record_run(
            mobile_byzantine_scenario(duration=10.0, seed=1))
        kinds = {event.kind for event in recorder.events}
        assert {"run.start", "sync.begin", "est.ping", "est.pong",
                "sync.complete", "adv.break_in", "adv.release",
                "metrics.snapshot", "engine.run_end", "run.end"} <= kinds
        assert recorder.spans
        assert recorder.metrics.counter("syncs_completed", 0).value > 0
        assert result.obs is recorder

    def test_stream_brackets_run(self):
        recorder, _ = record_run(benign_scenario(duration=5.0, seed=2))
        assert recorder.events[0].kind == "run.start"
        assert recorder.events[-1].kind == "run.end"
        params = recorder.events[0].data
        assert params["n"] == 7 and "max_deviation_bound" in params

    def test_event_times_are_monotone(self):
        recorder, _ = record_run(benign_scenario(duration=5.0, seed=2))
        times = [event.time for event in recorder.events]
        assert times == sorted(times)
        seqs = [event.seq for event in recorder.events]
        assert seqs == list(range(len(seqs)))

    def test_recorder_does_not_perturb_the_run(self):
        """Observability is write-only: the simulation schedule, samples,
        and verdict are identical with and without a recorder."""
        scenario = mobile_byzantine_scenario(duration=10.0, seed=5)
        _, observed = record_run(mobile_byzantine_scenario(duration=10.0,
                                                           seed=5))
        plain = run(scenario)
        assert observed.events_processed == plain.events_processed
        assert observed.messages_delivered == plain.messages_delivered
        assert observed.samples.times == plain.samples.times
        assert observed.samples.clocks == plain.samples.clocks
        assert [r.correction for r in observed.trace.syncs] \
            == [r.correction for r in plain.trace.syncs]

    def test_identical_seeds_byte_identical_streams(self, tmp_path):
        first, _ = record_run(mobile_byzantine_scenario(duration=10.0, seed=7))
        second, _ = record_run(mobile_byzantine_scenario(duration=10.0, seed=7))
        assert first.events_jsonl() == second.events_jsonl()
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        first.write_jsonl(path_a)
        second.write_jsonl(path_b)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_different_seeds_differ(self):
        first, _ = record_run(mobile_byzantine_scenario(duration=10.0, seed=7))
        second, _ = record_run(mobile_byzantine_scenario(duration=10.0, seed=8))
        assert first.events_jsonl() != second.events_jsonl()

    def test_finalize_is_idempotent(self):
        recorder, result = record_run(benign_scenario(duration=5.0, seed=2))
        before = len(recorder.events)
        recorder.finalize(result.processes[0].runtime.sim)
        assert len(recorder.events) == before


class TestObsConfig:
    def test_messages_off_by_default(self):
        recorder, _ = record_run(benign_scenario(duration=5.0, seed=2))
        assert not any(e.kind.startswith("net.") for e in recorder.events)

    def test_messages_opt_in(self):
        recorder, result = record_run(
            benign_scenario(duration=5.0, seed=2),
            ObsConfig(messages=True))
        delivered = [e for e in recorder.events if e.kind == "net.deliver"]
        assert len(delivered) == result.messages_delivered

    def test_subsystems_disable_cleanly(self):
        recorder, _ = record_run(
            benign_scenario(duration=5.0, seed=2),
            ObsConfig(spans=False, metrics=False, probes=False))
        assert recorder.spans == []
        assert recorder.violations == []
        assert recorder.metrics.snapshot()["counters"] == {}
        # The raw event stream still flows.
        assert any(e.kind == "sync.complete" for e in recorder.events)

    def test_monitors_opt_in_publish_alerts(self):
        import dataclasses

        from repro.adversary.mobile import single_burst_plan
        from repro.adversary.strategies import LiarStrategy

        params = default_params(n=4, f=1, pi=2.0)

        def plan(scenario, clocks):
            return single_burst_plan(
                nodes=[2, 3], start=5.0, dwell=8.0,
                strategy_factory=lambda node, ep: LiarStrategy(offset=500.0))

        scenario = benign_scenario(params, duration=20.0, seed=3)
        scenario = dataclasses.replace(scenario, plan_builder=plan,
                                       enforce_f_limit=False,
                                       name="monitored-break-in")
        recorder, _ = record_run(scenario, ObsConfig(monitors=True))
        alerts = [e for e in recorder.events if e.kind == "monitor.alert"]
        assert alerts  # the steered corrections are far over the bound
        assert recorder.metrics.counter("monitor_alerts").value == len(alerts)


class TestRoundtrip:
    def test_written_stream_summarizes(self, tmp_path):
        recorder, _ = record_run(mobile_byzantine_scenario(duration=10.0,
                                                           seed=1))
        path = tmp_path / "run.jsonl"
        recorder.write_jsonl(path)
        events = read_events_jsonl(path)
        assert events == recorder.events
        from repro.obs.summary import kind_counts

        summary = summarize_events(events)
        assert summary.violations == []
        assert kind_counts(events)["sync.complete"] \
            == sum(1 for e in recorder.events if e.kind == "sync.complete")

    def test_chrome_trace_export(self, tmp_path):
        recorder, _ = record_run(benign_scenario(duration=5.0, seed=2))
        path = tmp_path / "trace.json"
        recorder.write_chrome_trace(path)
        document = json.loads(path.read_text())
        assert document["traceEvents"]
        tids = {event["tid"] for event in document["traceEvents"]}
        assert tids == set(range(7))
