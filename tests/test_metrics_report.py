"""Unit tests for the text-table reporter."""

from __future__ import annotations

import math

from repro.metrics.report import check_mark, format_value, ratio, table


def test_format_float_compact():
    assert format_value(0.123456789) == "0.123457"
    assert format_value(1.0) == "1"


def test_format_infinities_and_nan():
    assert format_value(math.inf) == "inf"
    assert format_value(-math.inf) == "-inf"
    assert format_value(math.nan) == "nan"


def test_format_bool_and_str():
    assert format_value(True) == "yes"
    assert format_value(False) == "no"
    assert format_value("abc") == "abc"
    assert format_value(42) == "42"


def test_table_alignment():
    out = table(["name", "value"], [["a", 1], ["long-name", 2.5]])
    lines = out.splitlines()
    assert len(lines) == 4
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all rows equal width


def test_table_title():
    out = table(["x"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"
    assert out.splitlines()[1] == "========"


def test_table_precision():
    out = table(["v"], [[0.123456789]], precision=3)
    assert "0.123" in out and "0.123457" not in out


def test_ratio():
    assert ratio(1.0, 2.0) == 0.5
    assert ratio(1.0, 0.0) == math.inf
    assert ratio(0.0, 0.0) == 0.0


def test_check_mark():
    assert check_mark(True) == "OK"
    assert check_mark(False) == "VIOLATED"
