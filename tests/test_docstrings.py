"""Quality gate: every public item in the package is documented.

Walks every module under ``repro`` and asserts that modules, public
classes, public functions, and public methods carry docstrings — the
deliverable "doc comments on every public item", enforced.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro


def iter_modules():
    package_dir = pathlib.Path(repro.__file__).parent
    yield repro
    for info in pkgutil.walk_packages([str(package_dir)], prefix="repro."):
        if info.name == "repro.__main__":
            continue  # importing it executes the CLI
        yield importlib.import_module(info.name)


MODULES = list(iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__, f"module {module.__name__} lacks a docstring"


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their definition
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in public_members(module):
        if not inspect.getdoc(obj):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not inspect.getdoc(member):
                    undocumented.append(
                        f"{module.__name__}.{name}.{member_name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_api_reference_is_fresh():
    """docs/api.md must match the current docstrings (regenerate with
    tools/gen_api_docs.py when public API changes)."""
    import subprocess
    import sys

    root = pathlib.Path(repro.__file__).resolve().parents[2]
    result = subprocess.run(
        [sys.executable, str(root / "tools" / "gen_api_docs.py"), "--check"],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
