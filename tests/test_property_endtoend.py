"""End-to-end property test: Theorem 5 over a fuzzed model space.

The heavyweight hypothesis suite: random (but model-respecting)
parameterizations, clock populations, delay models, and f-limited
corruption plans — the deviation guarantee must hold in every one.
Durations are kept short and example counts modest so the suite stays
in CI budget; nightly runs can crank ``max_examples``.
"""

from __future__ import annotations

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.mobile import rotating_plan
from repro.adversary.strategies import (
    LiarStrategy,
    NoisyStrategy,
    RandomClockStrategy,
    SilentStrategy,
    TwoFacedStrategy,
)
from repro.net.links import AsymmetricDelay, FixedDelay, JitteredDelay, UniformDelay
from repro.runner.builders import benign_scenario, default_params, warmup_for
from repro.runner.experiment import run
from repro.runner.scenario import extremal_clocks, perfect_clocks, wander_clocks


STRATEGY_FACTORIES = [
    lambda params: (lambda n, e: SilentStrategy()),
    lambda params: (lambda n, e: LiarStrategy(offset=50.0 * params.way_off)),
    lambda params: (lambda n, e: NoisyStrategy(spread=20.0 * params.way_off)),
    lambda params: (lambda n, e: TwoFacedStrategy(magnitude=10.0 * params.way_off)),
    lambda params: (lambda n, e: RandomClockStrategy(spread=5.0 * params.way_off)),
]

DELAY_FACTORIES = [
    lambda delta: FixedDelay(delta),
    lambda delta: UniformDelay(delta),
    lambda delta: AsymmetricDelay(delta),
    lambda delta: JitteredDelay(delta),
]

CLOCK_FACTORIES = [wander_clocks, extremal_clocks, perfect_clocks]


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    f=st.integers(1, 2),
    extra_nodes=st.integers(0, 2),
    delta_exp=st.integers(-3, -2),          # delta in [1e-3, 1e-2]
    rho_exp=st.integers(-4, -3),            # rho in [1e-4, 1e-3]
    seed=st.integers(0, 10_000),
    strategy_index=st.integers(0, len(STRATEGY_FACTORIES) - 1),
    delay_index=st.integers(0, len(DELAY_FACTORIES) - 1),
    clock_index=st.integers(0, len(CLOCK_FACTORIES) - 1),
)
def test_theorem5_deviation_holds_over_model_space(
        f, extra_nodes, delta_exp, rho_exp, seed, strategy_index,
        delay_index, clock_index):
    n = 3 * f + 1 + extra_nodes
    delta = 10.0 ** delta_exp
    rho = 10.0 ** rho_exp
    params = default_params(n=n, f=f, delta=delta, rho=rho, pi=2.0)

    strategy_factory = STRATEGY_FACTORIES[strategy_index](params)

    def plan(scenario, clocks):
        return rotating_plan(
            n=params.n, f=params.f, pi=params.pi, duration=scenario.duration,
            strategy_factory=strategy_factory,
            first_start=2.0 * params.t_interval)

    scenario = benign_scenario(
        params, duration=8.0, seed=seed,
        delay_model=DELAY_FACTORIES[delay_index](delta),
        clock_factory=CLOCK_FACTORIES[clock_index],
    )
    scenario = dataclasses.replace(scenario, plan_builder=plan)
    result = run(scenario)

    bound = params.bounds().max_deviation
    deviation = result.max_deviation(warmup_for(params))
    assert deviation <= bound, (
        f"deviation {deviation} > bound {bound} for n={n}, f={f}, "
        f"delta={delta}, rho={rho}, seed={seed}, "
        f"strategy={strategy_index}, delay={delay_index}, "
        f"clocks={clock_index}")
