"""Integration tests: Theorem 5 guarantees hold end-to-end.

Each test runs a full simulation (clocks, network, protocol, adversary)
and checks the measured quantities against the Theorem 5 bounds.  These
are the paper's headline claims.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import envelope_trajectory, verify_bias_formulation
from repro.net.links import AsymmetricDelay, JitteredDelay
from repro.runner.builders import (
    benign_scenario,
    default_params,
    mobile_byzantine_scenario,
    split_world_scenario,
    warmup_for,
)
from repro.runner.experiment import run
from repro.runner.scenario import extremal_clocks, perfect_clocks


def fast_params(n=4, f=1):
    return default_params(n=n, f=f)


class TestSynchronization:
    """Theorem 5(i): max deviation of good processors <= bound."""

    def test_benign_wander(self):
        params = fast_params()
        result = run(benign_scenario(params, duration=6.0, seed=1))
        assert result.max_deviation(warmup_for(params)) <= params.bounds().max_deviation

    def test_benign_extremal_drift(self):
        """Worst-case clocks eq. (2) allows, sustained forever."""
        params = fast_params()
        result = run(benign_scenario(params, duration=6.0, seed=1,
                                     clock_factory=extremal_clocks))
        assert result.max_deviation(warmup_for(params)) <= params.bounds().max_deviation

    def test_mobile_byzantine_n7_f2(self):
        params = default_params(n=7, f=2)
        result = run(mobile_byzantine_scenario(params, duration=15.0, seed=2))
        assert result.max_deviation(warmup_for(params)) <= params.bounds().max_deviation

    def test_mobile_byzantine_minimum_network(self):
        params = fast_params()  # n = 4 = 3f + 1 exactly
        result = run(mobile_byzantine_scenario(params, duration=15.0, seed=3))
        assert result.max_deviation(warmup_for(params)) <= params.bounds().max_deviation

    def test_split_world_attack_bounded(self):
        """Even an omniscient spreading adversary stays within the bound."""
        params = fast_params()
        result = run(split_world_scenario(params, duration=12.0, seed=4))
        assert result.max_deviation(warmup_for(params)) <= params.bounds().max_deviation

    def test_asymmetric_delays_bounded(self):
        """Maximally biased (but bounded) delays: estimates are skewed
        by delta/2 each, which the epsilon term absorbs."""
        params = fast_params()
        result = run(benign_scenario(params, duration=6.0, seed=5,
                                     delay_model=AsymmetricDelay(params.delta)))
        assert result.max_deviation(warmup_for(params)) <= params.bounds().max_deviation

    def test_jittered_delays_bounded(self):
        params = fast_params()
        result = run(benign_scenario(params, duration=6.0, seed=6,
                                     delay_model=JitteredDelay(params.delta)))
        assert result.max_deviation(warmup_for(params)) <= params.bounds().max_deviation


class TestAccuracy:
    """Theorem 5(ii): logical drift and discontinuity bounds."""

    def test_benign_accuracy(self):
        params = fast_params()
        result = run(benign_scenario(params, duration=8.0, seed=1))
        verdict = result.verdict(warmup_for(params))
        assert verdict.drift_ok and verdict.discontinuity_ok

    def test_mobile_byzantine_accuracy(self):
        params = default_params(n=7, f=2)
        result = run(mobile_byzantine_scenario(params, duration=15.0, seed=2))
        verdict = result.verdict(warmup_for(params))
        assert verdict.drift_ok, (verdict.measured_drift, verdict.bounds.logical_drift)
        assert verdict.discontinuity_ok

    def test_logical_drift_close_to_hardware_drift(self):
        """The Section 4.1 remark: with K reasonably large, the logical
        drift bound is rho plus a tiny additive term."""
        params = default_params(n=4, f=1, pi=8.0, target_k=30)
        bounds = params.bounds()
        assert bounds.logical_drift <= params.rho * 1.01


class TestFullVerdict:
    def test_all_guarantees_simultaneously(self):
        params = default_params(n=7, f=2)
        for seed in (1, 2, 3):
            result = run(mobile_byzantine_scenario(params, duration=15.0, seed=seed))
            verdict = result.verdict(warmup_for(params))
            assert verdict.all_ok, (seed, verdict)

    def test_perfect_clocks_nearly_exact(self):
        """With rho = 0 analytically (perfect rates), deviation is pure
        estimation noise, far below the bound."""
        params = fast_params()
        result = run(benign_scenario(params, duration=5.0, seed=9,
                                     clock_factory=perfect_clocks))
        assert result.max_deviation(warmup_for(params)) <= 4 * params.epsilon


class TestEnvelopeBehaviour:
    """Lemma 7 on real runs: envelopes never expand beyond allowance."""

    def test_envelope_steps_hold_under_byzantine(self):
        params = default_params(n=7, f=2)
        result = run(mobile_byzantine_scenario(params, duration=15.0, seed=2))
        steps = envelope_trajectory(result.samples, result.corruptions, params,
                                    start=warmup_for(params),
                                    floor_slack=2.0 * params.epsilon)
        assert steps
        violations = [s for s in steps if not s.holds]
        assert not violations, violations[:3]

    def test_bias_formulation_consistency(self):
        """Figure 1 vs Figure 2: every sync record's clock-space update
        is the bias-space update shifted by tau."""
        params = fast_params()
        result = run(benign_scenario(params, duration=4.0, seed=1))
        checked = verify_bias_formulation(result.samples, result.trace.syncs)
        assert checked > 0
