"""Unit tests for the columnar result store (repro.runner.store)."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import StoreError
from repro.runner.campaign import Campaign, run_config
from repro.runner.records import RunRecord
from repro.runner.store import (
    ABSENT,
    HAVE_PYARROW,
    STORE_FORMAT,
    Column,
    ResultStore,
    append_to_dir,
    parquet_active,
    set_parquet,
)


def config(seed: int, f: int = 1, name: str | None = None) -> dict:
    return {
        "name": name or f"store-{seed}",
        "params": {"n": 4, "f": f, "delta": 0.005, "rho": 5e-4, "pi": 2.0},
        "duration": 2.0,
        "seed": seed,
    }


@pytest.fixture(scope="module")
def records() -> list[RunRecord]:
    return Campaign([config(s) for s in (1, 2, 3)]).run().records


@pytest.fixture(scope="module")
def error_record() -> RunRecord:
    return RunRecord(index=7, name="broken", config={"name": "broken"},
                     seed=9, duration=1.0, error="ValueError: boom")


# ----------------------------------------------------------------------
# Column
# ----------------------------------------------------------------------


def test_column_kinds_and_masks():
    col = Column("x", "f8")
    col.append(1.5)
    col.append(ABSENT)
    col.append(2.5)
    assert len(col) == 3
    assert col.get(0) == 1.5
    assert col.get(1) is None
    assert not col.present(1) and col.present(2)


def test_column_bool_reads_back_as_bool():
    col = Column("b", "bool")
    col.append(True)
    col.append(0)
    assert col.get(0) is True
    assert col.get(1) is False


def test_column_json_distinguishes_present_none_from_absent():
    col = Column("j", "json")
    col.append(None)    # present None
    col.append(ABSENT)  # hole
    assert col.present(0) and not col.present(1)


def test_column_unknown_kind_rejected():
    with pytest.raises(StoreError):
        Column("x", "f4")


def test_column_int_overflow_is_store_error():
    col = Column("i", "i8")
    with pytest.raises(StoreError):
        col.append(2 ** 80)


# ----------------------------------------------------------------------
# Building and round-tripping
# ----------------------------------------------------------------------


def test_round_trip_is_lossless(records):
    store = ResultStore.from_records(records)
    assert store.n_runs == len(records)
    assert store.to_records() == list(records)


def test_error_records_round_trip(records, error_record):
    mixed = list(records) + [error_record]
    store = ResultStore.from_records(mixed)
    back = store.to_records()
    assert back == mixed
    assert back[-1].verdict is None and back[-1].error == "ValueError: boom"


def test_config_params_become_columns(records):
    store = ResultStore.from_records(records)
    assert store.values("config.params.n") == [4, 4, 4]
    assert store.values("config.seed") == [1, 2, 3]
    assert store.values("config.name") == [r.name for r in records]


def test_measure_columns_are_float_exact(records):
    store = ResultStore.from_records(records)
    assert store.values("verdict.measured_deviation") == \
        [r.verdict.measured_deviation for r in records]
    assert store.values("verdict.bound.max_deviation") == \
        [r.verdict.bounds.max_deviation for r in records]


def test_derived_recovery_seconds_column(records):
    store = ResultStore.from_records(records)
    for row, record in enumerate(records):
        expected = (record.verdict.bounds.recovery_intervals
                    * record.verdict.bounds.t_interval)
        assert store.columns["verdict.bound.recovery_seconds"].get(row) \
            == expected


def test_non_json_config_rejected(records):
    bad = RunRecord(index=0, name="bad", config={"fn": object()},
                    seed=1, duration=1.0, error="x")
    with pytest.raises(StoreError):
        ResultStore.from_records([bad])


def test_non_record_rejected():
    with pytest.raises(StoreError):
        ResultStore.from_records([{"not": "a record"}])


def test_schema_evolution_appends_masked_holes(records, error_record):
    # Error record first: its rows lack config.params.*; appending real
    # records later must backfill the new columns with holes.
    store = ResultStore.from_records([error_record])
    store.append_records(records)
    assert store.columns["config.params.n"].get(0) is None
    assert store.columns["config.params.n"].get(1) == 4
    assert store.to_records() == [error_record] + list(records)


def test_values_unknown_column_names_near_misses(records):
    store = ResultStore.from_records(records)
    with pytest.raises(StoreError, match="measured_deviation"):
        store.values("measured_deviation")


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------


def test_save_load_round_trip(tmp_path, records):
    store = ResultStore.from_records(records, meta={"origin": "test"})
    store.save(tmp_path / "s")
    loaded = ResultStore.load(tmp_path / "s")
    assert loaded.to_records() == list(records)
    assert loaded.meta["origin"] == "test"


def test_append_to_dir_adds_chunks(tmp_path, records):
    target = tmp_path / "s"
    append_to_dir(target, records[:2])
    append_to_dir(target, records[2:], meta={"note": "second"})
    loaded = ResultStore.load(target)
    assert loaded.to_records() == list(records)
    assert loaded.meta["note"] == "second"
    manifest = json.loads((target / "manifest.json").read_text())
    assert len(manifest["chunks"]) == 2
    assert manifest["store_format"] == STORE_FORMAT


def test_load_missing_manifest_is_store_error(tmp_path):
    with pytest.raises(StoreError, match="manifest"):
        ResultStore.load(tmp_path)


def test_load_newer_format_refused(tmp_path, records):
    target = tmp_path / "s"
    ResultStore.from_records(records).save(target)
    manifest = json.loads((target / "manifest.json").read_text())
    manifest["store_format"] = STORE_FORMAT + 1
    (target / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(StoreError, match="format"):
        ResultStore.load(target)
    with pytest.raises(StoreError, match="format"):
        append_to_dir(target, records)


def test_save_replaces_stale_chunks(tmp_path, records):
    target = tmp_path / "s"
    append_to_dir(target, records[:1])
    append_to_dir(target, records[1:2])
    ResultStore.from_records(records).save(target)
    loaded = ResultStore.load(target)
    assert loaded.n_runs == len(records)
    manifest = json.loads((target / "manifest.json").read_text())
    assert len(manifest["chunks"]) == 1


def test_nan_and_inf_survive_disk(tmp_path):
    record = run_config(config(5))
    # envelope_occupancy can be nan in general; fabricate one plus an
    # inf-bearing recovery row through the real dataclasses.
    import dataclasses
    from repro.metrics.measures import RecoveryEvent, RecoveryReport
    weird = dataclasses.replace(
        record,
        envelope_occupancy=float("nan"),
        recovery=RecoveryReport(events=[RecoveryEvent(
            node=1, released_at=0.5, rejoined_at=float("inf"),
            initial_distance=3.0)], tolerance=0.1),
    )
    store = ResultStore.from_records([weird])
    store.save(tmp_path / "s")
    back = ResultStore.load(tmp_path / "s").record(0)
    assert math.isnan(back.envelope_occupancy)
    assert back.recovery.events[0].rejoined_at == float("inf")
    assert not back.recovery.all_recovered


def test_parquet_seam_gating():
    if HAVE_PYARROW:
        set_parquet(True)
        assert parquet_active()
        set_parquet(None)
    else:
        with pytest.raises(StoreError, match="pyarrow"):
            set_parquet(True)
        set_parquet(False)
        assert not parquet_active()
        set_parquet(None)
        assert not parquet_active()


@pytest.mark.skipif(not HAVE_PYARROW, reason="pyarrow not installed")
def test_parquet_round_trip(tmp_path, records):
    set_parquet(True)
    try:
        store = ResultStore.from_records(records)
        store.save(tmp_path / "s")
        assert (tmp_path / "s" / "chunk-000000.parquet").exists()
        assert ResultStore.load(tmp_path / "s").to_records() == list(records)
    finally:
        set_parquet(None)


# ----------------------------------------------------------------------
# Query API
# ----------------------------------------------------------------------


def test_where_ops(records, error_record):
    store = ResultStore.from_records(list(records) + [error_record])
    assert store.query().where("error", "isnull").count() == len(records)
    assert store.query().where("error", "notnull").count() == 1
    assert store.query().where("seed", "==", 2).count() == 1
    assert store.query().where("seed", "!=", 2).count() == 3
    assert store.query().where("seed", "in", [1, 3]).count() == 2
    assert store.query().where("seed", "not-in", [1, 3]).count() == 2
    assert store.query().where("seed", ">=", 2).count() == 3
    assert store.query().where("seed", "<", 2).count() == 1


def test_where_absent_cells_only_match_isnull(records, error_record):
    store = ResultStore.from_records(list(records) + [error_record])
    # The error record has no verdict: it must not match any comparison.
    assert store.query().where(
        "verdict.measured_deviation", ">=", 0.0).count() == len(records)
    assert store.query().where(
        "verdict.measured_deviation", "isnull").count() == 1


def test_where_type_mismatch_is_no_match(records):
    store = ResultStore.from_records(records)
    assert store.query().where("name", "<", 3).count() == 0


def test_where_unknown_op(records):
    store = ResultStore.from_records(records)
    with pytest.raises(StoreError, match="unknown query op"):
        store.query().where("seed", "~=", 1)


def test_select_aligns_absent_as_none(records, error_record):
    store = ResultStore.from_records(list(records) + [error_record])
    out = store.query().select("seed", "verdict.measured_deviation")
    assert len(out["seed"]) == store.n_runs
    assert out["verdict.measured_deviation"][-1] is None


def test_aggregate(records):
    store = ResultStore.from_records(records)
    agg = store.query().aggregate(
        n=("index", "count"),
        worst=("verdict.measured_deviation", "max"),
        best=("verdict.measured_deviation", "min"),
        mean=("verdict.measured_deviation", "mean"),
        all_ok=("ok", "all"),
    )
    devs = [r.verdict.measured_deviation for r in records]
    assert agg["n"] == len(records)
    assert agg["worst"] == max(devs)
    assert agg["best"] == min(devs)
    assert agg["mean"] == sum(devs) / len(devs)
    assert agg["all_ok"] == all(r.ok for r in records)


def test_aggregate_empty_selection(records):
    store = ResultStore.from_records(records)
    empty = store.query().where("seed", "==", 999)
    agg = empty.aggregate(n=("index", "count"),
                          worst=("verdict.measured_deviation", "max"))
    assert agg == {"n": 0, "worst": None}


def test_aggregate_unknown_fn(records):
    store = ResultStore.from_records(records)
    with pytest.raises(StoreError, match="unknown aggregate"):
        store.query().aggregate(x=("seed", "median"))


def test_group_by(records):
    store = ResultStore.from_records(records)
    rows = store.query().group_by("config.params.f").aggregate(
        runs=("index", "count"))
    assert rows == [{"config.params.f": 1, "runs": len(records)}]
    by_seed = store.query().group_by("seed").aggregate(n=("index", "count"))
    assert [row["seed"] for row in by_seed] == [1, 2, 3]


def test_group_by_requires_keys(records):
    store = ResultStore.from_records(records)
    with pytest.raises(StoreError):
        store.query().group_by()


def test_query_records_round_trip(records):
    store = ResultStore.from_records(records)
    subset = store.query().where("seed", ">=", 2).records()
    assert subset == [r for r in records if r.seed >= 2]


def test_query_is_immutable(records):
    store = ResultStore.from_records(records)
    base = store.query()
    base.where("seed", "==", 1)
    assert base.count() == len(records)


# ----------------------------------------------------------------------
# Campaign integration
# ----------------------------------------------------------------------


def test_campaign_store_dir_writes_natively(tmp_path):
    target = tmp_path / "out"
    result = Campaign([config(1)], store_dir=target).run()
    loaded = ResultStore.load(target)
    assert loaded.to_records() == result.records
    assert loaded.meta["backend"] == "scalar"
    # A second campaign appends a chunk instead of clobbering.
    Campaign([config(2)], store_dir=target).run()
    assert ResultStore.load(target).n_runs == 2


def test_campaign_result_store_helper(records):
    result = Campaign([config(4)]).run()
    store = result.store(meta={"k": 1})
    assert store.to_records() == result.records
    assert store.meta == {"k": 1}
