"""Integration tests: the recovery requirement and Claim 8(iii).

A processor the adversary leaves must rejoin the good set within a
bounded time, with its distance to the good range (at least) halving
per analysis interval — with *no* fault or recovery detection anywhere.
"""

from __future__ import annotations

import math

import pytest

from repro.adversary.mobile import PlannedCorruption, single_burst_plan
from repro.adversary.strategies import (
    NearBoundaryResetStrategy,
    RandomClockStrategy,
    SilentStrategy,
)
from repro.core.analysis import halving_holds, recovery_trajectory
from repro.runner.builders import (
    default_params,
    mobile_byzantine_scenario,
    recovery_scenario,
    warmup_for,
)
from repro.runner.experiment import run


def fast_params(n=4, f=1):
    return default_params(n=n, f=f)


class TestBasicRecovery:
    def test_way_off_victim_recovers(self):
        params = fast_params()
        result = run(recovery_scenario(params, duration=8.0, seed=1))
        report = result.recovery()
        assert report.events
        assert report.all_recovered

    def test_recovery_within_theoretical_intervals(self):
        """Claim 8 predicts rejoin within ~log2(WayOff / C) intervals of
        T; allow a small constant factor for measurement granularity."""
        params = fast_params()
        result = run(recovery_scenario(params, duration=8.0, seed=1))
        report = result.recovery()
        bound_intervals = params.bounds().recovery_intervals
        limit = (bound_intervals + 2) * params.t_interval
        assert report.max_recovery_time <= limit

    def test_recovery_faster_than_pi(self):
        """The design goal: recovered before the adversary can strike
        the next group (recovery time < PI)."""
        params = fast_params()
        result = run(recovery_scenario(params, duration=8.0, seed=2))
        assert result.recovery().max_recovery_time < params.pi

    def test_both_directions_recover(self):
        """Victims displaced up AND down both return."""
        params = default_params(n=7, f=2)
        result = run(recovery_scenario(params, duration=10.0, seed=3,
                                       victims=[0, 1]))
        report = result.recovery()
        assert len(report.events) == 2
        assert report.all_recovered


class TestNearBoundaryRecovery:
    """The hard case the paper calls out: a clock left 'just a bit'
    outside the permitted range, where detection-based schemes fail."""

    @pytest.mark.parametrize("factor", [0.9, 1.01, 1.5])
    def test_recovers_from_near_boundary(self, factor):
        params = fast_params()
        result = run(recovery_scenario(params, duration=8.0, seed=4,
                                       displacement=factor * params.way_off))
        assert result.recovery().all_recovered


class TestGeometricConvergence:
    def test_distance_halves_per_interval(self):
        """Lemma 7(iii): per interval T, the victim's distance to the
        good range at least halves (plus the bound's residue)."""
        params = fast_params()
        displacement = 8.0 * params.way_off
        result = run(recovery_scenario(params, duration=10.0, seed=5,
                                       displacement=displacement))
        event = result.recovery().events[0]
        trajectory = recovery_trajectory(result.samples, result.corruptions,
                                         params, event.node, event.released_at,
                                         intervals=10)
        assert trajectory[0].distance > 0
        assert halving_holds(trajectory, slack=params.bounds().max_deviation)

    def test_far_clock_eventually_within_deviation(self):
        params = fast_params()
        result = run(recovery_scenario(params, duration=10.0, seed=6,
                                       displacement=50.0 * params.way_off))
        event = result.recovery().events[0]
        trajectory = recovery_trajectory(result.samples, result.corruptions,
                                         params, event.node, event.released_at)
        assert trajectory[-1].distance <= params.bounds().max_deviation


class TestUnboundedTotalFaults:
    def test_every_node_corrupted_repeatedly_system_survives(self):
        """The headline property: over a long run the adversary corrupts
        every processor (some more than once) and the good set still
        meets Theorem 5(i) throughout."""
        params = fast_params()
        result = run(mobile_byzantine_scenario(params, duration=30.0, seed=7))
        corrupted_nodes = {c.node for c in result.corruptions}
        assert corrupted_nodes == set(range(params.n))
        assert len(result.corruptions) > params.n  # re-corruption happened
        assert result.max_deviation(warmup_for(params)) <= params.bounds().max_deviation

    def test_all_released_nodes_recover(self):
        params = fast_params()
        result = run(mobile_byzantine_scenario(params, duration=30.0, seed=8))
        report = result.recovery()
        assert report.events
        assert report.all_recovered


class TestSilentFaultRecovery:
    def test_crashed_node_rejoins_seamlessly(self):
        """A silent (napping) fault leaves the clock intact; rejoining
        costs nothing. Checks the protocol doesn't punish absence."""
        params = fast_params()

        def plan(scenario, clocks):
            return single_burst_plan([0], start=1.0, dwell=1.0,
                                     strategy_factory=lambda n, e: SilentStrategy())

        scenario = recovery_scenario(params, duration=6.0, seed=9)
        scenario.plan_builder = plan
        result = run(scenario)
        report = result.recovery()
        assert report.all_recovered
        assert report.max_recovery_time <= params.t_interval


class TestNoRecoveryDetectionNeeded:
    def test_victim_receives_no_signal(self):
        """Structural check: recovery happens although no message or
        flag ever tells the victim it was corrupted — the only inputs
        are ordinary pongs."""
        params = fast_params()
        result = run(recovery_scenario(params, duration=8.0, seed=10,
                                       record_messages=True))
        kinds = {m.kind for m in result.trace.messages}
        assert kinds <= {"Ping", "Pong"}
        assert result.recovery().all_recovered
