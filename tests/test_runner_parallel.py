"""Tests for the parallel config runner."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runner.parallel import ConfigRunSummary, run_config, run_configs


def config(seed=0, scenario="benign", duration=3.0):
    return {
        "params": {"n": 4, "f": 1, "delta": 0.005, "rho": 5e-4, "pi": 2.0},
        "scenario": scenario,
        "duration": duration,
        "seed": seed,
    }


class TestSerial:
    def test_single_config(self):
        summary = run_config(config(seed=1))
        assert isinstance(summary, ConfigRunSummary)
        assert summary.all_ok
        assert summary.max_deviation <= summary.deviation_bound
        assert summary.messages_delivered > 0

    def test_order_preserved(self):
        summaries = run_configs([config(seed=s) for s in (5, 6, 7)])
        assert [s.config["seed"] for s in summaries] == [5, 6, 7]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            run_configs([])

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            run_configs([config()], workers=0)

    def test_byzantine_config(self):
        summary = run_config(config(scenario="mobile-byzantine", duration=6.0))
        assert summary.all_ok and summary.all_recovered


class TestParallel:
    def test_parallel_matches_serial_exactly(self):
        """Determinism across execution modes: identical configs give
        byte-identical measures whether run serially or in a pool."""
        configs = [config(seed=s, duration=4.0) for s in (1, 2, 3, 4)]
        serial = run_configs(configs, workers=1)
        parallel = run_configs(configs, workers=2)
        for a, b in zip(serial, parallel):
            assert a.max_deviation == b.max_deviation
            assert a.messages_delivered == b.messages_delivered
            assert a.events_processed == b.events_processed

    def test_parallel_order_preserved(self):
        configs = [config(seed=s) for s in (9, 8, 7)]
        summaries = run_configs(configs, workers=2)
        assert [s.config["seed"] for s in summaries] == [9, 8, 7]
