"""Tests for the ASCII chart renderers."""

from __future__ import annotations

import math

import pytest

from repro.errors import MeasurementError
from repro.metrics.plots import bias_plane, sparkline, strip_chart
from repro.metrics.sampler import ClockSamples


class TestSparkline:
    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        levels = " .:-=+*#%@"
        ranks = [levels.index(c) for c in line]
        assert ranks == sorted(ranks)
        assert ranks[0] < ranks[-1]

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "   "

    def test_nan_renders_question_mark(self):
        assert sparkline([0.0, math.nan, 1.0])[1] == "?"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_scale(self):
        clipped = sparkline([0.0, 10.0], lo=0.0, hi=100.0)
        assert clipped[1] != "@"  # 10 of 100 is low on the scale


class TestStripChart:
    def test_basic_render(self):
        series = [(float(i), float(i % 5)) for i in range(50)]
        chart = strip_chart(series, width=40, height=8, title="zigzag")
        lines = chart.splitlines()
        assert lines[0] == "zigzag"
        assert len(lines) == 1 + 8 + 2  # title + rows + axis + labels
        assert any("*" in line for line in lines)

    def test_hline_drawn_and_labelled(self):
        series = [(float(i), 1.0) for i in range(10)]
        chart = strip_chart(series, hline=3.0, hline_label="limit")
        assert "limit" in chart
        assert any(line.count("-") > 10 for line in chart.splitlines())

    def test_empty_series_rejected(self):
        with pytest.raises(MeasurementError):
            strip_chart([])

    def test_single_point(self):
        chart = strip_chart([(0.0, 1.0)], width=10, height=4)
        assert "*" in chart


class TestBiasPlane:
    def make_samples(self):
        times = [float(i) for i in range(20)]
        return ClockSamples(
            times=times,
            clocks={
                0: [t + 0.5 for t in times],          # bias +0.5
                1: [t - 0.5 for t in times],          # bias -0.5
                2: [t + 0.5 - 0.05 * t for t in times],  # converging
            },
        )

    def test_draws_each_node_glyph(self):
        chart = bias_plane(self.make_samples(), nodes=[0, 1, 2])
        assert "0" in chart and "1" in chart and "2" in chart

    def test_range_slicing(self):
        samples = self.make_samples()
        chart = bias_plane(samples, nodes=[0], lo_index=5, hi_index=15)
        assert "5" in chart.splitlines()[-1]  # x-axis start label

    def test_too_many_nodes_rejected(self):
        with pytest.raises(MeasurementError):
            bias_plane(self.make_samples(), nodes=list(range(11)))

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            bias_plane(self.make_samples(), nodes=[])

    def test_real_run_renders(self):
        from repro.runner.builders import benign_scenario, default_params
        from repro.runner.experiment import run

        result = run(benign_scenario(default_params(n=4, f=1), duration=2.0,
                                     seed=1, initial_offset_spread=0.05))
        chart = bias_plane(result.samples, nodes=[0, 1, 2, 3],
                           title="startup convergence")
        assert chart.startswith("startup convergence")
        assert len(chart.splitlines()) == 1 + 12 + 2
