"""Unit tests for the analysis tools (envelopes, recovery, verdicts)."""

from __future__ import annotations

import pytest

from repro.core.analysis import (
    halving_holds,
    recovery_trajectory,
    RecoveryStep,
    theorem5_verdict,
    verify_bias_formulation,
    envelope_trajectory,
)
from repro.core.sync import SyncRecord
from repro.errors import MeasurementError
from repro.metrics.measures import AccuracyReport
from repro.metrics.sampler import ClockSamples, CorruptionInterval
from repro.runner.builders import default_params


def make_samples(times, clocks):
    return ClockSamples(times=list(times), clocks={k: list(v) for k, v in clocks.items()})


class TestTheorem5Verdict:
    def test_within_bounds_passes(self):
        params = default_params()
        bounds = params.bounds()
        accuracy = AccuracyReport(max_discontinuity=bounds.discontinuity / 2,
                                  implied_drift=bounds.logical_drift / 2, stretches=3)
        verdict = theorem5_verdict(params, bounds.max_deviation / 2, accuracy)
        assert verdict.all_ok

    def test_violations_flagged_individually(self):
        params = default_params()
        bounds = params.bounds()
        accuracy = AccuracyReport(max_discontinuity=bounds.discontinuity * 2,
                                  implied_drift=0.0, stretches=1)
        verdict = theorem5_verdict(params, 0.0, accuracy)
        assert verdict.deviation_ok
        assert verdict.drift_ok
        assert not verdict.discontinuity_ok
        assert not verdict.all_ok


class TestHalving:
    def steps(self, distances):
        return [RecoveryStep(index=i, time=float(i), distance=d)
                for i, d in enumerate(distances)]

    def test_clean_geometric_decay_passes(self):
        assert halving_holds(self.steps([8.0, 4.0, 2.0, 1.0]), slack=0.0)

    def test_decay_with_residue_needs_slack(self):
        trajectory = self.steps([8.0, 4.5, 2.7])
        assert not halving_holds(trajectory, slack=0.0)
        assert halving_holds(trajectory, slack=0.5)

    def test_stalled_recovery_fails(self):
        assert not halving_holds(self.steps([8.0, 8.0, 8.0]), slack=0.1)

    def test_single_point_trivially_holds(self):
        assert halving_holds(self.steps([5.0]), slack=0.0)


class TestRecoveryTrajectory:
    def test_distance_measured_against_others(self):
        params = default_params(n=4, f=1)
        t = params.t_interval
        times = [i * t / 2 for i in range(9)]  # 4 T-intervals of samples
        good = [tau for tau in times]  # biases 0
        lost = [tau + 1.0 for tau in times]  # bias 1 throughout
        samples = make_samples(times, {0: lost, 1: good, 2: good, 3: good})
        steps = recovery_trajectory(samples, [], params, node=0, release_time=0.0)
        assert all(s.distance == pytest.approx(1.0) for s in steps)

    def test_node_inside_range_distance_zero(self):
        params = default_params(n=4, f=1)
        t = params.t_interval
        times = [i * t / 2 for i in range(5)]
        samples = make_samples(times, {i: [tau for tau in times] for i in range(4)})
        steps = recovery_trajectory(samples, [], params, node=0, release_time=0.0)
        assert all(s.distance == 0.0 for s in steps)

    def test_intervals_cap_respected(self):
        params = default_params(n=4, f=1)
        t = params.t_interval
        times = [i * t / 4 for i in range(100)]
        samples = make_samples(times, {i: list(times) for i in range(4)})
        steps = recovery_trajectory(samples, [], params, node=0, release_time=0.0,
                                    intervals=3)
        assert len(steps) == 4  # i = 0..3


class TestEnvelopeTrajectory:
    def test_constant_biases_at_floor(self):
        params = default_params(n=4, f=1)
        t = params.t_interval
        times = [i * t / 4 for i in range(30)]
        # All clocks exactly on real time: width 0, at floor, holds.
        samples = make_samples(times, {i: list(times) for i in range(4)})
        steps = envelope_trajectory(samples, [], params)
        assert steps
        assert all(s.at_floor and s.holds for s in steps)

    def test_width_shrinks_detected(self):
        params = default_params(n=4, f=1)
        t = params.t_interval
        times = [0.0, t / 2, t]
        # Biases collapse from spread 1.0 to spread 0.1 within one T.
        samples = make_samples(times, {
            0: [0.0, 0.2, 0.05 + times[2]][0:3],
            1: [1.0, 0.8, 0.15],
            2: [0.0, 0.2, 0.05],
            3: [0.5, 0.5, 0.10],
        })
        # Fix sample values to be clock readings: bias = clock - tau.
        samples = make_samples(times, {
            0: [times[i] + b for i, b in enumerate([0.0, 0.2, 0.05])],
            1: [times[i] + b for i, b in enumerate([1.0, 0.8, 0.15])],
            2: [times[i] + b for i, b in enumerate([0.0, 0.2, 0.05])],
            3: [times[i] + b for i, b in enumerate([0.5, 0.5, 0.10])],
        })
        steps = envelope_trajectory(samples, [], params)
        assert len(steps) == 1
        step = steps[0]
        assert step.width_start == pytest.approx(1.0)
        assert step.width_end == pytest.approx(0.1)
        assert step.holds

    def test_expanding_widths_flagged(self):
        params = default_params(n=4, f=1)
        t = params.t_interval
        times = [0.0, t]
        spread_start, spread_end = 1.0, 1.5  # grows: violates the lemma
        samples = make_samples(times, {
            0: [0.0, t],
            1: [spread_start, t + spread_end],
            2: [0.0, t],
            3: [0.0, t],
        })
        steps = envelope_trajectory(samples, [], params)
        assert len(steps) == 1
        assert not steps[0].holds

    def test_corrupted_nodes_excluded_from_g(self):
        params = default_params(n=4, f=1)
        t = params.t_interval
        times = [0.0, t]
        samples = make_samples(times, {
            0: [1e6, 1e6],  # corrupted garbage
            1: [0.0, t],
            2: [0.0, t],
            3: [0.0, t],
        })
        corr = [CorruptionInterval(0, 0.0, 10 * t)]
        steps = envelope_trajectory(samples, corr, params)
        assert steps[0].good_nodes == 3
        assert steps[0].holds

    def test_too_few_samples_rejected(self):
        params = default_params()
        with pytest.raises(MeasurementError):
            envelope_trajectory(ClockSamples(times=[0.0], clocks={}), [], params)


class TestBiasFormulation:
    def record(self, local_before=5.0, real_time=4.0, correction=0.5):
        return SyncRecord(node_id=0, round_no=1, real_time=real_time,
                          local_before=local_before, correction=correction,
                          m=0.0, big_m=0.0, own_discarded=False, replies=3)

    def test_consistent_records_pass(self):
        assert verify_bias_formulation(None, [self.record() for _ in range(3)]) == 3

    def test_empty_is_zero(self):
        assert verify_bias_formulation(None, []) == 0
