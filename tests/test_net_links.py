"""Unit tests for link delay models."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.net.links import AsymmetricDelay, FixedDelay, JitteredDelay, UniformDelay


RNG = random.Random(99)


def test_delta_must_be_positive():
    with pytest.raises(ConfigurationError):
        FixedDelay(delta=0.0)


class TestFixedDelay:
    def test_default_is_half_delta(self):
        model = FixedDelay(delta=0.01)
        assert model.sample(0, 1, RNG) == pytest.approx(0.005)

    def test_explicit_value(self):
        model = FixedDelay(delta=0.01, value=0.002)
        assert model.sample(0, 1, RNG) == 0.002

    def test_value_above_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedDelay(delta=0.01, value=0.02)

    def test_zero_value_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedDelay(delta=0.01, value=0.0)


class TestUniformDelay:
    def test_samples_within_range(self):
        model = UniformDelay(delta=0.01, lo=0.001, hi=0.009)
        rng = random.Random(5)
        for _ in range(200):
            assert 0.001 <= model.sample(0, 1, rng) <= 0.009

    def test_defaults_within_delta(self):
        model = UniformDelay(delta=0.01)
        rng = random.Random(5)
        assert all(0 < model.sample(0, 1, rng) <= 0.01 for _ in range(100))

    def test_inverted_range_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformDelay(delta=0.01, lo=0.009, hi=0.001)

    def test_hi_above_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformDelay(delta=0.01, lo=0.001, hi=0.02)


class TestAsymmetricDelay:
    def test_direction_dependence(self):
        model = AsymmetricDelay(delta=0.01, forward=0.009, backward=0.001)
        assert model.sample(0, 5, RNG) == 0.009  # low -> high
        assert model.sample(5, 0, RNG) == 0.001  # high -> low

    def test_defaults_are_maximally_skewed(self):
        model = AsymmetricDelay(delta=0.01)
        assert model.sample(0, 1, RNG) > model.sample(1, 0, RNG)

    def test_direction_values_bounded(self):
        with pytest.raises(ConfigurationError):
            AsymmetricDelay(delta=0.01, forward=0.05)


class TestJitteredDelay:
    def test_never_exceeds_delta(self):
        model = JitteredDelay(delta=0.01, base=0.001, jitter_mean=0.02)
        rng = random.Random(6)
        assert all(model.sample(0, 1, rng) <= 0.01 for _ in range(500))

    def test_at_least_base(self):
        model = JitteredDelay(delta=0.01, base=0.002, jitter_mean=0.001)
        rng = random.Random(6)
        assert all(model.sample(0, 1, rng) >= 0.002 for _ in range(100))

    def test_bad_base_rejected(self):
        with pytest.raises(ConfigurationError):
            JitteredDelay(delta=0.01, base=0.05)

    def test_jitter_tail_exists(self):
        """With heavy jitter, some samples should land well above base —
        the regime the min-of-k estimation optimization targets."""
        model = JitteredDelay(delta=0.01, base=0.001, jitter_mean=0.005)
        rng = random.Random(7)
        samples = [model.sample(0, 1, rng) for _ in range(300)]
        assert max(samples) > 0.005
        assert min(samples) < 0.002


class TestHeterogeneousDelay:
    def test_default_classes(self):
        from repro.net.links import HeterogeneousDelay
        model = HeterogeneousDelay(delta=0.01)
        rng = random.Random(3)
        lan = [model.sample(0, 2, rng) for _ in range(50)]   # same parity
        wan = [model.sample(0, 1, rng) for _ in range(50)]   # mixed parity
        assert max(lan) <= 0.10 * 0.01 + 1e-12
        assert min(wan) >= 0.5 * 0.01 - 1e-12
        assert max(wan) <= 0.01

    def test_symmetric_classification(self):
        from repro.net.links import HeterogeneousDelay
        model = HeterogeneousDelay(delta=0.01)
        rng_a, rng_b = random.Random(4), random.Random(4)
        assert model.sample(1, 4, rng_a) == model.sample(4, 1, rng_b)

    def test_custom_classifier(self):
        from repro.net.links import HeterogeneousDelay
        model = HeterogeneousDelay(
            delta=0.01, classifier=lambda a, b: (0.001, 0.002))
        rng = random.Random(5)
        assert 0.001 <= model.sample(0, 1, rng) <= 0.002

    def test_bad_classifier_rejected(self):
        from repro.net.links import HeterogeneousDelay
        model = HeterogeneousDelay(
            delta=0.01, classifier=lambda a, b: (0.0, 0.5))
        with pytest.raises(ConfigurationError):
            model.sample(0, 1, random.Random(6))

    def test_protocol_on_lan_wan_mix(self):
        """End-to-end: the Theorem 5 bound (driven by the global delta)
        holds on a LAN/WAN mix, and typical deviation is better than the
        all-WAN worst case would suggest."""
        from repro.net.links import HeterogeneousDelay
        from repro.runner.builders import benign_scenario, default_params
        from repro.runner.experiment import run

        params = default_params(n=6, f=1)
        result = run(benign_scenario(params, duration=6.0, seed=61,
                                     delay_model=HeterogeneousDelay(params.delta)))
        assert result.max_deviation(2.0) <= params.bounds().max_deviation
