"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "mobile-byzantine" in out
    assert "sync" in out
    assert "minimal-correction" in out


def test_bounds_command(capsys):
    assert main(["bounds", "--n", "7", "--f", "2", "--pi", "4.0"]) == 0
    out = capsys.readouterr().out
    assert "max deviation" in out
    assert "WayOff" in out


def test_run_benign(capsys):
    code = main(["run", "--scenario", "benign", "--duration", "3",
                 "--n", "4", "--f", "1", "--seed", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Theorem 5 verdict" in out
    assert "VIOLATED" not in out


def test_run_mobile_byzantine_reports_recovery(capsys):
    code = main(["run", "--scenario", "mobile-byzantine", "--duration", "8",
                 "--n", "4", "--f", "1", "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "recoveries:" in out
    assert "all recovered: True" in out


def test_run_with_baseline_protocol(capsys):
    code = main(["run", "--scenario", "benign", "--duration", "3",
                 "--n", "4", "--f", "1", "--protocol", "round-based"])
    assert code == 0


def test_parser_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--scenario", "nope"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_soak_command(capsys):
    code = main(["soak", "--segments", "2", "--segment-duration", "6",
                 "--n", "4", "--f", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "2/2 segments clean" in out
    assert "VIOLATION" not in out


def test_run_prints_events_per_second(capsys):
    assert main(["run", "--scenario", "benign", "--duration", "3",
                 "--n", "4", "--f", "1", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "events/s" in out


def test_run_trace_flag_and_trace_subcommand(tmp_path, capsys):
    stream = tmp_path / "run.jsonl"
    assert main(["run", "--scenario", "mobile-byzantine", "--duration", "8",
                 "--seed", "1", "--trace", str(stream)]) == 0
    out = capsys.readouterr().out
    assert "observability events" in out
    assert stream.exists()

    chrome = tmp_path / "trace.json"
    assert main(["trace", str(stream), "--top", "3",
                 "--chrome", str(chrome)]) == 0
    out = capsys.readouterr().out
    assert "Event stream" in out
    assert "Per-node metrics" in out
    assert "envelope probes: 0 violations" in out
    assert chrome.exists()


def test_trace_of_identical_seed_runs_is_byte_identical(tmp_path):
    streams = []
    for name in ("a.jsonl", "b.jsonl"):
        path = tmp_path / name
        assert main(["run", "--scenario", "mobile-byzantine", "--duration",
                     "6", "--seed", "9", "--trace", str(path)]) == 0
        streams.append(path.read_bytes())
    assert streams[0] == streams[1]


def test_trace_missing_events_errors(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["trace", str(empty)]) == 1
    assert "no events" in capsys.readouterr().out


def _sweep_file(tmp_path, n_configs=2):
    import json

    configs = [
        {"params": {"n": 4, "f": 1, "delta": 0.005, "rho": 5e-4, "pi": 2.0},
         "scenario": "benign", "duration": 3.0, "seed": seed}
        for seed in range(1, n_configs + 1)
    ]
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(configs))
    return path


def test_sweep_command(tmp_path, capsys):
    code = main(["sweep", str(_sweep_file(tmp_path))])
    out = capsys.readouterr().out
    assert code == 0
    assert "2 runs: 2 executed, 0 cached, 0 failed" in out
    assert "benign" in out


def test_sweep_cache_hit_and_resume(tmp_path, capsys):
    path = _sweep_file(tmp_path)
    cache = tmp_path / "cache"
    assert main(["sweep", str(path), "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    assert main(["sweep", str(path), "--cache-dir", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "0 executed, 2 cached" in out
    # Drop one cached record: resume executes only the missing run.
    next(cache.glob("*.pkl")).unlink()
    assert main(["sweep", str(path), "--cache-dir", str(cache),
                 "--resume"]) == 0
    out = capsys.readouterr().out
    assert "1 executed, 1 cached" in out


def test_sweep_json_output(tmp_path, capsys):
    import json

    out_path = tmp_path / "records.json"
    code = main(["sweep", str(_sweep_file(tmp_path, n_configs=1)),
                 "--json", str(out_path)])
    assert code == 0
    assert "records written" in capsys.readouterr().out
    payload = json.loads(out_path.read_text())
    records = payload["records"]
    assert len(records) == 1
    assert records[0]["error"] is None
    assert records[0]["verdict"] is not None
    assert records[0]["seed"] == 1
    summary = payload["summary"]
    assert summary["runs"] == 1
    assert summary["all_ok"] is True
    assert summary["scalar_fallbacks"] == 0
    assert summary["fallback_reasons"] == {}


def test_sweep_bad_config_file(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main(["sweep", str(missing)]) == 2
    assert "nope.json" in capsys.readouterr().err


def test_run_stream_flag_matches_posthoc(capsys):
    """--stream produces the identical report without a recorded trace."""
    argv = ["run", "--scenario", "mobile-byzantine", "--duration", "8",
            "--n", "4", "--f", "1", "--seed", "3"]
    assert main(argv) == 0
    posthoc = capsys.readouterr().out
    assert main(argv + ["--stream"]) == 0
    streamed = capsys.readouterr().out
    # Wall-clock perf lines differ run to run; every measured line
    # (verdict, recovery, deviation) must be identical.
    strip = lambda out: [line for line in out.splitlines()
                         if "events/s" not in line and "wall" not in line]
    assert strip(streamed) == strip(posthoc)


def test_sweep_stream_flag_caches_separately(tmp_path, capsys):
    """--stream records match the post-hoc sweep but use their own cache."""
    path = _sweep_file(tmp_path, n_configs=1)
    cache = tmp_path / "cache"
    assert main(["sweep", str(path), "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    assert main(["sweep", str(path), "--cache-dir", str(cache),
                 "--stream"]) == 0
    out = capsys.readouterr().out
    # stream_measures is part of the cache identity: no stale hit.
    assert "1 executed, 0 cached" in out


def test_live_telemetry_loopback_with_metrics_and_json(tmp_path, capsys):
    """The PR 7 surface through the CLI: telemetry plane, scrape port,
    live trace, JSON report — one short loopback run."""
    stream = tmp_path / "live.jsonl"
    report = tmp_path / "live.json"
    code = main(["live", "--transport", "loopback", "--nodes", "4",
                 "--duration", "1.2", "--seed", "1", "--telemetry",
                 "--metrics-port", "0", "--trace", str(stream),
                 "--json", str(report)])
    out = capsys.readouterr().out
    assert code == 0
    assert "metrics endpoint: http://127.0.0.1:" in out
    assert "probe violations: 0" in out
    assert "transport counters" in out

    import json

    document = json.loads(report.read_text())
    assert document["telemetry"] is True
    assert document["bounded"] is True
    assert document["probe_violations"] == 0
    assert document["metrics_port"] is not None
    assert document["transport_counters"]["_"]["transport_sent"] > 0

    # The live JSONL replays through `repro trace` like a sim stream.
    assert main(["trace", str(stream), "--top", "3"]) == 0
    trace_out = capsys.readouterr().out
    assert "Per-node metrics" in trace_out
    assert "envelope probes: 0 violations" in trace_out


def test_query_health_unreachable_is_clean_failure(capsys):
    code = main(["query", "--health", "--port", "1", "--timeout", "0.05"])
    assert code == 1
    assert "admin query failed" in capsys.readouterr().err


def test_stats_unreachable_is_clean_failure(capsys):
    code = main(["stats", "--port", "1", "--timeout", "0.2"])
    assert code == 1
    assert "scrape" in capsys.readouterr().err
