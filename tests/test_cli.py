"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "mobile-byzantine" in out
    assert "sync" in out
    assert "minimal-correction" in out


def test_bounds_command(capsys):
    assert main(["bounds", "--n", "7", "--f", "2", "--pi", "4.0"]) == 0
    out = capsys.readouterr().out
    assert "max deviation" in out
    assert "WayOff" in out


def test_run_benign(capsys):
    code = main(["run", "--scenario", "benign", "--duration", "3",
                 "--n", "4", "--f", "1", "--seed", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Theorem 5 verdict" in out
    assert "VIOLATED" not in out


def test_run_mobile_byzantine_reports_recovery(capsys):
    code = main(["run", "--scenario", "mobile-byzantine", "--duration", "8",
                 "--n", "4", "--f", "1", "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "recoveries:" in out
    assert "all recovered: True" in out


def test_run_with_baseline_protocol(capsys):
    code = main(["run", "--scenario", "benign", "--duration", "3",
                 "--n", "4", "--f", "1", "--protocol", "round-based"])
    assert code == 0


def test_parser_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--scenario", "nope"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_soak_command(capsys):
    code = main(["soak", "--segments", "2", "--segment-duration", "6",
                 "--n", "4", "--f", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "2/2 segments clean" in out
    assert "VIOLATION" not in out
