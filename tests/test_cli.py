"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "mobile-byzantine" in out
    assert "sync" in out
    assert "minimal-correction" in out


def test_bounds_command(capsys):
    assert main(["bounds", "--n", "7", "--f", "2", "--pi", "4.0"]) == 0
    out = capsys.readouterr().out
    assert "max deviation" in out
    assert "WayOff" in out


def test_run_benign(capsys):
    code = main(["run", "--scenario", "benign", "--duration", "3",
                 "--n", "4", "--f", "1", "--seed", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Theorem 5 verdict" in out
    assert "VIOLATED" not in out


def test_run_mobile_byzantine_reports_recovery(capsys):
    code = main(["run", "--scenario", "mobile-byzantine", "--duration", "8",
                 "--n", "4", "--f", "1", "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "recoveries:" in out
    assert "all recovered: True" in out


def test_run_with_baseline_protocol(capsys):
    code = main(["run", "--scenario", "benign", "--duration", "3",
                 "--n", "4", "--f", "1", "--protocol", "round-based"])
    assert code == 0


def test_parser_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--scenario", "nope"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_soak_command(capsys):
    code = main(["soak", "--segments", "2", "--segment-duration", "6",
                 "--n", "4", "--f", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "2/2 segments clean" in out
    assert "VIOLATION" not in out


def test_run_prints_events_per_second(capsys):
    assert main(["run", "--scenario", "benign", "--duration", "3",
                 "--n", "4", "--f", "1", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "events/s" in out


def test_run_trace_flag_and_trace_subcommand(tmp_path, capsys):
    stream = tmp_path / "run.jsonl"
    assert main(["run", "--scenario", "mobile-byzantine", "--duration", "8",
                 "--seed", "1", "--trace", str(stream)]) == 0
    out = capsys.readouterr().out
    assert "observability events" in out
    assert stream.exists()

    chrome = tmp_path / "trace.json"
    assert main(["trace", str(stream), "--top", "3",
                 "--chrome", str(chrome)]) == 0
    out = capsys.readouterr().out
    assert "Event stream" in out
    assert "Per-node metrics" in out
    assert "envelope probes: 0 violations" in out
    assert chrome.exists()


def test_trace_of_identical_seed_runs_is_byte_identical(tmp_path):
    streams = []
    for name in ("a.jsonl", "b.jsonl"):
        path = tmp_path / name
        assert main(["run", "--scenario", "mobile-byzantine", "--duration",
                     "6", "--seed", "9", "--trace", str(path)]) == 0
        streams.append(path.read_bytes())
    assert streams[0] == streams[1]


def test_trace_missing_events_errors(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["trace", str(empty)]) == 1
    assert "no events" in capsys.readouterr().out
