"""Tests for JSON scenario configuration."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.net.links import JitteredDelay, UniformDelay
from repro.runner.config import (
    delay_from_config,
    load_scenario,
    params_from_config,
    scenario_from_config,
)
from repro.runner.experiment import run


BASE = {
    "params": {"n": 4, "f": 1, "delta": 0.005, "rho": 5e-4, "pi": 2.0},
    "scenario": "benign",
    "duration": 2.0,
    "seed": 3,
}


class TestParamsFromConfig:
    def test_derived_form(self):
        params = params_from_config(BASE["params"])
        assert params.n == 4 and params.f == 1
        params.validate()

    def test_target_k_honoured(self):
        spec = dict(BASE["params"], pi=8.0, target_k=20)
        params = params_from_config(spec)
        assert abs(params.k - 20) <= 1

    def test_explicit_form(self):
        derived = params_from_config(BASE["params"])
        spec = {
            "n": 4, "f": 1, "delta": 0.005, "rho": 5e-4, "pi": 2.0,
            "sync_interval": derived.sync_interval,
            "max_wait": derived.max_wait,
            "way_off": derived.way_off,
        }
        params = params_from_config(spec)
        assert params.sync_interval == derived.sync_interval

    def test_missing_keys_named(self):
        with pytest.raises(ConfigurationError, match="delta"):
            params_from_config({"n": 4, "f": 1, "rho": 5e-4, "pi": 2.0})

    def test_explicit_form_unknown_key_named(self):
        derived = params_from_config(BASE["params"])
        spec = {
            "n": 4, "f": 1, "delta": 0.005, "rho": 5e-4, "pi": 2.0,
            "sync_interval": derived.sync_interval,
            "max_wait": derived.max_wait,
            "way_off": derived.way_off,
            "sync_intervall": 1.0,  # typo must be named, not ignored
        }
        with pytest.raises(ConfigurationError, match="sync_intervall"):
            params_from_config(spec)

    def test_explicit_form_missing_companions_named(self):
        spec = dict(BASE["params"], sync_interval=0.1)
        with pytest.raises(ConfigurationError, match="max_wait"):
            params_from_config(spec)

    def test_derived_form_mixed_key_named(self):
        spec = dict(BASE["params"], max_wait=0.01)  # explicit key, no sync_interval
        with pytest.raises(ConfigurationError, match="max_wait"):
            params_from_config(spec)


class TestDelayFromConfig:
    def test_none_passthrough(self):
        assert delay_from_config(None, 0.005) is None

    def test_named_models(self):
        assert isinstance(delay_from_config({"model": "uniform"}, 0.005),
                          UniformDelay)
        assert isinstance(delay_from_config({"model": "jittered"}, 0.005),
                          JitteredDelay)

    def test_extra_kwargs_forwarded(self):
        model = delay_from_config({"model": "fixed", "value": 0.002}, 0.005)
        assert model.value == 0.002

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError, match="delay"):
            delay_from_config({"model": "teleport"}, 0.005)


class TestScenarioFromConfig:
    def test_minimal_config(self):
        scenario = scenario_from_config(BASE)
        assert scenario.duration == 2.0
        assert scenario.seed == 3
        assert scenario.clock_factory == "wander"

    def test_clock_selection(self):
        scenario = scenario_from_config(dict(BASE, clocks="extremal"))
        assert scenario.clock_factory == "extremal"

    def test_loss_and_sampling_options(self):
        scenario = scenario_from_config(dict(BASE, loss_rate=0.05,
                                             sample_interval=0.1,
                                             stagger_phases=False))
        assert scenario.loss_rate == 0.05
        assert scenario.sample_interval == 0.1
        assert scenario.stagger_phases is False

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="scenario"):
            scenario_from_config(dict(BASE, scenario="chaos"))

    def test_unknown_clock_rejected(self):
        with pytest.raises(ConfigurationError, match="clock"):
            scenario_from_config(dict(BASE, clocks="sundial"))

    def test_missing_params_rejected(self):
        with pytest.raises(ConfigurationError, match="params"):
            scenario_from_config({"scenario": "benign"})

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            scenario_from_config(dict(BASE, durration=5.0))
        assert "durration" in str(excinfo.value)
        assert "duration" in str(excinfo.value)  # known keys are listed

    def test_scenario_shorthand_excludes_declarative_keys(self):
        plan = {"kind": "rotating", "strategy": {"name": "standard-mix"}}
        with pytest.raises(ConfigurationError, match="scenario"):
            scenario_from_config(dict(BASE, plan=plan))

    def test_declarative_config_without_shorthand(self):
        config = {
            "params": BASE["params"],
            "duration": 2.0,
            "seed": 3,
            "plan": {"kind": "rotating",
                     "strategy": {"name": "standard-mix"}},
        }
        scenario = scenario_from_config(config)
        assert scenario.plan_builder is not None
        assert scenario.is_declarative()

    def test_config_scenario_runs(self):
        config = dict(BASE, scenario="mobile-byzantine", duration=6.0)
        result = run(scenario_from_config(config))
        assert result.corruptions
        assert result.max_deviation(1.0) <= result.params.bounds().max_deviation


class TestLoadScenario:
    def test_round_trip_via_file(self, tmp_path):
        path = tmp_path / "experiment.json"
        path.write_text(json.dumps(BASE))
        scenario = load_scenario(path)
        assert scenario.duration == 2.0

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_scenario(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            load_scenario(path)

    def test_non_object_root(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="object"):
            load_scenario(path)

    def test_cli_integration(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cli.json"
        path.write_text(json.dumps(dict(BASE, duration=2.0)))
        code = main(["run", "--config", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Theorem 5 verdict" in out
        assert "n=4 f=1" in out
