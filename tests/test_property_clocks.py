"""Property-based tests for hardware clocks: eq. (2) and inversion."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.drift import clamp_rate, wander_schedule
from repro.clocks.hardware import FixedRateClock, PiecewiseRateClock

rhos = st.floats(min_value=1e-6, max_value=0.5, allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


@st.composite
def piecewise_clock(draw):
    rho = draw(rhos)
    n_segments = draw(st.integers(1, 6))
    starts = sorted(draw(st.lists(
        st.floats(0.0, 100.0, allow_nan=False), min_size=n_segments,
        max_size=n_segments, unique=True)))
    if starts[0] != 0.0:
        starts[0] = 0.0
    rates = [clamp_rate(draw(st.floats(0.5, 2.0, allow_nan=False)), rho)
             for _ in range(n_segments)]
    offset = draw(st.floats(-100.0, 100.0, allow_nan=False))
    return PiecewiseRateClock(rho, list(zip(starts, rates)), offset=offset), rho


@given(clock_rho=piecewise_clock(), t1=times, t2=times)
def test_eq2_drift_bound(clock_rho, t1, t2):
    """eq. (2) holds for every pair of real times."""
    clock, rho = clock_rho
    lo, hi = min(t1, t2), max(t1, t2)
    elapsed = clock.read(hi) - clock.read(lo)
    span = hi - lo
    assert elapsed >= span / (1 + rho) - 1e-6 * (1 + span)
    assert elapsed <= span * (1 + rho) + 1e-6 * (1 + span)


@given(clock_rho=piecewise_clock(), tau=times)
def test_inverse_roundtrip(clock_rho, tau):
    clock, _ = clock_rho
    assert abs(clock.real_time_at(clock.read(tau)) - tau) <= 1e-6 * (1 + tau)


@given(clock_rho=piecewise_clock(), tau=times,
       duration=st.floats(0.0, 100.0, allow_nan=False))
def test_real_time_after_is_consistent(clock_rho, tau, duration):
    """real_time_after advances the hardware reading by exactly the
    requested local duration."""
    clock, _ = clock_rho
    fire_at = clock.real_time_after(tau, duration)
    assert fire_at >= tau - 1e-9
    advanced = clock.read(fire_at) - clock.read(tau)
    assert abs(advanced - duration) <= 1e-6 * (1 + duration)


@given(clock_rho=piecewise_clock(), t1=times, t2=times)
def test_monotonicity(clock_rho, t1, t2):
    clock, _ = clock_rho
    if t1 < t2:
        assert clock.read(t1) <= clock.read(t2)
        if t2 - t1 > 1e-9 * (1 + t2):  # beyond float round-off
            assert clock.read(t1) < clock.read(t2)


@settings(max_examples=25)
@given(rho=rhos, seed=st.integers(0, 2**31), step=st.floats(0.1, 5.0))
def test_wander_clock_satisfies_eq2(rho, seed, step):
    schedule = wander_schedule(rho, step=step, horizon=50.0,
                               rng=random.Random(seed))
    clock = PiecewiseRateClock(rho, schedule)
    for t1, t2 in [(0.0, 50.0), (10.0, 11.0), (3.3, 47.0)]:
        elapsed = clock.read(t2) - clock.read(t1)
        span = t2 - t1
        assert span / (1 + rho) - 1e-9 <= elapsed <= span * (1 + rho) + 1e-9


@given(rho=rhos, rate_seed=st.floats(0.0, 1.0), tau=times,
       adj=st.floats(-1e3, 1e3, allow_nan=False))
def test_logical_clock_bias_identity(rho, rate_seed, tau, adj):
    """B(tau) = C(tau) - tau for any clock and adjustment."""
    from repro.clocks.logical import LogicalClock

    rate = clamp_rate(1.0 + (rate_seed - 0.5) * rho, rho)
    clock = LogicalClock(FixedRateClock(rho, rate=rate), adj=adj)
    assert abs(clock.bias(tau) - (clock.read(tau) - tau)) < 1e-9
