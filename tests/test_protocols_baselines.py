"""Unit tests for the baseline protocols and the registry."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.params import ProtocolParams
from repro.errors import ConfigurationError
from repro.protocols import (
    default_max_step,
    protocol_factory,
    registered_protocols,
)
from repro.protocols.base import register_protocol
from repro.runner.builders import benign_scenario, default_params, recovery_scenario
from repro.runner.experiment import run


def fast_params(n=4, f=1):
    return default_params(n=n, f=f)


class TestRegistry:
    def test_all_protocols_registered(self):
        names = registered_protocols()
        for expected in ("sync", "drift-only", "averaging",
                         "minimal-correction", "round-based"):
            assert expected in names

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="registered"):
            protocol_factory("no-such-protocol")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_protocol("sync")(lambda *a, **k: None)


class TestDriftOnly:
    def test_never_adjusts(self):
        result = run(benign_scenario(fast_params(), duration=2.0,
                                     protocol="drift-only"))
        for clock in result.clocks.values():
            assert clock.adjustments == []

    def test_deviation_grows_with_drift(self):
        """Without synchronization, extremal clocks diverge linearly."""
        from repro.runner.scenario import extremal_clocks
        params = fast_params()
        result = run(benign_scenario(params, duration=5.0, protocol="drift-only",
                                     clock_factory=extremal_clocks))
        early = result.deviation_series()[4][1]
        late = result.deviation_series()[-1][1]
        assert late > early
        # Mutual drift rate ~ (1+rho) - 1/(1+rho) ~ 2*rho.
        expected = 5.0 * ((1 + params.rho) - 1 / (1 + params.rho))
        assert late == pytest.approx(expected, rel=0.1)


class TestAveraging:
    def test_benign_performance_fine(self):
        params = fast_params()
        result = run(benign_scenario(params, duration=3.0, protocol="averaging"))
        assert result.max_deviation(warmup=1.0) < params.bounds().max_deviation


class TestMinimalCorrection:
    def test_default_max_step_formula(self):
        params = fast_params()
        expected = 4 * params.epsilon + 2 * params.rho * params.sync_interval
        assert default_max_step(params) == pytest.approx(expected)

    def test_corrections_are_clamped(self):
        params = fast_params()
        result = run(recovery_scenario(params, duration=4.0,
                                       protocol="minimal-correction"))
        step = default_max_step(params)
        victim = result.processes[0]
        assert all(abs(r.correction) <= step + 1e-12 for r in victim.sync_records)

    def test_recovery_much_slower_than_sync(self):
        """The paper's Section 1.1 claim: bounded corrections delay
        recovery. Same displacement, same duration — Sync recovers,
        minimal-correction is still far away."""
        params = fast_params()
        duration = 6.0
        sync_result = run(recovery_scenario(params, duration=duration, seed=7,
                                            protocol="sync"))
        mc_result = run(recovery_scenario(params, duration=duration, seed=7,
                                          protocol="minimal-correction"))
        sync_rec = sync_result.recovery()
        mc_rec = mc_result.recovery()
        assert sync_rec.all_recovered
        assert (not mc_rec.all_recovered
                or mc_rec.max_recovery_time > 5 * sync_rec.max_recovery_time)


class TestRoundBased:
    def test_benign_performance_fine(self):
        params = fast_params()
        result = run(benign_scenario(params, duration=3.0, protocol="round-based"))
        assert result.max_deviation(warmup=1.0) < params.bounds().max_deviation

    def test_round_state_lost_on_recovery(self):
        params = fast_params()
        result = run(recovery_scenario(params, duration=4.0, protocol="round-based"))
        victim = result.processes[0]
        # After release, the victim's round counter restarted: its
        # records' round numbers are not monotone over the whole run.
        rounds = [r.round_no for r in victim.sync_records]
        assert rounds, "victim synced at least once"
        assert any(b <= a for a, b in zip(rounds, rounds[1:])) or rounds[0] == 1


class TestCustomFactory:
    def test_scenario_accepts_callable_protocol(self):
        from repro.core.sync import SyncProcess

        built = []

        def factory(runtime, params, start_phase):
            process = SyncProcess(runtime, params,
                                  start_phase=start_phase, pings_per_peer=2)
            built.append(process)
            return process

        result = run(benign_scenario(fast_params(), duration=1.0, protocol=factory))
        assert len(built) == result.params.n
