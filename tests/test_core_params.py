"""Unit tests for protocol parameters and Theorem 5 bounds."""

from __future__ import annotations

import math

import pytest

from repro.core.params import ProtocolParams
from repro.errors import ParameterError


def make(n=7, f=2, delta=0.005, rho=5e-4, pi=2.0, sync_interval=0.18,
         max_wait=0.0101, way_off=1.0, **kw):
    return ProtocolParams(n=n, f=f, delta=delta, rho=rho, pi=pi,
                          sync_interval=sync_interval, max_wait=max_wait,
                          way_off=way_off, **kw)


class TestValidation:
    def test_valid_params_pass(self):
        make()

    def test_n_below_3f_plus_1_rejected(self):
        with pytest.raises(ParameterError, match="3f"):
            make(n=6, f=2)

    def test_minimum_n_accepted(self):
        make(n=7, f=2)

    def test_f_zero_rejected(self):
        with pytest.raises(ParameterError):
            make(f=0, n=7)

    def test_max_wait_below_2_delta_rejected(self):
        with pytest.raises(ParameterError, match="MaxWait"):
            make(max_wait=0.009)

    def test_sync_interval_below_2_max_wait_rejected(self):
        with pytest.raises(ParameterError, match="SyncInt"):
            make(sync_interval=0.015, max_wait=0.0101)

    def test_k_below_5_rejected(self):
        with pytest.raises(ParameterError, match="K"):
            make(pi=0.5)  # T ~ 0.2 -> K = 2

    def test_way_off_too_small_rejected(self):
        with pytest.raises(ParameterError, match="WayOff"):
            make(way_off=0.01)

    def test_strict_false_skips_validation(self):
        params = make(n=6, f=2, strict=False)
        assert params.n == 6

    def test_negative_delta_rejected(self):
        with pytest.raises(ParameterError):
            make(delta=-1.0)

    def test_negative_rho_rejected(self):
        with pytest.raises(ParameterError):
            make(rho=-0.1)


class TestDerivedQuantities:
    def test_t_interval_formula(self):
        params = make()
        expected = (1 + params.rho) * params.sync_interval + 2 * params.max_wait
        assert params.t_interval == pytest.approx(expected)

    def test_k_is_floor_pi_over_t(self):
        params = make()
        assert params.k == math.floor(params.pi / params.t_interval)

    def test_epsilon_defaults_to_delta_times_drift(self):
        params = make()
        assert params.epsilon == pytest.approx(params.delta * (1 + params.rho))

    def test_explicit_epsilon_respected(self):
        params = make(epsilon=0.123, way_off=10.0)
        assert params.epsilon == 0.123


class TestTheorem5Bounds:
    def test_c_formula(self):
        params = make()
        bounds = params.bounds()
        t = params.t_interval
        expected = (17 * params.epsilon + 18 * params.rho * t) / (2 ** params.k - 3)
        assert bounds.c == pytest.approx(expected)

    def test_max_deviation_formula(self):
        params = make()
        bounds = params.bounds()
        expected = 16 * params.epsilon + 18 * params.rho * params.t_interval + 4 * bounds.c
        assert bounds.max_deviation == pytest.approx(expected)

    def test_logical_drift_formula(self):
        params = make()
        bounds = params.bounds()
        assert bounds.logical_drift == pytest.approx(
            params.rho + bounds.c / (2 * params.t_interval))

    def test_discontinuity_formula(self):
        params = make()
        bounds = params.bounds()
        assert bounds.discontinuity == pytest.approx(params.epsilon + bounds.c / 2)

    def test_d_half_width_formula(self):
        params = make()
        bounds = params.bounds()
        expected = 8 * params.epsilon + 8 * params.rho * params.t_interval + 2 * bounds.c
        assert bounds.d_half_width == pytest.approx(expected)

    def test_larger_k_shrinks_c(self):
        """The Section 4.1 tradeoff: more Syncs per period -> smaller C
        -> accuracy approaches the hardware drift."""
        tight = make(pi=8.0)
        loose = make(pi=2.0)
        assert tight.k > loose.k
        assert tight.bounds().c < loose.bounds().c
        assert tight.bounds().logical_drift < loose.bounds().logical_drift

    def test_c_vanishes_as_k_grows(self):
        params = make(pi=16.0)
        assert params.bounds().logical_drift == pytest.approx(params.rho, rel=1e-3)

    def test_recovery_intervals_positive(self):
        assert make().bounds().recovery_intervals >= 1


class TestDerive:
    def test_derive_produces_valid_params(self):
        params = ProtocolParams.derive(n=7, f=2, delta=0.005, rho=5e-4, pi=2.0)
        params.validate()

    def test_derive_hits_target_k(self):
        params = ProtocolParams.derive(n=7, f=2, delta=0.001, rho=1e-4, pi=10.0,
                                       target_k=20)
        assert abs(params.k - 20) <= 1

    def test_derive_way_off_matches_appendix(self):
        params = ProtocolParams.derive(n=7, f=2, delta=0.005, rho=5e-4, pi=2.0)
        bounds = params.bounds()
        assert params.way_off == pytest.approx(bounds.way_off_required)

    def test_derive_rejects_too_short_pi(self):
        with pytest.raises(ParameterError, match="K >= 5"):
            ProtocolParams.derive(n=7, f=2, delta=0.1, rho=1e-4, pi=1.0)

    def test_derive_minimum_network(self):
        params = ProtocolParams.derive(n=4, f=1, delta=0.005, rho=5e-4, pi=2.0)
        assert params.n == 4


class TestScaled:
    def test_scaled_inflates_tunables_not_truth(self):
        base = ProtocolParams.derive(n=7, f=2, delta=0.005, rho=5e-4, pi=4.0)
        inflated = base.scaled(delta_factor=2.0)
        assert inflated.delta == base.delta            # true network unchanged
        assert inflated.max_wait > base.max_wait       # tunables grew
        assert inflated.way_off > base.way_off

    def test_scaled_identity(self):
        base = ProtocolParams.derive(n=7, f=2, delta=0.005, rho=5e-4, pi=4.0)
        same = base.scaled()
        assert same.max_wait == pytest.approx(base.max_wait)
