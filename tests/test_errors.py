"""Tests for the exception hierarchy: every package error is a ReproError."""

from __future__ import annotations

import pytest

from repro.errors import (
    AdversaryError,
    ClockError,
    ConfigurationError,
    MeasurementError,
    ParameterError,
    ReproError,
    SimulationError,
    TopologyError,
)


ALL_ERRORS = [
    ConfigurationError,
    ParameterError,
    TopologyError,
    SimulationError,
    ClockError,
    AdversaryError,
    MeasurementError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(error_type):
    assert issubclass(error_type, ReproError)
    with pytest.raises(ReproError):
        raise error_type("boom")


def test_parameter_error_is_configuration_error():
    """Parameter mistakes are a species of configuration mistake, so a
    caller guarding scenario setup with ConfigurationError catches both."""
    assert issubclass(ParameterError, ConfigurationError)


def test_topology_error_is_configuration_error():
    assert issubclass(TopologyError, ConfigurationError)


def test_single_catch_covers_package_failures():
    """The advertised catch-all: a single except ReproError handles any
    failure the package raises by design."""
    from repro.core.params import ProtocolParams

    caught = []
    try:
        ProtocolParams.derive(n=3, f=1, delta=0.005, rho=5e-4, pi=2.0)
    except ReproError as exc:
        caught.append(exc)
    assert len(caught) == 1
    assert isinstance(caught[0], ParameterError)
