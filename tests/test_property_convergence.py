"""Property-based tests for the Figure 1 convergence function.

These encode the invariants the Appendix A proof leans on, checked over
randomized estimate sets: validity (the correction targets a point
pinned by good values), Byzantine-independence (liars can't push the
statistics past good extremes), and the contraction behaviour.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.convergence import PaperConvergence, paper_order_statistics
from repro.core.estimation import ClockEstimate

CF = PaperConvergence()

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
small = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)
accuracy = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)


def est(peer, d, a=0.0):
    return ClockEstimate(peer=peer, distance=d, accuracy=a)


@given(distances=st.lists(small, min_size=7, max_size=7), way_off=st.floats(0.1, 1e4))
def test_correction_always_finite(distances, way_off):
    estimates = [est(i, d) for i, d in enumerate(distances)]
    correction = CF.correction(estimates, f=2, way_off=way_off)
    assert math.isfinite(correction)


@given(
    good=st.lists(small, min_size=5, max_size=5),
    liars=st.lists(finite, min_size=2, max_size=2),
)
def test_statistics_pinned_by_good_values_with_f_liars(good, liars):
    """With f=2 liars among 7, m is at most the largest good value and
    M at least the smallest good value — the selection lemma."""
    estimates = [est(i, d) for i, d in enumerate(good)]
    estimates += [est(len(good) + i, d) for i, d in enumerate(liars)]
    m, big_m = paper_order_statistics(estimates, f=2)
    assert m <= max(good) + 1e-9
    assert big_m >= min(good) - 1e-9


@given(
    good=st.lists(small, min_size=5, max_size=5),
    liars=st.lists(finite, min_size=2, max_size=2),
    way_off=st.floats(1.0, 1e4),
)
def test_correction_lands_in_good_hull_with_own_clock(good, liars, way_off):
    """Validity: the new clock position (correction) lies within the
    convex hull of {good distances} U {0} — liars cannot drag the clock
    outside what good processors and the own clock span."""
    estimates = [est(i, d) for i, d in enumerate(good)]
    estimates += [est(len(good) + i, d) for i, d in enumerate(liars)]
    correction = CF.correction(estimates, f=2, way_off=way_off)
    lo = min(min(good), 0.0)
    hi = max(max(good), 0.0)
    assert lo - 1e-9 <= correction <= hi + 1e-9


@given(offsets=st.lists(small, min_size=7, max_size=7))
def test_translation_equivariance(offsets):
    """Shifting every estimate by a constant shifts the correction by
    the same constant (clock-frame independence), provided both runs
    take the same branch — guaranteed here by a huge WayOff."""
    shift = 13.25
    base = [est(i, d) for i, d in enumerate(offsets)]
    shifted = [est(i, d + shift) for i, d in enumerate(offsets)]
    c0 = CF.correction(base, f=2, way_off=1e9)
    c1 = CF.correction(shifted, f=2, way_off=1e9)
    # The own-clock term (the 0 in min/max) breaks exact equivariance;
    # but the branch condition makes the correction differ by at most
    # the shift.
    assert c1 - c0 <= shift + 1e-6
    assert c1 - c0 >= -1e-6


@given(value=small)
def test_unanimous_estimates_move_at_most_halfway(value):
    """If every peer reports the same offset x (and own clock is
    credible), the correction is x/2 for x outside [0,0] — never
    overshooting the peers."""
    estimates = [est(i, value) for i in range(7)]
    correction = CF.correction(estimates, f=2, way_off=abs(value) + 1.0)
    if value >= 0:
        assert correction == max(value, 0.0) / 2.0 or math.isclose(correction, value / 2.0)
    assert abs(correction) <= abs(value) / 2.0 + 1e-9


@given(
    distances=st.lists(small, min_size=7, max_size=7),
    accuracies=st.lists(accuracy, min_size=7, max_size=7),
)
def test_way_off_jump_lands_between_statistics(distances, accuracies):
    """In the else-branch, the new position (m+M)/2 is the midpoint of
    the selected interval."""
    estimates = [est(i, d, a) for i, (d, a) in enumerate(zip(distances, accuracies))]
    m, big_m = paper_order_statistics(estimates, f=2)
    correction = CF.correction(estimates, f=2, way_off=1e-12)
    if not (m >= -1e-12 and big_m <= 1e-12):
        assert math.isclose(correction, (m + big_m) / 2.0)


@given(
    distances=st.lists(small, min_size=7, max_size=7),
    accuracies=st.lists(accuracy, min_size=7, max_size=7),
)
def test_m_at_most_big_m_plus_spread(distances, accuracies):
    """Sanity of the statistics: m <= M whenever at least f+1
    processors' intervals overlap; in general m can exceed M only due
    to disjoint reading windows, never by more than the data allows."""
    estimates = [est(i, d, a) for i, (d, a) in enumerate(zip(distances, accuracies))]
    m, big_m = paper_order_statistics(estimates, f=2)
    overs = sorted(e.overestimate for e in estimates)
    unders = sorted((e.underestimate for e in estimates), reverse=True)
    assert m == overs[2]
    assert big_m == unders[2]


@settings(max_examples=30)
@given(
    biases=st.lists(st.floats(-10.0, 10.0, allow_nan=False), min_size=7, max_size=7),
)
def test_contraction_of_span_without_errors(biases):
    """Driftless, error-free network: applying the convergence function
    at every node simultaneously never increases the bias span (the
    Property 1/3 contraction of Section 4.3)."""
    n, f = 7, 2
    new_biases = []
    for p in range(n):
        estimates = [est(q, biases[q] - biases[p]) for q in range(n)]
        correction = CF.correction(estimates, f=f, way_off=1e9)
        new_biases.append(biases[p] + correction)
    assert max(new_biases) - min(new_biases) <= max(biases) - min(biases) + 1e-9
