"""Tier-1 wiring for tools/check_determinism.py.

The simulation must be a pure function of ``(config, seed)``; the tool
runs the E1 workload twice and compares the serialized summaries
byte-for-byte.  Running it as a test means any change that reorders RNG
draws or introduces hidden state fails the suite, not just a nightly
job someone has to read.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import repro


def test_check_determinism_tool_passes():
    root = pathlib.Path(repro.__file__).resolve().parents[2]
    result = subprocess.run(
        [sys.executable, str(root / "tools" / "check_determinism.py")],
        capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "identical" in result.stdout
