"""Unit tests for the trace recorder."""

from __future__ import annotations

from repro.core.sync import SyncRecord
from repro.metrics.trace import TraceRecorder
from repro.runtime.messages import Message, Ping


def sync_record(node=0, round_no=1, real_time=1.0, own_discarded=False):
    return SyncRecord(node_id=node, round_no=round_no, real_time=real_time,
                      local_before=real_time, correction=0.0, m=0.0, big_m=0.0,
                      own_discarded=own_discarded, replies=3)


def message(sender=0, recipient=1):
    return Message(sender=sender, recipient=recipient, payload=Ping(nonce=1),
                   sent_at=0.0, delivered_at=0.001, msg_id=0)


def test_messages_recorded_only_when_enabled():
    off = TraceRecorder(record_messages=False)
    off.on_message(message())
    assert off.messages == []

    on = TraceRecorder(record_messages=True)
    on.on_message(message())
    assert len(on.messages) == 1
    assert on.messages[0].kind == "Ping"


def test_sync_records_accumulate():
    trace = TraceRecorder()
    trace.on_sync(sync_record(node=0, real_time=1.0))
    trace.on_sync(sync_record(node=1, real_time=2.0))
    assert len(trace.syncs) == 2


def test_syncs_for_filters_by_node():
    trace = TraceRecorder()
    trace.on_sync(sync_record(node=0))
    trace.on_sync(sync_record(node=1))
    trace.on_sync(sync_record(node=0, round_no=2))
    assert [r.round_no for r in trace.syncs_for(0)] == [1, 2]


def test_syncs_between_window():
    trace = TraceRecorder()
    for t in (0.5, 1.5, 2.5):
        trace.on_sync(sync_record(real_time=t))
    assert [r.real_time for r in trace.syncs_between(1.0, 2.0)] == [1.5]


def test_discarded_own_clock_filter():
    trace = TraceRecorder()
    trace.on_sync(sync_record(own_discarded=False))
    trace.on_sync(sync_record(own_discarded=True))
    assert len(trace.discarded_own_clock()) == 1


def test_corruption_actions_recorded():
    trace = TraceRecorder()
    trace.on_corruption(3, 1.0, "break_in", "silent")
    trace.on_corruption(3, 2.0, "release", "silent")
    assert [(r.node, r.time, r.action, r.strategy) for r in trace.corruptions] == [
        (3, 1.0, "break_in", "silent"),
        (3, 2.0, "release", "silent"),
    ]


def rescan_for(trace, node):
    return [r for r in trace.syncs if r.node_id == node]


def rescan_between(trace, lo, hi):
    return [r for r in trace.syncs if lo <= r.real_time <= hi]


def test_indexed_queries_match_rescan():
    """The per-node index and bisected window must agree exactly with a
    linear rescan of `syncs`."""
    trace = TraceRecorder()
    times = [0.1, 0.4, 0.4, 1.0, 2.5, 2.5, 3.0, 7.75]
    for i, t in enumerate(times):
        trace.on_sync(sync_record(node=i % 3, round_no=i, real_time=t))
    for node in (0, 1, 2, 9):
        assert trace.syncs_for(node) == rescan_for(trace, node)
    for lo, hi in ((0.0, 10.0), (0.4, 0.4), (0.5, 2.5), (2.5, 3.0),
                   (4.0, 5.0), (8.0, 9.0), (3.0, 1.0)):
        assert trace.syncs_between(lo, hi) == rescan_between(trace, lo, hi)


def test_syncs_between_includes_boundaries():
    trace = TraceRecorder()
    for t in (1.0, 2.0, 3.0):
        trace.on_sync(sync_record(real_time=t))
    assert [r.real_time for r in trace.syncs_between(1.0, 3.0)] \
        == [1.0, 2.0, 3.0]


def test_index_survives_direct_append():
    """Fixtures sometimes append to `syncs` directly; queries must still
    agree with a rescan (the index rebuilds lazily)."""
    trace = TraceRecorder()
    trace.on_sync(sync_record(node=0, real_time=1.0))
    trace.syncs.append(sync_record(node=1, round_no=2, real_time=2.0))
    trace.on_sync(sync_record(node=0, round_no=3, real_time=3.0))
    assert trace.syncs_for(1) == rescan_for(trace, 1)
    assert trace.syncs_for(0) == rescan_for(trace, 0)
    assert trace.syncs_between(0.0, 5.0) == trace.syncs


def test_syncs_for_returns_copy():
    trace = TraceRecorder()
    trace.on_sync(sync_record(node=0))
    first = trace.syncs_for(0)
    first.clear()
    assert len(trace.syncs_for(0)) == 1


def test_indexed_queries_on_live_run_match_rescan():
    from repro.runner.builders import default_params, mobile_byzantine_scenario
    from repro.runner.experiment import run

    params = default_params(n=4, f=1)
    result = run(mobile_byzantine_scenario(params, duration=8.0, seed=4))
    trace = result.trace
    assert [r.real_time for r in trace.syncs] \
        == sorted(r.real_time for r in trace.syncs)
    for node in range(params.n):
        assert trace.syncs_for(node) == rescan_for(trace, node)
    mid = trace.syncs[len(trace.syncs) // 2].real_time
    assert trace.syncs_between(1.0, mid) == rescan_between(trace, 1.0, mid)
