"""Tests for the advisory sync health monitor."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.sync import SyncRecord
from repro.errors import ConfigurationError
from repro.runner.builders import (
    benign_scenario,
    default_params,
    recovery_scenario,
    warmup_for,
)
from repro.runner.experiment import run
from repro.service.monitor import MonitorThresholds, SyncHealthMonitor


def record(node=0, replies=3, correction=0.0, own_discarded=False, t=1.0,
           round_no=1):
    return SyncRecord(node_id=node, round_no=round_no, real_time=t,
                      local_before=t, correction=correction, m=0.0, big_m=0.0,
                      own_discarded=own_discarded, replies=replies)


@pytest.fixture
def params():
    return default_params(n=4, f=1)


class TestRules:
    def test_way_off_alert(self, params):
        monitor = SyncHealthMonitor(params, node_id=0)
        monitor.on_sync(record(own_discarded=True, correction=-0.7))
        assert monitor.alert_counts() == {"way-off": 1}
        assert "recovered" in monitor.alerts[0].detail

    def test_other_nodes_records_ignored(self, params):
        monitor = SyncHealthMonitor(params, node_id=0)
        monitor.on_sync(record(node=2, own_discarded=True))
        assert monitor.alerts == []

    def test_starvation_needs_streak(self, params):
        monitor = SyncHealthMonitor(
            params, node_id=0,
            thresholds=MonitorThresholds(starvation_streak=3))
        for i in range(2):
            monitor.on_sync(record(replies=0, round_no=i))
        assert monitor.alert_counts() == {}
        monitor.on_sync(record(replies=0, round_no=3))
        assert monitor.alert_counts() == {"estimation-starvation": 1}

    def test_streak_resets_on_healthy_sync(self, params):
        monitor = SyncHealthMonitor(
            params, node_id=0,
            thresholds=MonitorThresholds(starvation_streak=2))
        monitor.on_sync(record(replies=0))
        monitor.on_sync(record(replies=3))  # healthy: resets
        monitor.on_sync(record(replies=0))
        assert monitor.alert_counts() == {}

    def test_large_correction_alert(self, params):
        monitor = SyncHealthMonitor(params, node_id=0)
        big = 3.0 * params.bounds().discontinuity
        monitor.on_sync(record(correction=big))
        assert monitor.alert_counts() == {"large-corrections": 1}

    def test_way_off_jump_not_double_flagged(self, params):
        """The recovery jump is expected to be large: it raises way-off,
        not large-corrections."""
        monitor = SyncHealthMonitor(params, node_id=0)
        monitor.on_sync(record(correction=-5.0, own_discarded=True))
        assert monitor.alert_counts() == {"way-off": 1}

    def test_callback_invoked(self, params):
        seen = []
        monitor = SyncHealthMonitor(params, node_id=0, on_alert=seen.append)
        monitor.on_sync(record(own_discarded=True))
        assert len(seen) == 1 and seen[0].kind == "way-off"

    def test_bad_threshold_rejected(self, params):
        with pytest.raises(ConfigurationError):
            SyncHealthMonitor(params, node_id=0,
                              thresholds=MonitorThresholds(min_replies_fraction=0.0))


class TestLiveWiring:
    def test_recovering_node_raises_way_off(self):
        params = default_params(n=4, f=1)
        monitors = {}

        from repro.protocols.base import protocol_factory
        inner = protocol_factory("sync")

        def factory(runtime, params_, start_phase):
            process = inner(runtime, params_, start_phase)
            monitor = SyncHealthMonitor(params_, runtime.node_id)
            process.sync_listeners.append(monitor.on_sync)
            monitors[runtime.node_id] = monitor
            return process

        result = run(recovery_scenario(params, duration=6.0, seed=11,
                                       protocol=factory))
        assert result.recovery().all_recovered
        victim_alerts = monitors[0].alert_counts()
        assert victim_alerts.get("way-off", 0) >= 1
        # Healthy nodes stay quiet.
        for node in (1, 2, 3):
            assert monitors[node].alert_counts().get("way-off", 0) == 0

    def test_benign_run_is_silent(self):
        params = default_params(n=4, f=1)
        monitors = {}

        from repro.protocols.base import protocol_factory
        inner = protocol_factory("sync")

        def factory(runtime, params_, start_phase):
            process = inner(runtime, params_, start_phase)
            monitor = SyncHealthMonitor(params_, runtime.node_id)
            process.sync_listeners.append(monitor.on_sync)
            monitors[runtime.node_id] = monitor
            return process

        run(benign_scenario(params, duration=5.0, seed=12, protocol=factory))
        for monitor in monitors.values():
            assert monitor.alerts == []


class TestWindowedReAlerting:
    """The `window` threshold is the re-alert period of the streak rules
    (regression: it was documented but never read)."""

    def test_persistent_starvation_realerts_every_window(self, params):
        monitor = SyncHealthMonitor(
            params, node_id=0,
            thresholds=MonitorThresholds(starvation_streak=3, window=4))
        for i in range(11):
            monitor.on_sync(record(replies=0, round_no=i, t=float(i)))
        # Fires at streaks 3, 7, 11 — once per window, not once ever
        # and not on every starved sync.
        assert monitor.alert_counts() == {"estimation-starvation": 3}
        assert [a.real_time for a in monitor.alerts] == [2.0, 6.0, 10.0]

    def test_starvation_window_resets_with_streak(self, params):
        monitor = SyncHealthMonitor(
            params, node_id=0,
            thresholds=MonitorThresholds(starvation_streak=2, window=3))
        for i in range(2):
            monitor.on_sync(record(replies=0, round_no=i))
        monitor.on_sync(record(replies=3))  # healthy: full reset
        for i in range(2):
            monitor.on_sync(record(replies=0, round_no=10 + i))
        # Each episode alerts at its own streak threshold.
        assert monitor.alert_counts() == {"estimation-starvation": 2}

    def test_persistent_large_corrections_realert_every_window(self, params):
        monitor = SyncHealthMonitor(
            params, node_id=0, thresholds=MonitorThresholds(window=5))
        big = 3.0 * params.bounds().discontinuity
        for i in range(11):
            monitor.on_sync(record(correction=big, round_no=i, t=float(i)))
        # Fires on syncs 1, 6, 11 (first, then one per window).
        assert monitor.alert_counts() == {"large-corrections": 3}
        assert [a.real_time for a in monitor.alerts] == [0.0, 5.0, 10.0]

    def test_large_correction_streak_resets_on_normal_sync(self, params):
        monitor = SyncHealthMonitor(
            params, node_id=0, thresholds=MonitorThresholds(window=8))
        big = 3.0 * params.bounds().discontinuity
        monitor.on_sync(record(correction=big))
        monitor.on_sync(record(correction=0.0))
        monitor.on_sync(record(correction=big))
        # Each isolated oversized correction alerts (streak restarts).
        assert monitor.alert_counts() == {"large-corrections": 2}

    def test_bad_window_rejected(self, params):
        with pytest.raises(ConfigurationError):
            SyncHealthMonitor(params, node_id=0,
                              thresholds=MonitorThresholds(window=0))


class TestEdgeCases:
    def test_exact_fraction_boundary_is_not_starved(self, params):
        """The rule is strictly-fewer-than: exactly min_replies_fraction
        of peers answering is healthy."""
        # n=4 -> 3 peers; threshold 0.5 -> 1.5 replies; 2/3 > 0.5 healthy,
        # and with fraction 2/3 exactly, 2 replies is NOT starved.
        monitor = SyncHealthMonitor(
            params, node_id=0,
            thresholds=MonitorThresholds(min_replies_fraction=2.0 / 3.0,
                                         starvation_streak=1))
        monitor.on_sync(record(replies=2))
        assert monitor.alert_counts() == {}
        monitor.on_sync(record(replies=1))  # 1/3 < 2/3: starved
        assert monitor.alert_counts() == {"estimation-starvation": 1}

    def test_on_alert_sees_already_recorded_alert(self, params):
        """The callback runs after the alert is appended, so a callback
        reading monitor state observes a consistent view."""
        observed = []

        def callback(alert):
            observed.append((alert.kind, len(monitor.alerts),
                             monitor.alerts[-1] is alert))

        monitor = SyncHealthMonitor(params, node_id=0, on_alert=callback)
        monitor.on_sync(record(own_discarded=True))
        assert observed == [("way-off", 1, True)]

    def test_alert_order_within_one_sync(self, params):
        """A single record can trip way-off and starvation; alerts are
        raised in rule order (way-off, starvation, large-corrections)."""
        seen = []
        monitor = SyncHealthMonitor(
            params, node_id=0, on_alert=lambda a: seen.append(a.kind),
            thresholds=MonitorThresholds(starvation_streak=1))
        monitor.on_sync(record(replies=0, own_discarded=True))
        assert seen == ["way-off", "estimation-starvation"]

    def test_alert_counts_after_mixed_alerts(self, params):
        monitor = SyncHealthMonitor(
            params, node_id=0,
            thresholds=MonitorThresholds(starvation_streak=1, window=100))
        big = 3.0 * params.bounds().discontinuity
        monitor.on_sync(record(own_discarded=True))      # way-off
        monitor.on_sync(record(replies=0))               # starvation
        monitor.on_sync(record(correction=big))          # large-correction
        monitor.on_sync(record(own_discarded=True))      # way-off again
        assert monitor.alert_counts() == {
            "way-off": 2,
            "estimation-starvation": 1,
            "large-corrections": 1,
        }

    def test_obs_bus_receives_alert_events(self, params):
        from repro.obs import EventBus

        bus = EventBus()
        published = []
        bus.subscribe(published.append)
        monitor = SyncHealthMonitor(params, node_id=0)
        monitor.obs = bus
        monitor.on_sync(record(own_discarded=True))
        assert [e.kind for e in published] == ["monitor.alert"]
        assert published[0].data["kind"] == "way-off"
        assert published[0].node == 0
