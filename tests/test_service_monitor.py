"""Tests for the advisory sync health monitor."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.sync import SyncRecord
from repro.errors import ConfigurationError
from repro.runner.builders import (
    benign_scenario,
    default_params,
    recovery_scenario,
    warmup_for,
)
from repro.runner.experiment import run
from repro.service.monitor import MonitorThresholds, SyncHealthMonitor


def record(node=0, replies=3, correction=0.0, own_discarded=False, t=1.0,
           round_no=1):
    return SyncRecord(node_id=node, round_no=round_no, real_time=t,
                      local_before=t, correction=correction, m=0.0, big_m=0.0,
                      own_discarded=own_discarded, replies=replies)


@pytest.fixture
def params():
    return default_params(n=4, f=1)


class TestRules:
    def test_way_off_alert(self, params):
        monitor = SyncHealthMonitor(params, node_id=0)
        monitor.on_sync(record(own_discarded=True, correction=-0.7))
        assert monitor.alert_counts() == {"way-off": 1}
        assert "recovered" in monitor.alerts[0].detail

    def test_other_nodes_records_ignored(self, params):
        monitor = SyncHealthMonitor(params, node_id=0)
        monitor.on_sync(record(node=2, own_discarded=True))
        assert monitor.alerts == []

    def test_starvation_needs_streak(self, params):
        monitor = SyncHealthMonitor(
            params, node_id=0,
            thresholds=MonitorThresholds(starvation_streak=3))
        for i in range(2):
            monitor.on_sync(record(replies=0, round_no=i))
        assert monitor.alert_counts() == {}
        monitor.on_sync(record(replies=0, round_no=3))
        assert monitor.alert_counts() == {"estimation-starvation": 1}

    def test_streak_resets_on_healthy_sync(self, params):
        monitor = SyncHealthMonitor(
            params, node_id=0,
            thresholds=MonitorThresholds(starvation_streak=2))
        monitor.on_sync(record(replies=0))
        monitor.on_sync(record(replies=3))  # healthy: resets
        monitor.on_sync(record(replies=0))
        assert monitor.alert_counts() == {}

    def test_large_correction_alert(self, params):
        monitor = SyncHealthMonitor(params, node_id=0)
        big = 3.0 * params.bounds().discontinuity
        monitor.on_sync(record(correction=big))
        assert monitor.alert_counts() == {"large-corrections": 1}

    def test_way_off_jump_not_double_flagged(self, params):
        """The recovery jump is expected to be large: it raises way-off,
        not large-corrections."""
        monitor = SyncHealthMonitor(params, node_id=0)
        monitor.on_sync(record(correction=-5.0, own_discarded=True))
        assert monitor.alert_counts() == {"way-off": 1}

    def test_callback_invoked(self, params):
        seen = []
        monitor = SyncHealthMonitor(params, node_id=0, on_alert=seen.append)
        monitor.on_sync(record(own_discarded=True))
        assert len(seen) == 1 and seen[0].kind == "way-off"

    def test_bad_threshold_rejected(self, params):
        with pytest.raises(ConfigurationError):
            SyncHealthMonitor(params, node_id=0,
                              thresholds=MonitorThresholds(min_replies_fraction=0.0))


class TestLiveWiring:
    def test_recovering_node_raises_way_off(self):
        params = default_params(n=4, f=1)
        monitors = {}

        from repro.protocols.base import protocol_factory
        inner = protocol_factory("sync")

        def factory(node_id, sim, network, clock, params_, start_phase):
            process = inner(node_id, sim, network, clock, params_, start_phase)
            monitor = SyncHealthMonitor(params_, node_id)
            process.sync_listeners.append(monitor.on_sync)
            monitors[node_id] = monitor
            return process

        result = run(recovery_scenario(params, duration=6.0, seed=11,
                                       protocol=factory))
        assert result.recovery().all_recovered
        victim_alerts = monitors[0].alert_counts()
        assert victim_alerts.get("way-off", 0) >= 1
        # Healthy nodes stay quiet.
        for node in (1, 2, 3):
            assert monitors[node].alert_counts().get("way-off", 0) == 0

    def test_benign_run_is_silent(self):
        params = default_params(n=4, f=1)
        monitors = {}

        from repro.protocols.base import protocol_factory
        inner = protocol_factory("sync")

        def factory(node_id, sim, network, clock, params_, start_phase):
            process = inner(node_id, sim, network, clock, params_, start_phase)
            monitor = SyncHealthMonitor(params_, node_id)
            process.sync_listeners.append(monitor.on_sync)
            monitors[node_id] = monitor
            return process

        run(benign_scenario(params, duration=5.0, seed=12, protocol=factory))
        for monitor in monitors.values():
            assert monitor.alerts == []
