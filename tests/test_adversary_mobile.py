"""Unit tests for the mobile adversary: plans, audit, seize/release."""

from __future__ import annotations

import math

import pytest

from repro.adversary.base import ByzantineStrategy
from repro.adversary.mobile import (
    MobileAdversary,
    PlannedCorruption,
    audit_f_limited,
    rotating_plan,
    round_robin_plan,
    single_burst_plan,
)
from repro.adversary.strategies import SilentStrategy
from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.errors import AdversaryError
from repro.metrics.trace import TraceRecorder
from repro.net.links import FixedDelay
from repro.net.network import Network
from repro.net.topology import full_mesh
from repro.runtime.process import Process
from repro.sim.runtime import SimRuntime


def corruption(node, start, end):
    return PlannedCorruption(node=node, start=start, end=end, strategy=SilentStrategy())


class TestAudit:
    def test_empty_plan_passes(self):
        audit_f_limited([], f=1, pi=1.0)

    def test_single_corruption_passes(self):
        audit_f_limited([corruption(0, 0.0, 5.0)], f=1, pi=1.0)

    def test_simultaneous_f_passes(self):
        plan = [corruption(0, 0.0, 5.0), corruption(1, 0.0, 5.0)]
        audit_f_limited(plan, f=2, pi=1.0)

    def test_simultaneous_f_plus_one_fails(self):
        plan = [corruption(i, 0.0, 5.0) for i in range(3)]
        with pytest.raises(AdversaryError, match="not 2-limited"):
            audit_f_limited(plan, f=2, pi=1.0)

    def test_hop_without_pi_gap_fails(self):
        """Leaving node 0 and immediately corrupting node 1: a window
        covering the boundary sees both."""
        plan = [corruption(0, 0.0, 1.0), corruption(1, 1.5, 2.5)]
        with pytest.raises(AdversaryError):
            audit_f_limited(plan, f=1, pi=1.0)

    def test_hop_with_pi_gap_passes(self):
        plan = [corruption(0, 0.0, 1.0), corruption(1, 2.01, 3.0)]
        audit_f_limited(plan, f=1, pi=1.0)

    def test_touching_windows_count_conservatively(self):
        """Exactly PI separation is borderline; the closed-interval
        reading rejects it."""
        plan = [corruption(0, 0.0, 1.0), corruption(1, 2.0, 3.0)]
        with pytest.raises(AdversaryError):
            audit_f_limited(plan, f=1, pi=1.0)

    def test_same_node_counted_once(self):
        """Re-corrupting the same node does not double-count."""
        plan = [corruption(0, 0.0, 1.0), corruption(0, 1.2, 2.0)]
        audit_f_limited(plan, f=1, pi=1.0)

    def test_unbounded_total_faults_allowed(self):
        """The whole point: dozens of corruptions over time are fine as
        long as each PI window sees at most f."""
        plan = []
        t = 0.0
        for i in range(50):
            plan.append(corruption(i % 5, t, t + 0.5))
            t += 0.5 + 1.0 + 0.01
        audit_f_limited(plan, f=1, pi=1.0)

    def test_bad_pi_rejected(self):
        with pytest.raises(AdversaryError):
            audit_f_limited([], f=1, pi=0.0)

    def test_empty_interval_rejected(self):
        with pytest.raises(AdversaryError):
            corruption(0, 1.0, 1.0)


class TestPlanGenerators:
    def test_rotating_plan_is_f_limited(self):
        plan = rotating_plan(n=7, f=2, pi=1.0, duration=30.0,
                             strategy_factory=lambda n, e: SilentStrategy())
        audit_f_limited(plan, f=2, pi=1.0)

    def test_rotating_plan_covers_all_nodes(self):
        plan = rotating_plan(n=7, f=2, pi=1.0, duration=30.0,
                             strategy_factory=lambda n, e: SilentStrategy())
        assert {c.node for c in plan} == set(range(7))

    def test_rotating_plan_episode_size(self):
        plan = rotating_plan(n=7, f=3, pi=1.0, duration=5.0,
                             strategy_factory=lambda n, e: SilentStrategy())
        starts = sorted({c.start for c in plan})
        for s in starts:
            assert sum(1 for c in plan if c.start == s) == 3

    def test_round_robin_is_1_limited(self):
        plan = round_robin_plan(n=4, pi=1.0, duration=20.0,
                                strategy_factory=lambda n, e: SilentStrategy())
        audit_f_limited(plan, f=1, pi=1.0)
        assert all(
            len({c.node for c in plan if c.start == s}) == 1
            for s in {c.start for c in plan}
        )

    def test_single_burst(self):
        plan = single_burst_plan([1, 3], start=2.0, dwell=0.5,
                                 strategy_factory=lambda n, e: SilentStrategy())
        assert [(c.node, c.start, c.end) for c in plan] == [(1, 2.0, 2.5), (3, 2.0, 2.5)]

    def test_rotating_plan_rejects_bad_dwell(self):
        with pytest.raises(AdversaryError):
            rotating_plan(n=4, f=1, pi=1.0, duration=5.0,
                          strategy_factory=lambda n, e: SilentStrategy(), dwell=0.0)


class RecordingStrategy(ByzantineStrategy):
    name = "recording"

    def __init__(self):
        self.events = []

    def on_break_in(self, process, rng):
        self.events.append(("in", process.real_now()))

    def on_message(self, process, message, rng):
        self.events.append(("msg", message.payload))

    def on_leave(self, process, rng):
        self.events.append(("out", process.real_now()))


class Victim(Process):
    def __init__(self, node_id, sim, network):
        super().__init__(SimRuntime(node_id, sim, network,
                                    LogicalClock(FixedRateClock(rho=0.0))))
        self.inbox = []

    def on_message(self, message):
        self.inbox.append(message.payload)


class TestMobileAdversaryExecution:
    def build(self, sim, n=3):
        network = Network(sim, full_mesh(n), FixedDelay(delta=0.01, value=0.004))
        victims = [Victim(i, sim, network) for i in range(n)]
        for v in victims:
            network.bind(v)
        return network, victims

    def test_break_in_and_release_lifecycle(self, sim):
        network, victims = self.build(sim)
        strategy = RecordingStrategy()
        plan = [PlannedCorruption(node=1, start=1.0, end=2.0, strategy=strategy)]
        MobileAdversary(sim, network, plan, f=1, pi=0.5).install()
        sim.schedule(1.5, lambda: network.send(0, 1, "to-adversary"))
        sim.schedule(2.5, lambda: network.send(0, 1, "to-recovered"))
        sim.run()
        assert strategy.events == [("in", 1.0), ("msg", "to-adversary"), ("out", 2.0)]
        assert victims[1].inbox == ["to-recovered"]

    def test_audit_enforced_at_construction(self, sim):
        network, _ = self.build(sim)
        plan = [corruption(0, 0.0, 1.0), corruption(1, 0.0, 1.0)]
        with pytest.raises(AdversaryError):
            MobileAdversary(sim, network, plan, f=1, pi=0.5)

    def test_enforce_false_bypasses_audit(self, sim):
        network, _ = self.build(sim)
        plan = [corruption(0, 0.0, 1.0), corruption(1, 0.0, 1.0)]
        MobileAdversary(sim, network, plan, f=1, pi=0.5, enforce=False)

    def test_trace_records_actions(self, sim):
        network, _ = self.build(sim)
        trace = TraceRecorder()
        plan = [PlannedCorruption(node=2, start=0.5, end=1.0, strategy=SilentStrategy())]
        MobileAdversary(sim, network, plan, f=1, pi=0.5, trace=trace).install()
        sim.run()
        assert [(r.node, r.action) for r in trace.corruptions] == [
            (2, "break_in"), (2, "release")]

    def test_never_released_corruption(self, sim):
        network, victims = self.build(sim)
        plan = [PlannedCorruption(node=0, start=0.5, end=math.inf,
                                  strategy=SilentStrategy())]
        adversary = MobileAdversary(sim, network, plan, f=1, pi=0.5)
        adversary.install()
        sim.schedule(1.0, lambda: network.send(1, 0, "x"))
        sim.run()
        assert victims[0].inbox == []
        assert victims[0].controlled

    def test_corruption_intervals_exported(self, sim):
        network, _ = self.build(sim)
        plan = [PlannedCorruption(node=1, start=0.1, end=0.9, strategy=SilentStrategy())]
        adversary = MobileAdversary(sim, network, plan, f=1, pi=0.5)
        intervals = adversary.corruption_intervals()
        assert len(intervals) == 1
        assert (intervals[0].node, intervals[0].start, intervals[0].end) == (1, 0.1, 0.9)
