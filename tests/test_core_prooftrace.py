"""Tests for the executable Claim 8 induction certificate."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.prooftrace import (
    build_certificate,
    check_width_recursion_closes,
    minimum_viable_d,
)
from repro.runner.builders import default_params


class TestCertificate:
    def test_certificate_checks_out_for_default_params(self):
        cert = build_certificate(default_params())
        assert cert.all_ok
        assert cert.consistent

    @pytest.mark.parametrize("n,f,delta,rho,pi", [
        (4, 1, 0.005, 5e-4, 2.0),
        (7, 2, 0.001, 1e-4, 4.0),
        (10, 3, 0.02, 1e-3, 8.0),
        (16, 5, 0.005, 1e-5, 2.0),
    ])
    def test_certificate_across_parameter_space(self, n, f, delta, rho, pi):
        params = default_params(n=n, f=f, delta=delta, rho=rho, pi=pi)
        cert = build_certificate(params)
        assert cert.all_ok and cert.consistent

    def test_implied_deviation_equals_theorem_bound(self):
        """Independent derivations: 2D + 2pT from the induction vs
        16e + 18pT + 4C from params.bounds() — identical algebra."""
        params = default_params()
        cert = build_certificate(params)
        assert cert.implied_deviation == pytest.approx(cert.theorem_bound,
                                                       rel=1e-12)

    def test_widths_never_exceed_2d(self):
        cert = build_certificate(default_params(), intervals=60)
        assert all(step.width <= 2 * cert.d_half_width + 1e-12
                   for step in cert.steps)

    def test_containment_chain(self):
        cert = build_certificate(default_params())
        assert all(step.containment_ok for step in cert.steps)

    def test_recovery_allowance_halves(self):
        cert = build_certificate(default_params())
        allowances = [s.recovery_allowance for s in cert.steps]
        for before, after in zip(allowances, allowances[1:]):
            if after > 0:
                assert after <= before / 2.0 + 1e-12

    def test_recovery_converges_in_logarithmic_steps(self):
        params = default_params()
        cert = build_certificate(params)
        # WayOff / 2^i < C/2 within ~log2(2*WayOff/C) steps.
        import math
        expected = math.ceil(math.log2(2 * params.way_off / params.bounds().c)) + 1
        assert cert.recovery_steps_to_converge <= expected

    def test_certificate_matches_params_recovery_intervals(self):
        params = default_params()
        cert = build_certificate(params)
        assert abs(cert.recovery_steps_to_converge
                   - params.bounds().recovery_intervals) <= 1


class TestWidthRecursion:
    def test_closes_for_valid_params(self):
        assert check_width_recursion_closes(default_params())

    def test_minimum_viable_d_below_appendix_d(self):
        """The Appendix's D = 8e + 8pT + 2C has headroom over the bare
        fixed point D = 8e + 7pT + 2C."""
        params = default_params()
        assert minimum_viable_d(params) <= params.bounds().d_half_width

    def test_fixed_point_formula(self):
        """Directly verify the algebra: mapping 2D_min through one
        interval returns exactly 2D_min."""
        params = default_params()
        d_min = minimum_viable_d(params)
        bounds = params.bounds()
        mapped = (7 / 8) * (2 * d_min + 2 * params.rho * params.t_interval) \
            + 2 * params.epsilon + bounds.c / 2
        assert mapped == pytest.approx(2 * d_min)
