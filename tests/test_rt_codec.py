"""Binary wire-codec tests: round-trips, rejection, cross-version.

The acceptance bar for the codec (ISSUE, PR 6): every registered
payload round-trips byte-for-byte through the binary wire, corrupt or
truncated datagrams always surface as :class:`TransportError` (never a
bare ``struct.error``/``TypeError``/``KeyError``), and a JSON-wire node
interoperates with a binary-wire node because decoding sniffs the
leader byte rather than trusting the sender's configuration.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.errors import ConfigurationError
from repro.runtime.messages import AppPayload, Ping, Pong
from repro.rt.codec import (
    MAGIC,
    WIRE_VERSION,
    CodecVersionError,
    TransportError,
    decode_datagram,
    encode_datagram,
    encode_datagram_binary,
    encode_datagram_json,
    register_payload,
    registered_payloads,
)

#: One representative instance per stock payload, exercising negative
#: ints, non-representable-in-float32 floats, and nested generic bodies.
SAMPLES = [
    Ping(nonce=(1 << 40) + 3, round_no=12),
    Pong(nonce=7, clock_value=0.1 + 0.2),
    AppPayload(kind="audit", body={"x": [1, 2, 3], "note": "naïve ✓"}),
]


@dataclasses.dataclass(frozen=True)
class Lease:
    """A deployment-style extension payload with its own binary tag."""

    holder: int
    expires: float


@dataclasses.dataclass(frozen=True)
class Gossip:
    """A deployment-style extension with no packer (generic body)."""

    rumor: str


def _register_extensions() -> None:
    if "test-lease" not in registered_payloads():
        import struct
        fmt = struct.Struct("!id")
        register_payload(
            "test-lease", Lease, tag=200,
            pack=lambda p: fmt.pack(p.holder, p.expires),
            unpack=lambda b: Lease(*fmt.unpack(b)))
    if "test-gossip" not in registered_payloads():
        register_payload("test-gossip", Gossip)


_register_extensions()
ALL_SAMPLES = SAMPLES + [Lease(holder=3, expires=17.25),
                         Gossip(rumor="node 2 restarted")]


class TestBinaryRoundTrip:
    @pytest.mark.parametrize("payload", ALL_SAMPLES,
                             ids=lambda p: type(p).__name__)
    def test_roundtrip_preserves_payload(self, payload):
        datagram = encode_datagram_binary(3, 5, payload, 1.75)
        sender, recipient, decoded, sent_at = decode_datagram(datagram)
        assert (sender, recipient, sent_at) == (3, 5, 1.75)
        assert decoded == payload

    @pytest.mark.parametrize("payload", ALL_SAMPLES,
                             ids=lambda p: type(p).__name__)
    def test_reencode_is_byte_identical(self, payload):
        first = encode_datagram_binary(3, 5, payload, 1.75)
        _, _, decoded, _ = decode_datagram(first)
        assert encode_datagram_binary(3, 5, decoded, 1.75) == first

    def test_binary_leader_is_not_json(self):
        datagram = encode_datagram_binary(0, 1, Ping(nonce=1), 0.0)
        assert datagram[0] == MAGIC
        assert datagram[0] != ord("{")
        assert datagram[1] == WIRE_VERSION

    def test_binary_is_smaller_than_json(self):
        payload = Pong(nonce=123456, clock_value=3.14159)
        binary = encode_datagram_binary(0, 1, payload, 2.5)
        legacy = encode_datagram_json(0, 1, payload, 2.5)
        assert len(binary) < len(legacy) / 2

    def test_negative_sender_roundtrips(self):
        # Query clients identify with negative ids (outside the node-id
        # space); the header's sender field is signed on purpose.
        datagram = encode_datagram_binary(-1, 0, Ping(nonce=1), 0.0)
        sender, recipient, _, _ = decode_datagram(datagram)
        assert (sender, recipient) == (-1, 0)


class TestCrossVersion:
    @pytest.mark.parametrize("payload", ALL_SAMPLES,
                             ids=lambda p: type(p).__name__)
    def test_json_and_binary_decode_identically(self, payload):
        binary = decode_datagram(encode_datagram_binary(1, 2, payload, 0.5))
        legacy = decode_datagram(encode_datagram_json(1, 2, payload, 0.5))
        assert binary == legacy

    def test_encode_datagram_selects_wire(self):
        ping = Ping(nonce=4)
        assert encode_datagram(0, 1, ping, 0.0, wire="binary")[0] == MAGIC
        assert encode_datagram(0, 1, ping, 0.0, wire="json")[0] == ord("{")
        with pytest.raises(ConfigurationError):
            encode_datagram(0, 1, ping, 0.0, wire="yaml")

    def test_future_version_raises_version_error(self):
        datagram = bytearray(encode_datagram_binary(0, 1, Ping(nonce=1), 0.0))
        datagram[1] = WIRE_VERSION + 1
        with pytest.raises(CodecVersionError):
            decode_datagram(bytes(datagram))
        # ...and CodecVersionError is still a TransportError, so a
        # transport that only catches the base class stays correct.
        assert issubclass(CodecVersionError, TransportError)


class TestRejection:
    def test_empty_datagram_rejected(self):
        with pytest.raises(TransportError):
            decode_datagram(b"")

    def test_unknown_leader_rejected(self):
        with pytest.raises(TransportError):
            decode_datagram(b"\x00\x01\x02\x03")

    @pytest.mark.parametrize("payload", ALL_SAMPLES,
                             ids=lambda p: type(p).__name__)
    def test_every_truncation_rejected(self, payload):
        datagram = encode_datagram_binary(0, 1, payload, 0.0)
        for cut in range(len(datagram)):
            with pytest.raises(TransportError):
                decode_datagram(datagram[:cut])

    def test_fuzzed_tails_never_escape_transport_error(self):
        # Deterministic fuzz: valid header + garbage body must never
        # surface struct.error / UnicodeDecodeError / KeyError.
        rng = random.Random(1234)
        header = encode_datagram_binary(0, 1, Ping(nonce=1), 0.0)[:15]
        for _ in range(200):
            tail = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(0, 40)))
            try:
                decode_datagram(header + tail)
            except TransportError:
                pass

    def test_fuzzed_json_never_escapes_transport_error(self):
        rng = random.Random(99)
        for _ in range(200):
            body = "".join(chr(rng.randrange(32, 127))
                           for _ in range(rng.randrange(0, 40)))
            try:
                decode_datagram(b"{" + body.encode())
            except TransportError:
                pass


class TestRegistry:
    def test_stock_payloads_registered(self):
        registry = registered_payloads()
        assert registry["ping"] is Ping
        assert registry["pong"] is Pong
        assert registry["app"] is AppPayload

    def test_tag_requires_pack_and_unpack(self):
        @dataclasses.dataclass(frozen=True)
        class Half:
            x: int

        with pytest.raises(ConfigurationError):
            register_payload("test-half", Half, tag=201)

    def test_conflicting_tag_rejected(self):
        @dataclasses.dataclass(frozen=True)
        class TagThief:
            x: int

        with pytest.raises(ConfigurationError):
            register_payload("test-thief", TagThief, tag=1,  # ping's tag
                             pack=lambda p: b"", unpack=lambda b: TagThief(0))
