"""Unit tests for clock sampling and good-set tracking."""

from __future__ import annotations

import pytest

from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.errors import MeasurementError
from repro.metrics.sampler import (
    ClockSampler,
    ClockSamples,
    CorruptionInterval,
    faulty_at,
    good_set,
)


class TestCorruptionInterval:
    def test_overlap_semantics(self):
        c = CorruptionInterval(node=0, start=1.0, end=2.0)
        assert c.overlaps(0.0, 1.0)      # touch at start
        assert c.overlaps(2.0, 3.0)      # touch at end
        assert c.overlaps(1.5, 1.6)      # inside
        assert c.overlaps(0.0, 5.0)      # contains
        assert not c.overlaps(2.1, 3.0)
        assert not c.overlaps(0.0, 0.9)


class TestGoodSet:
    corruptions = [
        CorruptionInterval(0, 1.0, 2.0),
        CorruptionInterval(1, 5.0, 6.0),
    ]

    def test_all_good_before_faults(self):
        # Window is [max(0, -0.5), 0.5] = [0, 0.5]; node 0's corruption
        # only starts at 1.0, so everyone is still good.
        assert good_set(self.corruptions, tau=0.5, pi=1.0, n=3) == {0, 1, 2}

    def test_node_excluded_while_faulty(self):
        assert 0 not in good_set(self.corruptions, tau=1.5, pi=1.0, n=3)

    def test_node_excluded_during_pi_after_release(self):
        """Definition 3: the window [tau - PI, tau] must be clean."""
        assert 0 not in good_set(self.corruptions, tau=2.9, pi=1.0, n=3)
        assert 0 in good_set(self.corruptions, tau=3.1, pi=1.0, n=3)

    def test_window_clipped_at_zero(self):
        assert good_set([], tau=0.1, pi=10.0, n=2) == {0, 1}

    def test_faulty_at_instant(self):
        assert faulty_at(self.corruptions, 1.5) == {0}
        assert faulty_at(self.corruptions, 3.0) == set()
        assert faulty_at(self.corruptions, 5.0) == {1}


class TestClockSamples:
    def make(self):
        samples = ClockSamples(times=[0.0, 1.0, 2.0],
                               clocks={0: [0.0, 1.1, 2.2], 1: [0.5, 1.5, 2.5]})
        return samples

    def test_bias(self):
        samples = self.make()
        assert samples.bias(0, 1) == pytest.approx(0.1)
        assert samples.bias(1, 0) == pytest.approx(0.5)

    def test_biases_at(self):
        samples = self.make()
        assert samples.biases_at(2) == {0: pytest.approx(0.2), 1: pytest.approx(0.5)}
        assert samples.biases_at(2, nodes=[1]) == {1: pytest.approx(0.5)}

    def test_index_at_or_after(self):
        samples = self.make()
        assert samples.index_at_or_after(0.0) == 0
        assert samples.index_at_or_after(0.5) == 1
        assert samples.index_at_or_after(2.0) == 2
        with pytest.raises(MeasurementError):
            samples.index_at_or_after(2.5)

    def test_index_at_or_before(self):
        samples = self.make()
        assert samples.index_at_or_before(0.0) == 0
        assert samples.index_at_or_before(1.5) == 1
        assert samples.index_at_or_before(99.0) == 2
        with pytest.raises(MeasurementError):
            samples.index_at_or_before(-0.5)

    def test_len_and_n(self):
        samples = self.make()
        assert len(samples) == 3
        assert samples.n == 2


class TestClockSampler:
    def test_samples_on_grid(self, sim):
        clocks = {0: LogicalClock(FixedRateClock(rho=0.1, rate=1.1))}
        sampler = ClockSampler(sim, clocks, interval=0.5)
        sampler.start(until=2.0)
        sim.run()
        assert list(sampler.samples.times) == [0.0, 0.5, 1.0, 1.5, 2.0]
        assert sampler.samples.clocks[0][2] == pytest.approx(1.1)

    def test_bad_interval_rejected(self, sim):
        with pytest.raises(MeasurementError):
            ClockSampler(sim, {}, interval=0.0)

    def test_samples_reflect_adjustments(self, sim):
        clock = LogicalClock(FixedRateClock(rho=0.0))
        sampler = ClockSampler(sim, {0: clock}, interval=1.0)
        sampler.start(until=3.0)
        sim.schedule(1.5, lambda: clock.adjust(1.5, 10.0))
        sim.run()
        assert sampler.samples.clocks[0][1] == pytest.approx(1.0)
        assert sampler.samples.clocks[0][2] == pytest.approx(12.0)
