"""Tests for the per-node metrics registry and the standard collector."""

from __future__ import annotations

import math

import pytest

from repro.obs import EventBus, MetricsCollector, MetricsRegistry
from repro.obs.metricsreg import LATENCY_BUCKETS, Counter, Gauge, Histogram


class TestPrimitives:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.set(4)
        assert gauge.value == 4.0

    def test_histogram_buckets_and_stats(self):
        hist = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            hist.observe(value)
        assert hist.bucket_counts == [1, 1, 1]  # <=1, <=2, +inf tail
        assert hist.count == 3
        assert hist.min == 0.5 and hist.max == 5.0
        assert hist.mean == (0.5 + 1.5 + 5.0) / 3

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0


class TestLatencyBuckets:
    def test_shape_log_spaced_four_per_decade(self):
        # 10 us .. 10 s, four bounds per decade, strictly ascending.
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-5)
        assert LATENCY_BUCKETS[-1] == pytest.approx(10.0)
        assert len(LATENCY_BUCKETS) == 25
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        # Constant ratio between consecutive bounds: 10^(1/4)
        # (bounds are rounded to 12 decimals, hence the tolerance).
        ratio = 10.0 ** 0.25
        for lo, hi in zip(LATENCY_BUCKETS, LATENCY_BUCKETS[1:]):
            assert hi / lo == pytest.approx(ratio, rel=1e-6)

    def test_latency_classmethod_uses_default_buckets(self):
        hist = Histogram.latency()
        assert hist.buckets == LATENCY_BUCKETS
        hist.observe(0.003)
        assert sum(hist.bucket_counts) == 1


class TestPercentile:
    def test_empty_histogram_is_nan(self):
        assert math.isnan(Histogram(buckets=(1.0,)).percentile(0.5))
        assert math.isnan(Histogram().percentile(0.5))

    def test_quantile_out_of_range_raises(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.5)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)
        with pytest.raises(ValueError):
            hist.percentile(1.1)

    def test_single_bucket_interpolates_from_observed_min(self):
        # All mass in one bucket: the estimate interpolates between the
        # observed min and the bucket's upper bound, clamped to max.
        hist = Histogram(buckets=(1.0, 2.0))
        for value in (1.2, 1.4, 1.6, 1.8):
            hist.observe(value)
        p50 = hist.percentile(0.5)
        assert 1.2 <= p50 <= 1.8
        assert hist.percentile(0.0) == pytest.approx(1.2)
        assert hist.percentile(1.0) == pytest.approx(1.8)

    def test_overflow_bucket_reports_observed_max(self):
        # A quantile landing in the +inf tail has no upper bound to
        # interpolate toward: it must report the observed max.
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(50.0)
        hist.observe(70.0)
        assert hist.percentile(0.99) == 70.0

    def test_estimates_bracket_the_true_quantile(self):
        hist = Histogram.latency()
        samples = [i * 1e-4 for i in range(1, 101)]  # 0.1 ms .. 10 ms
        for value in samples:
            hist.observe(value)
        p50 = hist.percentile(0.5)
        # The estimate lands within the bucket containing the true
        # median (5 ms); one log bucket spans a 10^0.25 ratio.
        assert 5e-3 / (10 ** 0.25) <= p50 <= 5e-3 * (10 ** 0.25)
        assert hist.percentile(0.0) == pytest.approx(1e-4)
        assert hist.percentile(1.0) == pytest.approx(1e-2)

    def test_estimate_clamped_to_extremes(self):
        hist = Histogram(buckets=(10.0,))
        hist.observe(3.0)
        assert hist.percentile(0.5) == 3.0  # clamp: min == max == 3.0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x", 1) is registry.counter("x", 1)
        assert registry.counter("x", 1) is not registry.counter("x", 2)
        assert registry.gauge("x") is registry.gauge("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("syncs", 0).inc()
        registry.counter("syncs", 1).inc(2)
        registry.gauge("depth").set(17)
        registry.histogram("rtt", 0).observe(0.004)
        snap = registry.snapshot()
        assert snap["counters"]["syncs"] == {"0": 1.0, "1": 2.0}
        assert snap["gauges"]["depth"] == {"_": 17.0}
        rtt = snap["histograms"]["rtt"]["0"]
        assert rtt == {"count": 1, "sum": 0.004, "min": 0.004, "max": 0.004,
                       "mean": 0.004}

    def test_latency_histogram_get_or_create(self):
        registry = MetricsRegistry()
        hist = registry.latency_histogram("query_latency_seconds", 0)
        assert hist.buckets == LATENCY_BUCKETS
        assert registry.latency_histogram("query_latency_seconds", 0) is hist

    def test_snapshot_includes_bucket_layout(self):
        registry = MetricsRegistry()
        registry.histogram("lat", 0, buckets=(1.0, 2.0)).observe(1.5)
        entry = registry.snapshot()["histograms"]["lat"]["0"]
        assert entry["bucket_bounds"] == [1.0, 2.0]
        assert entry["bucket_counts"] == [0, 1, 0]  # last = +inf overflow
        # A bucket-less histogram stays lean: no bucket keys at all.
        registry.histogram("plain", 0).observe(1.0)
        plain = registry.snapshot()["histograms"]["plain"]["0"]
        assert "bucket_bounds" not in plain

    def test_snapshot_empty_histogram_has_null_extremes(self):
        registry = MetricsRegistry()
        registry.histogram("rtt", 0)
        entry = registry.snapshot()["histograms"]["rtt"]["0"]
        assert entry["min"] is None and entry["max"] is None

    def test_delta_subtracts_counters_only(self):
        registry = MetricsRegistry()
        registry.counter("syncs", 0).inc(3)
        registry.gauge("depth").set(5)
        before = registry.snapshot()
        registry.counter("syncs", 0).inc(2)
        registry.gauge("depth").set(9)
        delta = registry.delta(before)
        assert delta["counters"]["syncs"]["0"] == 2.0
        assert delta["gauges"]["depth"]["_"] == 9.0

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.histogram("rtt", 0).observe(0.001)
        registry.histogram("empty", 1)
        json.dumps(registry.snapshot())  # must not raise


class TestCollector:
    def publish_through(self, *publishes):
        bus = EventBus()
        collector = MetricsCollector()
        bus.subscribe(collector.on_event)
        for kind, node, data in publishes:
            bus.publish(kind, node=node, **data)
        return collector.registry

    def test_sync_complete_updates_node_series(self):
        registry = self.publish_through(
            ("sync.complete", 0, dict(round=1, correction=0.002, m=0.0,
                                      big_m=0.0, own_discarded=False,
                                      replies=3, local_before=1.0)),
            ("sync.complete", 0, dict(round=2, correction=0.0, m=0.0,
                                      big_m=0.0, own_discarded=True,
                                      replies=2, local_before=2.0)),
        )
        assert registry.counter("syncs_completed", 0).value == 2
        # Zero corrections do not count as applied.
        assert registry.counter("corrections_applied", 0).value == 1
        assert registry.counter("wayoff_jumps", 0).value == 1
        assert registry.histogram("correction_abs", 0).max == 0.002
        assert registry.histogram("replies", 0).count == 2

    def test_estimation_events(self):
        registry = self.publish_through(
            ("est.pong", 1, dict(peer=0, round=1, rtt=0.004, distance=0.0,
                                 accuracy=0.002)),
            ("est.timeout", 1, dict(peer=2, round=1)),
            ("sync.reply", 2, dict(peer=1)),
        )
        assert registry.histogram("estimation_rtt", 1).count == 1
        assert registry.counter("estimation_timeouts", 1).value == 1
        assert registry.counter("replies_sent", 2).value == 1

    def test_global_series(self):
        registry = self.publish_through(
            ("adv.break_in", 3, dict(strategy="liar")),
            ("adv.release", 3, dict(strategy="liar")),
            ("probe.violation", None, dict(probe="deviation", measured=1.0,
                                           bound=0.1)),
            ("monitor.alert", 0, dict(kind="way-off", detail="x")),
            ("net.deliver", 0, dict(recipient=1, kind="Ping", sent_at=0.0)),
            ("net.drop", 0, dict(recipient=1, reason="loss")),
        )
        # One corruption per break-in; the release does not double count.
        assert registry.counter("corruptions", 3).value == 1
        assert registry.counter("probe_violations").value == 1
        assert registry.counter("monitor_alerts").value == 1
        assert registry.counter("messages_delivered").value == 1
        assert registry.counter("messages_dropped").value == 1

    def test_queue_depth_sampling(self):
        collector = MetricsCollector()
        collector.sample_queue_depth(12)
        collector.sample_queue_depth(7)
        registry = collector.registry
        assert registry.gauge("queue_depth").value == 7.0
        assert registry.histogram("queue_depth_dist").count == 2
        assert registry.histogram("queue_depth_dist").max == 12
