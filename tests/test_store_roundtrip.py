"""Property tests: RunRecords -> ResultStore -> records is lossless.

Hypothesis drives randomized records through the columnar store — in
memory and across the on-disk chunk format — asserting float-exact
measures and ``==``-equal config dicts on the way back.  A companion
suite asserts that store aggregates are byte-identical between the
pure-python chunk path and the pyarrow/parquet fast path (skip-gated
on pyarrow), and that a 1000-run campaign summarized through the store
matches the legacy per-run ``runner.stats`` path bit for bit.
"""

from __future__ import annotations

import dataclasses
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import Theorem5Verdict
from repro.core.params import Theorem5Bounds
from repro.metrics.measures import AccuracyReport, RecoveryEvent, RecoveryReport
from repro.runner.campaign import Campaign
from repro.runner.records import RunPerf, RunRecord
from repro.runner.stats import (
    summarize_column,
    summarize_grouped,
    summarize_replications,
)
from repro.runner.store import HAVE_PYARROW, ResultStore, set_parquet

# Finite-or-infinite floats: nan is excluded because dataclass equality
# (the round-trip oracle) is nan-blind; nan persistence has its own
# dedicated test in test_runner_store.py.
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
measure_floats = st.floats(allow_nan=False, allow_infinity=True, width=64)
int64s = st.integers(min_value=-2**63, max_value=2**63 - 1)
small_ints = st.integers(min_value=0, max_value=2**40)

# JSON-round-trippable config values (the store's stated contract).
config_scalars = st.one_of(
    st.none(), st.booleans(), int64s, finite_floats,
    st.text(max_size=20),
)
config_values = st.recursive(
    config_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=8), children, max_size=3),
    ),
    max_leaves=8,
)
configs = st.dictionaries(st.text(max_size=8), config_values, max_size=4)

bounds_st = st.builds(
    Theorem5Bounds,
    t_interval=finite_floats, k=small_ints, c=finite_floats,
    max_deviation=finite_floats, logical_drift=finite_floats,
    discontinuity=finite_floats, d_half_width=finite_floats,
    way_off_required=finite_floats, recovery_intervals=small_ints,
)
verdict_st = st.builds(
    Theorem5Verdict,
    bounds=bounds_st, measured_deviation=finite_floats,
    measured_drift=finite_floats, measured_discontinuity=finite_floats,
    deviation_ok=st.booleans(), drift_ok=st.booleans(),
    discontinuity_ok=st.booleans(),
)
accuracy_st = st.builds(
    AccuracyReport, max_discontinuity=finite_floats,
    implied_drift=finite_floats, stretches=small_ints,
)
recovery_st = st.builds(
    RecoveryReport,
    events=st.lists(st.builds(
        RecoveryEvent, node=st.integers(min_value=0, max_value=100),
        released_at=finite_floats, rejoined_at=measure_floats,
        initial_distance=finite_floats), max_size=3),
    tolerance=finite_floats,
)
perf_st = st.builds(
    RunPerf, events_processed=small_ints, events_pushed=small_ints,
    events_cancelled=small_ints, cancelled_ratio=finite_floats,
    heap_high_water=small_ints, pending_events=small_ints,
)
percentiles_st = st.dictionaries(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    finite_floats, max_size=4,
)

records_st = st.lists(st.builds(
    RunRecord,
    index=st.integers(min_value=0, max_value=10**6),
    name=st.text(max_size=16),
    config=configs,
    seed=int64s,
    duration=finite_floats,
    warmup=finite_floats,
    verdict=st.none() | verdict_st,
    accuracy=st.none() | accuracy_st,
    deviation_percentiles=st.none() | percentiles_st,
    recovery=st.none() | recovery_st,
    envelope_occupancy=st.none() | finite_floats,
    corruption_count=small_ints,
    events_processed=small_ints,
    messages_delivered=small_ints,
    sync_executions=small_ints,
    perf=st.none() | perf_st,
    obs=st.none() | configs,
    scalar_fallback_reason=st.none() | st.text(max_size=16),
    error=st.none() | st.text(max_size=16),
), max_size=6)


@settings(max_examples=60, deadline=None)
@given(records=records_st)
def test_memory_round_trip_lossless(records):
    store = ResultStore.from_records(records)
    back = store.to_records()
    assert back == records
    for got, expected in zip(back, records):
        assert got.config == expected.config
        if expected.verdict is not None:
            # Float-exact, not approximately equal.
            assert got.verdict.measured_deviation \
                == expected.verdict.measured_deviation
            assert got.verdict.bounds == expected.verdict.bounds


@settings(max_examples=25, deadline=None)
@given(records=records_st)
def test_disk_round_trip_lossless(records, tmp_path_factory):
    store = ResultStore.from_records(records)
    target = tmp_path_factory.mktemp("store")
    store.save(target)
    assert ResultStore.load(target).to_records() == records


@settings(max_examples=25, deadline=None)
@given(records=records_st, split=st.integers(min_value=0, max_value=6))
def test_chunked_append_equals_bulk(records, split, tmp_path_factory):
    from repro.runner.store import append_to_dir

    split = min(split, len(records))
    target = tmp_path_factory.mktemp("chunks")
    append_to_dir(target, records[:split])
    append_to_dir(target, records[split:])
    assert ResultStore.load(target).to_records() == records


def _aggregate_everywhere(store: ResultStore) -> dict:
    """A deterministic battery of aggregates over a store."""
    query = store.query().where("error", "isnull")
    return {
        "agg": query.aggregate(
            n=("index", "count"),
            worst=("verdict.measured_deviation", "max"),
            mean=("verdict.measured_deviation", "mean"),
            total=("events_processed", "sum"),
        ),
        "grouped": store.query().group_by("name").aggregate(
            n=("index", "count"),
            mean=("duration", "mean")),
    }


@settings(max_examples=20, deadline=None)
@given(records=records_st)
def test_aggregates_identical_across_disk_round_trip(records,
                                                     tmp_path_factory):
    store = ResultStore.from_records(records)
    target = tmp_path_factory.mktemp("agg")
    store.save(target)
    assert _aggregate_everywhere(ResultStore.load(target)) \
        == _aggregate_everywhere(store)


@pytest.mark.skipif(not HAVE_PYARROW, reason="pyarrow not installed")
@settings(max_examples=20, deadline=None)
@given(records=records_st)
def test_aggregates_byte_identical_python_vs_parquet(records,
                                                     tmp_path_factory):
    """The two on-disk paths must answer every aggregate identically."""
    store = ResultStore.from_records(records)
    core_dir = tmp_path_factory.mktemp("core")
    parquet_dir = tmp_path_factory.mktemp("parquet")
    try:
        set_parquet(False)
        store.save(core_dir)
        set_parquet(True)
        store.save(parquet_dir)
    finally:
        set_parquet(None)
    core = _aggregate_everywhere(ResultStore.load(core_dir))
    parquet = _aggregate_everywhere(ResultStore.load(parquet_dir))
    assert core == parquet
    assert ResultStore.load(parquet_dir).to_records() == records


# ----------------------------------------------------------------------
# Acceptance: 1000 runs summarized through the store, byte-identical
# to the legacy per-run stats path.
# ----------------------------------------------------------------------


def test_thousand_run_campaign_stats_byte_identical(tmp_path):
    """Build a 1000-run campaign (a few real runs fanned out with
    deterministic measure perturbations), write it through the on-disk
    ResultStore, and check the existing runner.stats summaries are
    byte-identical to summarizing the in-memory records directly."""
    base = Campaign([{
        "name": f"acc-{seed}",
        "params": {"n": 4, "f": 1, "delta": 0.005, "rho": 5e-4, "pi": 2.0},
        "duration": 2.0,
        "seed": seed,
    } for seed in (1, 2, 3, 4)]).run().records

    records = []
    for index in range(1000):
        source = base[index % len(base)]
        # Deterministic, irregular perturbation; still a real float in
        # (0, 2x) of the measured value, different every run.
        wiggle = 1.0 + math.sin(index * 0.7311) * 0.5
        verdict = dataclasses.replace(
            source.verdict,
            measured_deviation=source.verdict.measured_deviation * wiggle)
        records.append(dataclasses.replace(
            source, index=index, verdict=verdict,
            config={**source.config, "seed": index}, seed=index))

    target = tmp_path / "thousand"
    ResultStore.from_records(records).save(target)
    store = ResultStore.load(target)
    assert store.n_runs == 1000

    # Legacy path: feed the records' values straight into runner.stats.
    legacy_values = [r.verdict.measured_deviation for r in records]
    legacy = summarize_replications(legacy_values)

    # Store path: same summary, computed from the loaded columns.
    via_store = summarize_column(
        store.query().where("error", "isnull"), "verdict.measured_deviation")
    assert via_store == legacy
    assert via_store.values == tuple(legacy_values)  # float-exact columns

    # Grouped variant agrees with hand-grouping the records.
    grouped = summarize_grouped(store, "name", "verdict.measured_deviation")
    for name in sorted({r.name for r in records}):
        hand = summarize_replications(
            [r.verdict.measured_deviation for r in records if r.name == name])
        assert grouped[name] == hand
