"""Live-cluster wiring tests (deterministic via the virtual loop, plus
one short real-asyncio smoke)."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs.bus import EventBus
from repro.rt.live import (
    aggregate_process_samples,
    build_cluster,
    default_live_params,
    make_live_clocks,
    run_live,
)
from repro.rt.virtualtime import VirtualTimeLoop


def virtual_run(duration=4.0, seed=3, n=4, f=1):
    params = default_live_params(n=n, f=f)
    loop = VirtualTimeLoop()
    cluster = build_cluster(params, loop, seed=seed, transport="loopback")
    cluster.start(sample_interval=0.1)
    loop.run_until(duration)
    cluster.sample_once()
    return params, cluster


class TestVirtualCluster:
    def test_sync_converges_under_bound(self):
        params, cluster = virtual_run()
        bound = params.bounds().max_deviation
        assert all(spread <= bound for _, spread in cluster.spread)
        # Converged: the last spread is far tighter than the first.
        assert cluster.spread[-1][1] < 0.5 * cluster.spread[0][1]

    def test_every_node_reports_a_series(self):
        params, cluster = virtual_run()
        assert set(cluster.series) == set(range(params.n))
        lengths = {len(samples) for samples in cluster.series.values()}
        assert len(lengths) == 1  # same sampling grid for everyone

    def test_bus_receives_live_events(self):
        bus = EventBus()
        kinds = []
        bus.subscribe(lambda event: kinds.append(event.kind))
        params = default_live_params()
        loop = VirtualTimeLoop()
        cluster = build_cluster(params, loop, seed=1, transport="loopback",
                                bus=bus)
        cluster.start(sample_interval=0.25)
        loop.run_until(2.0)
        assert "live.deviation" in kinds
        assert "live.spread" in kinds
        assert "live.sync" in kinds

    def test_deterministic_under_virtual_time(self):
        _, first = virtual_run(seed=9)
        _, second = virtual_run(seed=9)
        assert first.spread == second.spread
        assert first.series == second.series

    def test_time_service_fronts_live_clock(self):
        params, cluster = virtual_run()
        service = cluster.time_service(0)
        now = cluster.now()
        assert service.now() == pytest.approx(cluster.clocks[0].read(now),
                                              abs=1e-9)

    def test_stop_is_idempotent(self):
        _, cluster = virtual_run(duration=1.0)
        cluster.stop()
        cluster.stop()


class TestLiveClocks:
    def test_seed_determinism(self):
        params = default_live_params()
        a = make_live_clocks(params, seed=5)
        b = make_live_clocks(params, seed=5)
        assert all(a[n].read(1.0) == b[n].read(1.0) for n in a)

    def test_rates_within_drift_bound(self):
        params = default_live_params()
        for clock in make_live_clocks(params, seed=2).values():
            rate = clock.hardware.rate
            assert 1.0 / (1.0 + params.rho) <= rate <= 1.0 + params.rho

    def test_offsets_span_visible_disagreement(self):
        params = default_live_params()
        clocks = make_live_clocks(params, seed=0)
        readings = [clock.read(0.0) for clock in clocks.values()]
        assert max(readings) - min(readings) > 0.0


class TestAggregation:
    def test_buckets_require_all_nodes(self):
        samples = [
            {"node": 0, "tau": 0.05, "clock": 1.00},
            {"node": 1, "tau": 0.06, "clock": 1.02},
            {"node": 0, "tau": 0.15, "clock": 1.10},  # node 1 missing here
        ]
        series = aggregate_process_samples(samples, nodes=2,
                                           sample_interval=0.1)
        assert series == [(0.0, pytest.approx(0.02))]

    def test_latest_sample_wins_within_bucket(self):
        samples = [
            {"node": 0, "tau": 0.01, "clock": 5.0},
            {"node": 0, "tau": 0.09, "clock": 1.00},
            {"node": 1, "tau": 0.05, "clock": 1.01},
        ]
        series = aggregate_process_samples(samples, nodes=2,
                                           sample_interval=0.1)
        assert series == [(0.0, pytest.approx(0.01))]

    def test_negative_tau_stays_out_of_bucket_zero(self):
        # int() truncates toward zero, so a sample at tau in
        # (-interval, 0) used to land in bucket 0 and clobber the
        # legitimate t=0 samples with a wildly different clock value.
        samples = [
            {"node": 0, "tau": 0.04, "clock": 1.00},
            {"node": 1, "tau": 0.05, "clock": 1.01},
            {"node": 0, "tau": -0.05, "clock": 999.0},
        ]
        series = aggregate_process_samples(samples, nodes=2,
                                           sample_interval=0.1)
        assert series == [(0.0, pytest.approx(0.01))]


class TestTelemetryWiring:
    def test_build_cluster_attaches_telemetry(self):
        params = default_live_params()
        loop = VirtualTimeLoop()
        cluster = build_cluster(params, loop, seed=1, transport="loopback",
                                telemetry=True)
        assert cluster.telemetry is not None
        # Every process publishes into the telemetry bus.
        assert all(proc.obs is cluster.bus
                   for proc in cluster.processes.values())
        # Default stays uninstrumented: no bus on any process.
        bare = build_cluster(params, VirtualTimeLoop(), seed=1,
                             transport="loopback")
        assert bare.telemetry is None
        assert all(proc.obs is None for proc in bare.processes.values())

    def test_obsconfig_value_selects_subsystems(self):
        from repro.obs import ObsConfig

        params = default_live_params()
        cluster = build_cluster(params, VirtualTimeLoop(), seed=1,
                                transport="loopback",
                                telemetry=ObsConfig(spans=False,
                                                    probes=False))
        assert cluster.telemetry.tracer is None
        assert cluster.telemetry.probe is None
        assert cluster.telemetry.collector is not None

    def test_serve_metrics_scrape_round_trip(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            params = default_live_params(n=4, f=1)
            cluster = build_cluster(params, loop, seed=1,
                                    transport="loopback", telemetry=True)
            try:
                cluster.start(sample_interval=0.1)
                host, port = await cluster.serve_metrics()
                await asyncio.sleep(0.3)
                cluster.sample_once()
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET /metrics HTTP/1.0\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
            finally:
                cluster.stop()
            return raw.decode()

        body = asyncio.run(scenario())
        from repro.obs.expo import metric_families

        families = metric_families(body.partition("\r\n\r\n")[2])
        assert "repro_syncs_completed_total" in families
        assert "repro_transport_sent_total" in families
        assert "repro_cluster_spread" in families


def test_real_udp_smoke():
    """0.6 wall-clock seconds of genuine UDP Sync on localhost."""
    report = run_live(nodes=4, f=1, duration=0.6, transport="udp",
                      sample_interval=0.1, seed=1)
    assert report.bounded()
    assert all(rounds >= 1 for rounds in report.rounds.values())
    assert report.events_published > 0
    # Uninstrumented run: drop counters still reported off the
    # transports, but no telemetry plane exists.
    assert report.telemetry is False
    assert report.probe_violations is None
    assert report.metrics_snapshot is None
    for counters in report.transport_counters.values():
        assert counters["transport_malformed_dropped"] == 0
        assert counters["transport_misrouted_dropped"] == 0
        assert counters["transport_version_dropped"] == 0
        assert counters["transport_sent"] > 0


def test_telemetry_udp_run_with_metrics_port():
    """Full PR 7 surface in one short run: telemetry plane, scrape
    port, served queries — the report carries all of it."""
    report = run_live(nodes=4, f=1, duration=0.6, transport="udp",
                      sample_interval=0.1, seed=1, telemetry=True,
                      serve_base_port=0, metrics_port=0)
    assert report.telemetry is True
    assert report.probe_violations == 0
    assert report.metrics_port is not None
    snap = report.metrics_snapshot
    assert snap["counters"]["syncs_completed"]
    assert set(snap["counters"]["transport_sent"]) == {"0", "1", "2", "3"}
    assert set(report.query_ports) == set(range(4))
    assert report.queries_malformed == {node: 0 for node in range(4)}

    document = report.to_dict()
    import json

    parsed = json.loads(json.dumps(document))
    assert parsed["telemetry"] is True
    assert parsed["bounded"] is True
    assert parsed["probe_violations"] == 0
    assert parsed["metrics_port"] == report.metrics_port
    assert parsed["transport_counters"] == report.transport_counters
    assert "series" not in parsed  # per-node series summarized away


def test_mixed_wire_cluster_interops():
    """Version negotiation: a JSON-wire node Syncs with binary peers.

    Decoding sniffs the leader byte, so a cluster mid-rolling-upgrade
    (node 0 still sending legacy JSON, the rest binary) must converge
    exactly like a homogeneous one, with nothing dropped as malformed
    or version-skewed.
    """
    async def scenario():
        loop = asyncio.get_running_loop()
        params = default_live_params(n=4, f=1)
        cluster = build_cluster(params, loop, seed=1, transport="udp",
                                wire={0: "json"})
        try:
            addresses = {node: await udp.start()
                         for node, udp in cluster.transports.items()}
            for udp in cluster.transports.values():
                udp.set_peers(addresses)
            cluster.start(sample_interval=0.1)
            await asyncio.sleep(0.6)
            cluster.sample_once()
        finally:
            cluster.stop()
        drops = [(udp.malformed_dropped, udp.version_dropped,
                  udp.misrouted_dropped)
                 for udp in cluster.transports.values()]
        rounds = [proc.rounds_completed
                  for proc in cluster.processes.values()]
        return cluster, drops, rounds

    cluster, drops, rounds = asyncio.run(scenario())
    assert cluster.transports[0].wire == "json"
    assert cluster.transports[1].wire == "binary"
    assert all(drop == (0, 0, 0) for drop in drops)
    assert all(count >= 1 for count in rounds)
    bound = cluster.params.bounds().max_deviation
    assert cluster.spread and all(s <= bound for _, s in cluster.spread)
