"""Equivalence of the Figure 1 and Figure 2 formulations, by simulation.

The paper asserts Figure 2 is "just an alternative view of the real
protocol".  We run both implementations under identical seeds (hence
identical clocks, delays, adversary actions) and require the correction
sequences and clock trajectories to coincide up to float associativity
(the two formulations order the same additions differently, so exact
bit equality is not expected; 1e-9 absolute agreement is).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.sync_bias import BiasSyncProcess, make_bias_sync
from repro.runner.builders import (
    benign_scenario,
    default_params,
    mobile_byzantine_scenario,
    recovery_scenario,
    warmup_for,
)
from repro.runner.experiment import run


def fast_params(n=4, f=1):
    return default_params(n=n, f=f)


def run_pair(scenario_builder, **kwargs):
    fig1 = run(scenario_builder(**kwargs))
    fig2_scenario = scenario_builder(**kwargs)
    fig2_scenario = dataclasses.replace(fig2_scenario, protocol=make_bias_sync)
    fig2 = run(fig2_scenario)
    return fig1, fig2


def corrections_of(result, node):
    return [(r.round_no, r.correction) for r in result.processes[node].sync_records]


class TestEquivalence:
    def test_benign_trajectories_coincide(self):
        fig1, fig2 = run_pair(benign_scenario, params=fast_params(),
                              duration=4.0, seed=5,
                              initial_offset_spread=0.05)
        for node in range(4):
            c1 = corrections_of(fig1, node)
            c2 = corrections_of(fig2, node)
            assert len(c1) == len(c2)
            for (r1, v1), (r2, v2) in zip(c1, c2):
                assert r1 == r2
                assert v1 == pytest.approx(v2, abs=1e-9)

    def test_clock_samples_coincide(self):
        fig1, fig2 = run_pair(benign_scenario, params=fast_params(),
                              duration=4.0, seed=6)
        assert fig1.samples.times == fig2.samples.times
        for node in range(4):
            for a, b in zip(fig1.samples.clocks[node], fig2.samples.clocks[node]):
                assert a == pytest.approx(b, abs=1e-9)

    def test_byzantine_trajectories_coincide(self):
        fig1, fig2 = run_pair(mobile_byzantine_scenario, params=fast_params(),
                              duration=8.0, seed=7)
        assert [(c.node, c.start) for c in fig1.corruptions] == \
               [(c.node, c.start) for c in fig2.corruptions]
        for node in range(4):
            for (r1, v1), (r2, v2) in zip(corrections_of(fig1, node),
                                          corrections_of(fig2, node)):
                assert (r1, pytest.approx(v2, abs=1e-9)) == (r2, v1)

    def test_way_off_branch_coincides(self):
        """The recovery jump (line 12) must fire at the same round with
        the same magnitude in both formulations."""
        fig1, fig2 = run_pair(recovery_scenario, params=fast_params(),
                              duration=5.0, seed=8)
        jumps1 = [(r.node_id, r.round_no) for r in fig1.trace.syncs
                  if r.own_discarded]
        jumps2 = [(r.node_id, r.round_no) for r in fig2.trace.syncs
                  if r.own_discarded]
        assert jumps1 == jumps2
        assert jumps1, "the recovery scenario should exercise the branch"


class TestBiasProcessAlone:
    def test_meets_theorem5(self):
        params = fast_params()
        scenario = mobile_byzantine_scenario(params, duration=10.0, seed=9)
        scenario = dataclasses.replace(scenario, protocol=make_bias_sync)
        result = run(scenario)
        verdict = result.verdict(warmup_for(params))
        assert verdict.all_ok
        assert result.recovery().all_recovered

    def test_records_relative_frame_statistics(self):
        """SyncRecord.m / .big_m are stored in Figure 1's relative frame
        for cross-implementation comparability."""
        params = fast_params()
        scenario = benign_scenario(params, duration=2.0, seed=10)
        scenario = dataclasses.replace(scenario, protocol=make_bias_sync)
        result = run(scenario)
        for record in result.trace.syncs:
            assert abs(record.m) < 1.0  # relative, not an absolute bias
