"""Unit tests for the clock estimation procedure (Definition 4)."""

from __future__ import annotations

import math

import pytest

from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.core.estimation import (
    ClockEstimate,
    EstimationSession,
    self_estimate,
    timeout_estimate,
)
from repro.net.links import AsymmetricDelay, FixedDelay
from repro.runtime.messages import Ping, Pong
from repro.net.network import Network
from repro.net.topology import full_mesh
from repro.runtime.process import Process
from repro.sim.runtime import SimRuntime


class Responder(Process):
    """Answers pings honestly with its current clock."""

    def on_message(self, message):
        if isinstance(message.payload, Ping):
            self.send(message.sender,
                      Pong(nonce=message.payload.nonce, clock_value=self.local_now()))


class Estimator(Process):
    """Runs one estimation session against its peers."""

    def __init__(self, node_id, sim, network, clock, pings_per_peer=1):
        super().__init__(SimRuntime(node_id, sim, network, clock))
        self.pings_per_peer = pings_per_peer
        self.session = None
        self.results = None

    def begin(self, peers, max_wait):
        self.session = EstimationSession(self, peers, self.pings_per_peer)
        self.session.begin()
        self.set_local_timer(max_wait, self.finish)

    def finish(self):
        if self.results is None:
            self.results = self.session.finish()

    def on_message(self, message):
        if isinstance(message.payload, Pong) and self.session is not None:
            self.session.on_pong(message)


def build(sim, offsets, rates=None, delay=None, pings_per_peer=1):
    """Node 0 is the estimator; others respond. offsets[i] is node i's
    initial clock offset, rates[i] its hardware rate."""
    n = len(offsets)
    rates = rates or [1.0] * n
    network = Network(sim, full_mesh(n), delay or FixedDelay(delta=0.01, value=0.004))
    clocks = [LogicalClock(FixedRateClock(rho=0.5, rate=rates[i]), adj=offsets[i])
              for i in range(n)]
    estimator = Estimator(0, sim, network, clocks[0], pings_per_peer)
    network.bind(estimator)
    for i in range(1, n):
        network.bind(Responder(SimRuntime(i, sim, network, clocks[i])))
    return estimator


def test_symmetric_delay_gives_exact_offset(sim):
    estimator = build(sim, offsets=[0.0, 2.5])
    estimator.begin([1], max_wait=0.05)
    sim.run()
    result = estimator.results[1]
    assert result.distance == pytest.approx(2.5)
    assert not result.timed_out


def test_error_bound_is_half_round_trip(sim):
    estimator = build(sim, offsets=[0.0, 0.0])
    estimator.begin([1], max_wait=0.05)
    sim.run()
    result = estimator.results[1]
    assert result.accuracy == pytest.approx(0.004)  # (R - S) / 2 with 4ms legs
    assert result.round_trip == pytest.approx(0.008)


def test_definition4_guarantee_holds_under_asymmetry(sim):
    """Asymmetric delays bias the estimate but the true offset must stay
    within [d - a, d + a] (Definition 4's second clause)."""
    true_offset = 1.0
    estimator = build(sim, offsets=[0.0, true_offset],
                      delay=AsymmetricDelay(delta=0.01, forward=0.009, backward=0.001))
    estimator.begin([1], max_wait=0.05)
    sim.run()
    result = estimator.results[1]
    assert result.distance != pytest.approx(true_offset)  # biased...
    assert result.distance - result.accuracy <= true_offset <= result.distance + result.accuracy


def test_timeout_produces_placeholder(sim):
    estimator = build(sim, offsets=[0.0, 0.0])
    # Peer 1 exists but we ping an unreachable peer list via a dead link.
    estimator.runtime.network.fail_link(0, 1)
    estimator.begin([1], max_wait=0.05)
    sim.run()
    result = estimator.results[1]
    assert result.timed_out
    assert result.distance == 0.0
    assert math.isinf(result.accuracy)


def test_min_of_k_keeps_best_round_trip(sim):
    """With several pings, the smallest-RTT reply wins (Section 3.1)."""
    estimator = build(sim, offsets=[0.0, 0.0], pings_per_peer=3)
    estimator.begin([1], max_wait=0.05)
    sim.run()
    result = estimator.results[1]
    # FixedDelay: all RTTs equal; best is still well-formed.
    assert result.accuracy == pytest.approx(0.004)


def test_stale_pong_from_previous_session_ignored(sim):
    """Nonces are session-scoped: a reply to an old session's ping must
    not contaminate a new session."""
    estimator = build(sim, offsets=[0.0, 5.0])
    estimator.begin([1], max_wait=0.05)
    sim.run(until=0.002)  # ping sent, reply still in flight
    old_session = estimator.session
    # Start a fresh session; the in-flight reply belongs to old_session.
    estimator.session = EstimationSession(estimator, [1], 1)
    estimator.session.begin()
    sim.run()
    fresh = estimator.session.finish()[1]
    assert not fresh.timed_out  # the *new* ping was answered too
    assert old_session is not estimator.session


def test_reply_only_accepted_from_addressed_peer(sim):
    """A Byzantine node echoing someone else's nonce is rejected by the
    sender check (authenticated links)."""
    estimator = build(sim, offsets=[0.0, 0.0, 0.0])

    class Echoer(Process):
        def on_message(self, message):
            pass

    estimator.begin([1], max_wait=0.05)
    sim.run(until=0.001)
    # Node 2 forges a pong with node 1's nonce.
    nonce = next(iter(estimator.session._send_times))
    estimator.runtime.network.send(2, 0, Pong(nonce=nonce, clock_value=1e9))
    sim.run()
    result = estimator.results[1]
    assert abs(result.distance) < 1.0  # the forgery did not land


def test_duplicate_pong_ignored(sim):
    estimator = build(sim, offsets=[0.0, 1.0])
    estimator.begin([1], max_wait=0.05)
    sim.run(until=0.001)
    nonce = next(iter(estimator.session._send_times))
    sim.run()
    first = estimator.results[1]
    # Replay the same nonce later: session already consumed it.
    accepted = estimator.session.on_pong(
        type("M", (), {"payload": Pong(nonce=nonce, clock_value=123.0), "sender": 1})()
    )
    assert not accepted
    assert estimator.results[1] == first


def test_complete_flag(sim):
    estimator = build(sim, offsets=[0.0, 0.0, 0.0])
    estimator.begin([1, 2], max_wait=0.05)
    assert not estimator.session.complete
    sim.run()
    assert estimator.session.complete


def test_helpers():
    t = timeout_estimate(3)
    assert t.peer == 3 and t.timed_out
    s = self_estimate(5)
    assert s.peer == 5 and s.distance == 0.0 and s.accuracy == 0.0
    e = ClockEstimate(peer=0, distance=1.0, accuracy=0.25)
    assert e.overestimate == 1.25 and e.underestimate == 0.75


def test_pings_per_peer_validation(sim):
    estimator = build(sim, offsets=[0.0, 0.0])
    with pytest.raises(ValueError):
        EstimationSession(estimator, [1], pings_per_peer=0)


def test_drifting_estimator_still_within_bound(sim):
    """Estimator clock runs fast: midpoint sampling keeps the true
    offset within [d - a, d + a] at some instant of the exchange."""
    estimator = build(sim, offsets=[0.0, 3.0], rates=[1.2, 1.0])
    estimator.begin([1], max_wait=0.05)
    sim.run()
    result = estimator.results[1]
    # True C_q - C_p at the midpoint real time tau_m = 0.004:
    # C_p = 1.2 * tau_m, C_q = tau_m + 3.
    tau_m = 0.004
    true_gap = (tau_m + 3.0) - 1.2 * tau_m
    assert result.distance - result.accuracy <= true_gap + 1e-6
    assert result.distance + result.accuracy >= true_gap - 1e-6
