#!/usr/bin/env python3
"""Static import-graph check for the package layering contract.

The simulation kernel must stay observable-from-outside, never
self-observing: ``repro.core``, ``repro.sim`` and ``repro.clocks`` are
the bottom layers and must not import the orchestration or telemetry
layers (``repro.runner``, ``repro.obs``).  A kernel module that reaches
up breaks process-pool pickling (workers would drag the whole runner in)
and reopens the self-monitoring loophole DESIGN.md section 7 forbids.

Two finer-grained contracts ride on the same import graph.  Within
``repro.runner`` the results pipeline is itself layered
(records/scenario < execution < store < evaluation < stats < campaign,
see ``RUNNER_RANKS``): a runner module may import only strictly lower
ranks, which keeps the store and evaluation layers importable without
dragging in the executor and structurally prevents cycles.  And nothing
inside the package may import ``repro.cli`` — the CLI consumes the
stack, never the other way around (``repro.__main__`` excepted).

The check parses every module under ``src/repro`` with :mod:`ast` and
records its ``repro.*`` imports.  ``if TYPE_CHECKING:`` blocks are
skipped — annotation-only references are erased at runtime and carry no
layering weight.  Relative imports are resolved against the module's
package so ``from . import x`` is attributed correctly.

Run from the repository root:

    python tools/check_layering.py           # exit 0 iff clean

Wired into tier-1 via ``tests/test_tools_layering.py``.
"""

from __future__ import annotations

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
PACKAGE = "repro"

# layer -> layers it must never import (at runtime).
#
# Since the runtime-seam refactor, protocol code programs against
# ``repro.runtime`` only: ``core`` and ``protocols`` may not import the
# concrete simulator (``repro.sim``) or network (``repro.net``) — those
# are substrates plugged in behind :class:`repro.runtime.api.NodeRuntime`.
# The seam itself (``runtime``) must stay substrate-free too, and the
# real-time substrate (``rt``) must never reach back into the simulator.
FORBIDDEN: dict[str, frozenset[str]] = {
    "core": frozenset({"obs", "runner", "sim", "net"}),
    "protocols": frozenset({"obs", "runner", "sim", "net"}),
    "runtime": frozenset({"obs", "runner", "sim", "net", "rt"}),
    "sim": frozenset({"obs", "runner", "rt"}),
    "clocks": frozenset({"obs", "runner"}),
    "rt": frozenset({"sim", "net", "runner"}),
}

# Within repro.runner, results flow strictly upward: the shared record
# vocabulary and scenario model sit at the bottom, execution above them,
# the columnar store above execution (it consumes records, never runs
# them), the declarative evaluation layer above the store, and the
# campaign executor — which produces records, writes stores, and drives
# adaptive bisection — on top.  A module may import only runner modules
# of *strictly lower* rank, so store/evaluation can never grow a cycle
# back into execution and the CLI stays the only consumer of the whole
# stack.  ``repro.runner.__init__`` (the facade) is exempt.
RUNNER_RANKS: dict[str, int] = {
    "records": 0,
    "scenario": 0,
    "experiment": 1,
    "builders": 1,
    "config": 2,
    "vector": 2,
    "store": 3,
    "evaluation": 4,
    "stats": 5,
    "campaign": 6,
}

# The CLI is the top of the whole package: nothing imports it back
# (``repro.__main__`` is the entry point and the one exception).
CLI_MODULE = f"{PACKAGE}.cli"
CLI_IMPORTERS_ALLOWED = frozenset({f"{PACKAGE}.__main__", CLI_MODULE})


def module_name(path: pathlib.Path) -> str:
    """Dotted module name of a source file under ``src/``."""
    rel = path.relative_to(SRC).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def layer_of(module: str) -> str | None:
    """Second dotted component of a repro module, e.g. ``core``."""
    parts = module.split(".")
    if len(parts) >= 2 and parts[0] == PACKAGE:
        return parts[1]
    return None


def runner_rank(module: str) -> int | None:
    """Rank of a ``repro.runner`` submodule, ``None`` outside the map."""
    parts = module.split(".")
    if len(parts) >= 3 and parts[0] == PACKAGE and parts[1] == "runner":
        return RUNNER_RANKS.get(parts[2])
    return None


class ImportCollector(ast.NodeVisitor):
    """Collect runtime ``repro.*`` imports, skipping TYPE_CHECKING blocks."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.imports: list[tuple[int, str]] = []

    def visit_If(self, node: ast.If) -> None:
        if self._is_type_checking(node.test):
            # Annotation-only imports: walk just the else branch.
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    @staticmethod
    def _is_type_checking(test: ast.expr) -> bool:
        return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imports.append((node.lineno, alias.name))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            # Resolve "from .x import y" against this module's package.
            base = self.module.split(".")
            # __init__ modules are their own package; others drop the leaf.
            pkg_depth = len(base) - (node.level - 1) - 1
            prefix = base[:max(pkg_depth, 0)]
            target = ".".join(prefix + ([node.module] if node.module else []))
        else:
            target = node.module or ""
        if target:
            self.imports.append((node.lineno, target))


def check() -> list[str]:
    """Return one violation message per forbidden runtime import."""
    violations = []
    for path in sorted((SRC / PACKAGE).rglob("*.py")):
        module = module_name(path)
        source_layer = layer_of(module)
        forbidden = FORBIDDEN.get(source_layer or "", frozenset())
        source_rank = runner_rank(module)
        if not forbidden and source_rank is None \
                and module in CLI_IMPORTERS_ALLOWED:
            continue
        collector = ImportCollector(module)
        collector.visit(ast.parse(path.read_text(), filename=str(path)))
        for lineno, target in collector.imports:
            target_layer = layer_of(target)
            where = f"{path.relative_to(SRC.parent)}:{lineno}"
            if target_layer in forbidden:
                violations.append(
                    f"{where}: {module} ({source_layer} layer) imports "
                    f"{target} ({target_layer} layer)")
                continue
            if (target == CLI_MODULE or target.startswith(CLI_MODULE + ".")) \
                    and module not in CLI_IMPORTERS_ALLOWED:
                violations.append(
                    f"{where}: {module} imports {CLI_MODULE} "
                    f"(the CLI is the top of the stack)")
                continue
            target_rank = runner_rank(target)
            if (source_rank is not None and target_rank is not None
                    and target_rank >= source_rank):
                violations.append(
                    f"{where}: {module} (runner rank {source_rank}) imports "
                    f"{target} (rank {target_rank}); runner modules may only "
                    f"import strictly lower ranks")
    return violations


def main() -> int:
    violations = check()
    if violations:
        print("LAYERING VIOLATIONS:", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    kernel = sum(1 for p in (SRC / PACKAGE).rglob("*.py")
                 if layer_of(module_name(p)) in FORBIDDEN)
    ranked = sum(1 for p in (SRC / PACKAGE).rglob("*.py")
                 if runner_rank(module_name(p)) is not None)
    print(f"layering clean: {kernel} kernel modules (no runtime imports "
          f"of obs/runner), {ranked} ranked runner modules (results flow "
          f"upward), nothing imports the CLI")
    return 0


if __name__ == "__main__":
    sys.exit(main())
