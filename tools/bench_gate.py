#!/usr/bin/env python3
"""Performance-regression gate for the measurement engine (PR 4).

Runs :func:`benchmarks.bench_measures.measure` — the E1-scale analysis
benchmark (n=16, 200k samples) plus an end-to-end streamed run — writes
the results to ``BENCH_PR4.json`` at the repository root, and compares
against the committed baseline in ``benchmarks/baseline_pr4.json``.

Only **machine-portable** figures are gated, so the gate gives the same
verdict on a laptop and a CI runner:

* ``analysis.python.speedup`` / ``analysis.numpy.speedup`` — the new
  engine's throughput relative to the frozen legacy implementation
  *measured in the same process* (the legacy path doubles as a
  machine-speed yardstick);
* ``end_to_end.normalized`` — streamed-run events/sec divided by the
  same legacy yardstick.

The gate fails when any gated figure drops below its tolerance —
20% for the analysis figures, and only 5% for the end-to-end
events/sec figure, which since the runtime-seam refactor dispatches
through ``SimRuntime`` and therefore doubles as the proof that the
indirection is near-free — or when the python-backend speedup falls
under the 5x floor the engine is required to deliver.  Absolute
samples/sec and events/sec are recorded in ``BENCH_PR4.json`` for the
trajectory but not gated.

Run from the repository root:

    python tools/bench_gate.py                    # exit 0 iff no regression
    python tools/bench_gate.py --update-baseline  # re-seed the baseline
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

BASELINE_PATH = REPO / "benchmarks" / "baseline_pr4.json"
RESULT_PATH = REPO / "BENCH_PR4.json"

#: Maximum tolerated drop of a gated figure below its baseline.
TOLERANCE = 0.20

#: Tighter tolerance for the end-to-end events/sec figure: the run
#: dispatches every timer and message through the ``SimRuntime`` seam,
#: and the runtime-abstraction contract is that this indirection costs
#: less than 5% against the direct-dispatch PR 4 baseline.
DISPATCH_TOLERANCE = 0.05

#: Hard floor on the python-backend analysis speedup (acceptance bar).
SPEEDUP_FLOOR = 5.0

#: Gated figures: (dotted path, human label, tolerated drop).
GATED = [
    ("analysis.python.speedup", "analysis speedup (python backend)",
     TOLERANCE),
    ("analysis.numpy.speedup", "analysis speedup (numpy backend)",
     TOLERANCE),
    ("end_to_end.normalized",
     "end-to-end normalized throughput (SimRuntime dispatch)",
     DISPATCH_TOLERANCE),
]


def lookup(metrics: dict, dotted: str):
    """Resolve ``a.b.c`` in nested dicts; None when any hop is missing."""
    node = metrics
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the measured figures as the new baseline")
    args = parser.parse_args()

    from bench_measures import measure, metrics_table

    metrics = measure()
    print(metrics_table(metrics))
    RESULT_PATH.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {RESULT_PATH.relative_to(REPO)}")

    if args.update_baseline:
        # A baseline is a *floor reference*, so seed it conservatively:
        # measure twice and keep, per gated figure, the worse of the
        # two runs — an optimistic baseline would make the gate flaky.
        second = measure()
        for dotted, _, _tol in GATED:
            a, b = lookup(metrics, dotted), lookup(second, dotted)
            if a is None or b is None:
                continue
            node = metrics
            *hops, leaf = dotted.split(".")
            for key in hops:
                node = node[key]
            node[leaf] = min(a, b)
        BASELINE_PATH.write_text(
            json.dumps(metrics, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {BASELINE_PATH.relative_to(REPO)}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"BENCH GATE FAILURE: no baseline at "
              f"{BASELINE_PATH.relative_to(REPO)} "
              f"(seed one with --update-baseline)", file=sys.stderr)
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())

    ok = True
    speedup = lookup(metrics, "analysis.python.speedup")
    if speedup is None or speedup < SPEEDUP_FLOOR:
        print(f"BENCH GATE FAILURE: python-backend analysis speedup "
              f"{speedup:.2f}x is below the {SPEEDUP_FLOOR:.0f}x floor",
              file=sys.stderr)
        ok = False

    for dotted, label, tolerance in GATED:
        base = lookup(baseline, dotted)
        current = lookup(metrics, dotted)
        if base is None or current is None:
            # The numpy leg is absent on pure-python environments; a
            # figure one side lacks is skipped, not failed.
            print(f"  {label}: skipped (not measured on "
                  f"{'baseline' if base is None else 'this run'})")
            continue
        floor = base * (1.0 - tolerance)
        verdict = "ok" if current >= floor else "REGRESSION"
        print(f"  {label}: {current:.2f} vs baseline {base:.2f} "
              f"(floor {floor:.2f}) -- {verdict}")
        if current < floor:
            ok = False

    if ok:
        print("bench gate passed")
        return 0
    print("BENCH GATE FAILURE: a gated figure regressed below its "
          "tolerance against the committed baseline", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
