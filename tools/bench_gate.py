#!/usr/bin/env python3
"""Performance-regression gate for the measurement engine and time service.

Runs :func:`benchmarks.bench_measures.measure` — the E1-scale analysis
benchmark (n=16, 200k samples) plus an end-to-end streamed run — and
:func:`benchmarks.bench_service.measure_service` — the time-service
load benchmark (windowed UDP query generator against a live cluster) —
writes the merged results to ``BENCH_PR4.json`` at the repository root,
and compares against the committed baseline in
``benchmarks/baseline_pr4.json``.

Only **machine-portable** figures are gated, so the gate gives the same
verdict on a laptop and a CI runner:

* ``analysis.python.speedup`` / ``analysis.numpy.speedup`` — the new
  engine's throughput relative to the frozen legacy implementation
  *measured in the same process* (the legacy path doubles as a
  machine-speed yardstick);
* ``end_to_end.normalized`` — streamed-run events/sec divided by the
  same legacy yardstick;
* ``service.normalized_qps`` — sustained time-service queries/sec
  divided by the same legacy yardstick;
* ``mega_sim.speedup`` — the vector batch engine's effective events/sec
  relative to the scalar engine on the same workload, measured
  interleaved in the same process
  (:func:`benchmarks.bench_engine.measure_mega_sim`).

On top of the baseline comparison, absolute floors are enforced: the
python-backend speedup must stay above 5x (the PR 4 acceptance bar),
the time service must meet its SLO — at least 10,000 queries/sec with
p99 latency under ``delta`` and zero failed queries (the PR 6
acceptance bar) — and full live telemetry
(:func:`benchmarks.bench_obs_overhead.measure_live_overhead`) must
retain at least 90% of the uninstrumented query throughput (the PR 7
acceptance bar).  The mega-sim section additionally enforces the
vector-backend bars: batch speedup above :data:`MEGA_SPEEDUP_FLOOR`
and byte-identical scalar/vector ``RunRecord``\\ s (``record_parity``).

A baseline that predates a section (an older ``baseline_pr4.json``
without, say, the ``obs_live`` or ``mega_sim`` keys) skips that
section's baseline comparison instead of crashing; absolute limits
still apply to the measured run.

The gate fails when any gated figure drops below its tolerance —
20% for the analysis figures, 5% for the end-to-end events/sec figure
(the runtime-seam dispatch contract), 30% for the service QPS figure
(real sockets are noisier than pure computation) — or when an absolute
floor is missed.  Absolute samples/sec, events/sec and QPS are recorded
in ``BENCH_PR4.json`` for the trajectory but not baseline-gated.

Run from the repository root:

    python tools/bench_gate.py                    # exit 0 iff no regression
    python tools/bench_gate.py --update-baseline  # re-seed the baseline
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

BASELINE_PATH = REPO / "benchmarks" / "baseline_pr4.json"
RESULT_PATH = REPO / "BENCH_PR4.json"

#: Maximum tolerated drop of a gated figure below its baseline.
TOLERANCE = 0.20

#: Tighter tolerance for the end-to-end events/sec figure: the run
#: dispatches every timer and message through the ``SimRuntime`` seam,
#: and the runtime-abstraction contract is that this indirection costs
#: less than 5% against the direct-dispatch PR 4 baseline.
DISPATCH_TOLERANCE = 0.05

#: Looser tolerance for the service QPS figure: it rides real UDP
#: sockets and an event loop shared with live Sync traffic, so run-to-
#: run spread is wider than the pure-computation figures'.
SERVICE_TOLERANCE = 0.30

#: Tolerance for the mega-sim batch speedup.  Both sides are measured
#: in the same process, but the ratio is less portable than the other
#: gated figures: machine-speed shifts hit the two engines
#: asymmetrically (the vector loop is cache-hotter than the scalar
#: call stack), and CPython versions specialize the two styles
#: differently (3.11's inline-bytecode specialization favors the
#: vector loop; the 3.10 CI leg does not have it).
MEGA_TOLERANCE = 0.40

#: Hard floor on the python-backend analysis speedup (acceptance bar).
SPEEDUP_FLOOR = 5.0

#: The time-service SLO (acceptance bar): sustained queries/sec floor
#: and the p99-latency-under-delta ratio ceiling.
SERVICE_QPS_FLOOR = 10_000.0
SERVICE_P99_CEILING = 1.0  # p99 / delta

#: Live telemetry overhead contract (PR 7 acceptance bar): a fully
#: instrumented cluster (metrics + spans + wall-clock probe + latency
#: histograms) must retain at least 90% of the uninstrumented QPS.
OBS_LIVE_RATIO_FLOOR = 0.90

#: Hard floor on the mega-sim batch speedup (vector vs scalar engine,
#: n=64, 256 batched seeds) and the record-parity requirement.  The
#: measured speedup on this workload is ~4-5x on CPython 3.11
#: depending on machine mood (and grows with n: ~8.7x at n=256); see
#: EXPERIMENTS.md for why the issue's 10x target is not reachable at
#: n=64 with byte-identical per-event semantics.  The floor sits below
#: the worst honest measurement across supported interpreters so the
#: gate trips on real regressions, not on moods or CPython versions.
MEGA_SPEEDUP_FLOOR = 2.5

#: Gated figures: (dotted path, human label, tolerated drop).
GATED = [
    ("analysis.python.speedup", "analysis speedup (python backend)",
     TOLERANCE),
    ("analysis.numpy.speedup", "analysis speedup (numpy backend)",
     TOLERANCE),
    ("end_to_end.normalized",
     "end-to-end normalized throughput (SimRuntime dispatch)",
     DISPATCH_TOLERANCE),
    ("service.normalized_qps",
     "time-service normalized QPS (UDP loopback)",
     SERVICE_TOLERANCE),
    ("mega_sim.speedup",
     "mega-sim batch speedup (vector vs scalar engine)",
     MEGA_TOLERANCE),
]

#: Absolute floors/ceilings: (dotted path, human label, kind, limit)
#: where kind is "floor" (value must be >= limit) or "ceiling"
#: (value must be <= limit).  Unlike GATED figures these never skip:
#: a missing value is a failure, because each one is an acceptance bar.
LIMITS = [
    ("analysis.python.speedup", "python-backend analysis speedup",
     "floor", SPEEDUP_FLOOR),
    ("service.qps", "time-service sustained QPS", "floor",
     SERVICE_QPS_FLOOR),
    ("service.p99_vs_delta", "time-service p99 latency / delta",
     "ceiling", SERVICE_P99_CEILING),
    ("service.errors", "time-service failed queries", "ceiling", 0),
    ("obs_live.full_ratio", "live full-telemetry QPS retention",
     "floor", OBS_LIVE_RATIO_FLOOR),
    ("mega_sim.speedup", "mega-sim batch speedup (n=64, 256 seeds)",
     "floor", MEGA_SPEEDUP_FLOOR),
    ("mega_sim.record_parity", "mega-sim scalar/vector record parity",
     "floor", 1.0),
]


def lookup(metrics: dict, dotted: str):
    """Resolve ``a.b.c`` in nested dicts; None when any hop is missing."""
    node = metrics
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def evaluate(metrics: dict, baseline: dict) -> tuple[bool, list[str]]:
    """Judge measured ``metrics`` against limits and the ``baseline``.

    Pure function of its inputs (no benchmarking, no I/O) so the gate
    logic is testable with stubbed metrics.  Returns ``(ok, lines)``
    where ``lines`` is the human-readable verdict, one entry per check.
    A figure that is *missing* from the metrics fails its absolute
    limit with a clean message — never a formatting crash.
    """
    ok = True
    lines = []

    for dotted, label, kind, limit in LIMITS:
        value = lookup(metrics, dotted)
        if value is None:
            lines.append(f"GATE FAILURE: {dotted} is missing from the "
                         f"measured metrics (cannot check the {label} "
                         f"{kind} of {limit:g})")
            ok = False
            continue
        holds = value >= limit if kind == "floor" else value <= limit
        relation = ">=" if kind == "floor" else "<="
        verdict = "ok" if holds else "FAILED"
        lines.append(f"  {label}: {value:g} ({kind} {relation} {limit:g}) "
                     f"-- {verdict}")
        if not holds:
            ok = False

    for dotted, label, tolerance in GATED:
        base = lookup(baseline, dotted)
        current = lookup(metrics, dotted)
        if base is None or current is None:
            # The numpy leg is absent on pure-python environments; a
            # figure one side lacks is skipped, not failed.
            lines.append(f"  {label}: skipped (not measured on "
                         f"{'baseline' if base is None else 'this run'})")
            continue
        floor = base * (1.0 - tolerance)
        verdict = "ok" if current >= floor else "REGRESSION"
        lines.append(f"  {label}: {current:.2f} vs baseline {base:.2f} "
                     f"(floor {floor:.2f}) -- {verdict}")
        if current < floor:
            ok = False

    return ok, lines


def run_benchmarks() -> dict:
    """Measure everything; returns the merged metrics dict."""
    from bench_engine import measure_mega_sim, mega_table
    from bench_measures import measure, metrics_table
    from bench_obs_overhead import live_table, measure_live_overhead
    from bench_service import measure_service
    from bench_service import metrics_table as service_table

    metrics = measure()
    print(metrics_table(metrics))
    legacy_sps = lookup(metrics, "analysis.legacy_samples_per_sec")
    metrics["service"] = measure_service(legacy_sps=legacy_sps)
    print()
    print(service_table(metrics["service"]))
    metrics["obs_live"] = measure_live_overhead()
    print()
    print(live_table(metrics["obs_live"]))
    metrics["mega_sim"] = measure_mega_sim()
    print()
    print(mega_table(metrics["mega_sim"]))
    return metrics


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the measured figures as the new baseline")
    args = parser.parse_args()

    metrics = run_benchmarks()
    RESULT_PATH.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {RESULT_PATH.relative_to(REPO)}")

    if args.update_baseline:
        # A baseline is a *floor reference*, so seed it conservatively:
        # measure twice and keep, per gated figure, the worse of the
        # two runs — an optimistic baseline would make the gate flaky.
        second = run_benchmarks()
        for dotted, _, _tol in GATED:
            a, b = lookup(metrics, dotted), lookup(second, dotted)
            if a is None or b is None:
                continue
            node = metrics
            *hops, leaf = dotted.split(".")
            for key in hops:
                node = node[key]
            node[leaf] = min(a, b)
        BASELINE_PATH.write_text(
            json.dumps(metrics, indent=2, sort_keys=True) + "\n")
        print(f"baseline updated: {BASELINE_PATH.relative_to(REPO)}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"BENCH GATE FAILURE: no baseline at "
              f"{BASELINE_PATH.relative_to(REPO)} "
              f"(seed one with --update-baseline)", file=sys.stderr)
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())

    ok, lines = evaluate(metrics, baseline)
    for line in lines:
        print(line, file=None if line.startswith("  ") else sys.stderr)

    if ok:
        print("bench gate passed")
        return 0
    print("BENCH GATE FAILURE: a gated figure regressed below its "
          "tolerance or missed an absolute limit", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
