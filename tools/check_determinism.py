#!/usr/bin/env python3
"""Check that a config run is byte-for-byte reproducible.

Two checks, both over the E1 headline workload (rotating
mobile-Byzantine adversary):

* **summary** — runs the config twice through
  :func:`repro.runner.campaign.run_config` and compares the JSON
  serialization of the two :class:`RunRecord` results;
* **trace** — runs the same scenario twice under a full
  :class:`repro.obs.FlightRecorder` and byte-diffs the serialized JSONL
  observability event streams, line by line;
* **stream** — runs the config with ``stream_measures=True`` (measures
  accumulated online, no clock trace kept) and compares the record
  byte-for-byte against the post-hoc one: the streaming engine must be
  an exact mirror of the recorded-trace pipeline, not merely
  reproducible on its own;
* **vector** — replays the same seed list through the scalar and
  vector simulation backends twice each and compares all record
  serializations per seed: the batch engine must be byte-identical to
  the reference *and* reproducible across repeats (the check first
  proves the config is inside the vector envelope, so an accidental
  scalar fallback cannot make it vacuous);
* **live** — runs a loopback cluster under the virtual-time loop twice,
  telemetry off and fully instrumented
  (:class:`repro.obs.live.LiveTelemetry`): every Figure 1 correction
  decision and every final logical clock must be float-exact identical
  — live telemetry is write-only, like the recorder — and two
  instrumented runs must serialize byte-identical JSONL event streams.

Any difference — a float that drifted in the last bit, a counter off by
one, a wall-clock quantity that leaked into an event payload — is a
determinism regression: the simulation (and its telemetry) must be a
pure function of ``(config, seed)``.

Run from the repository root:

    python tools/check_determinism.py           # exit 0 iff identical

The check is wired into tier-1 via ``tests/test_tools_determinism.py``
so hot-path "optimizations" that silently reorder RNG draws are caught
immediately.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.runner.campaign import run_config  # noqa: E402

# Small enough to run twice in a few seconds, big enough to exercise
# the full machinery: corruption plan, recovery, verdict, counters.
E1_CONFIG = {
    "params": {"n": 4, "f": 1, "delta": 0.005, "rho": 5e-4, "pi": 2.0},
    "scenario": "mobile-byzantine",
    "duration": 8.0,
    "seed": 1,
}

# A declarative rotating-silent config inside the *vector envelope*
# (the E1 mobile-Byzantine mix uses non-silent strategies, which the
# vector backend refuses and would silently fall back to scalar —
# making the cross-backend check vacuous).  Crash, recovery, wander
# clocks, staggered phases: the full batch-engine masking machinery.
VECTOR_CONFIG = {
    "params": {"n": 5, "f": 1, "delta": 0.002, "rho": 1e-3, "pi": 1.0},
    "duration": 8.0,
    "seed": 1,
    "protocol": "sync",
    "clocks": "wander",
    "initial_offset_spread": 0.0005,
    "name": "vector-determinism",
    "plan": {"kind": "rotating", "strategy": {"name": "silent"}},
}


def summary_bytes(config: dict, stream_measures: bool = False,
                  backend: str = "scalar") -> bytes:
    """Run one config and serialize its summary canonically."""
    summary = run_config(config, stream_measures=stream_measures,
                         backend=backend)
    return json.dumps(dataclasses.asdict(summary), sort_keys=True).encode()


def trace_bytes(config: dict) -> bytes:
    """Run the config's scenario under a flight recorder; return the JSONL."""
    from repro.obs import FlightRecorder, ObsConfig
    from repro.runner.builders import default_params, mobile_byzantine_scenario
    from repro.runner.experiment import run

    params = default_params(**config["params"])
    scenario = mobile_byzantine_scenario(params, duration=config["duration"],
                                         seed=config["seed"])
    recorder = FlightRecorder(ObsConfig(messages=True, monitors=True))
    run(scenario, recorder=recorder)
    return recorder.events_jsonl().encode()


def diff_jsonl(first: bytes, second: bytes) -> str:
    """Describe the first differing line of two JSONL streams."""
    lines_a = first.decode().splitlines()
    lines_b = second.decode().splitlines()
    for i, (a, b) in enumerate(zip(lines_a, lines_b)):
        if a != b:
            return f"line {i + 1}:\n  run 1: {a}\n  run 2: {b}"
    return (f"stream lengths differ: {len(lines_a)} vs {len(lines_b)} "
            f"events")


def check_summary() -> bool:
    """Summary determinism: measures identical across runs."""
    first = summary_bytes(E1_CONFIG)
    second = summary_bytes(E1_CONFIG)
    if first == second:
        print(f"deterministic: {len(first)} summary bytes identical across runs")
        return True
    print("DETERMINISM FAILURE: identical config+seed produced different measures",
          file=sys.stderr)
    print(f"run 1: {first.decode()}", file=sys.stderr)
    print(f"run 2: {second.decode()}", file=sys.stderr)
    return False


def check_trace() -> bool:
    """Trace determinism: observability JSONL byte-identical across runs."""
    first = trace_bytes(E1_CONFIG)
    second = trace_bytes(E1_CONFIG)
    if first == second:
        events = first.decode().count("\n")
        print(f"deterministic: {len(first)} trace bytes "
              f"({events} events) identical across runs")
        return True
    print("DETERMINISM FAILURE: identical config+seed produced different "
          "observability streams", file=sys.stderr)
    print(diff_jsonl(first, second), file=sys.stderr)
    return False


def check_stream() -> bool:
    """Streamed measures byte-identical to the post-hoc pipeline."""
    posthoc = summary_bytes(E1_CONFIG)
    streamed = summary_bytes(E1_CONFIG, stream_measures=True)
    if posthoc == streamed:
        print(f"deterministic: {len(streamed)} streamed summary bytes "
              f"identical to the post-hoc record")
        return True
    print("DETERMINISM FAILURE: stream_measures=True produced a different "
          "record than the post-hoc pipeline", file=sys.stderr)
    print(f"post-hoc: {posthoc.decode()}", file=sys.stderr)
    print(f"streamed: {streamed.decode()}", file=sys.stderr)
    return False


def check_vector() -> bool:
    """Vector backend byte-identical to scalar, and both reproducible.

    Replays the same seed list through the scalar and vector backends
    twice each (streamed measures, the campaign fast path): all four
    record serializations must match per seed — across backends *and*
    across repeats.  A vector-side RNG reorder, a masked update that
    rounds differently, or a nondeterministic dict walk all surface
    here as a one-line diff.
    """
    from repro.runner.config import scenario_from_config
    from repro.runner.vector import scalar_only_reason, vector_spec
    from repro.sim.vector import simulate_run

    # Guard against vacuity: the config must actually enter the vector
    # engine (a silent scalar fallback would compare scalar to scalar).
    scenario = scenario_from_config(dict(VECTOR_CONFIG))
    reason = scalar_only_reason(scenario)
    if reason is not None:
        print(f"DETERMINISM FAILURE: vector check config fell out of the "
              f"vector envelope: {reason}", file=sys.stderr)
        return False
    simulate_run(vector_spec(scenario, stream_measures=True))  # must not raise

    ok = True
    for seed in (1, 2, 3):
        config = dict(VECTOR_CONFIG, seed=seed)
        runs = {
            "scalar#1": summary_bytes(config, stream_measures=True,
                                      backend="scalar"),
            "scalar#2": summary_bytes(config, stream_measures=True,
                                      backend="scalar"),
            "vector#1": summary_bytes(config, stream_measures=True,
                                      backend="vector"),
            "vector#2": summary_bytes(config, stream_measures=True,
                                      backend="vector"),
        }
        reference = runs["scalar#1"]
        diverged = [label for label, blob in runs.items() if blob != reference]
        if diverged:
            print(f"DETERMINISM FAILURE: seed {seed} records diverged "
                  f"from scalar#1: {', '.join(diverged)}", file=sys.stderr)
            for label in diverged:
                print(f"  {label}: {runs[label].decode()[:400]}",
                      file=sys.stderr)
            ok = False
        else:
            print(f"deterministic: seed {seed} scalar/vector records "
                  f"byte-identical across backends and repeats "
                  f"({len(reference)} bytes)")
    return ok


def live_run(telemetry: bool, duration: float = 4.0, seed: int = 3):
    """One virtual-time loopback cluster run; returns its observables.

    Returns ``(decisions, finals, jsonl)`` where decisions maps node to
    its Figure 1 record tuples, finals maps node to the logical-clock
    reading at the horizon, and jsonl is the serialized telemetry event
    stream (``b""`` when uninstrumented).
    """
    from repro.rt.live import build_cluster, default_live_params
    from repro.rt.virtualtime import VirtualTimeLoop

    params = default_live_params(n=4, f=1)
    loop = VirtualTimeLoop()
    cluster = build_cluster(params, loop, seed=seed, transport="loopback",
                            telemetry=telemetry)
    cluster.start(sample_interval=0.1)
    loop.run_until(duration)
    cluster.sample_once()
    decisions = {node: [(r.round_no, r.correction, r.m, r.big_m,
                         r.own_discarded, r.replies)
                        for r in proc.sync_records]
                 for node, proc in cluster.processes.items()}
    finals = {node: clock.read(duration)
              for node, clock in cluster.clocks.items()}
    cluster.stop()  # finalizes telemetry: metrics.snapshot + run.end
    jsonl = (cluster.telemetry.events_jsonl().encode()
             if cluster.telemetry is not None else b"")
    return decisions, finals, jsonl


def check_live() -> bool:
    """Live telemetry is write-only and its event stream reproducible."""
    plain_decisions, plain_finals, _ = live_run(telemetry=False)
    decisions_a, finals_a, jsonl_a = live_run(telemetry=True)
    _, _, jsonl_b = live_run(telemetry=True)
    ok = True
    if (plain_decisions, plain_finals) != (decisions_a, finals_a):
        print("DETERMINISM FAILURE: enabling live telemetry changed a "
              "correction decision or final clock", file=sys.stderr)
        for node in plain_decisions:
            if plain_decisions[node] != decisions_a[node]:
                print(f"  node {node} decisions diverged", file=sys.stderr)
            if plain_finals[node] != finals_a[node]:
                print(f"  node {node} final clock: {plain_finals[node]!r}"
                      f" vs {finals_a[node]!r}", file=sys.stderr)
        ok = False
    if jsonl_a != jsonl_b:
        print("DETERMINISM FAILURE: two instrumented live runs produced "
              "different telemetry streams", file=sys.stderr)
        print(diff_jsonl(jsonl_a, jsonl_b), file=sys.stderr)
        ok = False
    if ok:
        events = jsonl_a.decode().count("\n")
        print(f"deterministic: live telemetry write-only, {len(jsonl_a)} "
              f"live trace bytes ({events} events) identical across runs")
    return ok


def main() -> int:
    ok = check_summary()
    ok = check_trace() and ok
    ok = check_stream() and ok
    ok = check_vector() and ok
    ok = check_live() and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
