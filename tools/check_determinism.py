#!/usr/bin/env python3
"""Check that a config run is byte-for-byte reproducible.

Two checks, both over the E1 headline workload (rotating
mobile-Byzantine adversary):

* **summary** — runs the config twice through
  :func:`repro.runner.campaign.run_config` and compares the JSON
  serialization of the two :class:`RunRecord` results;
* **trace** — runs the same scenario twice under a full
  :class:`repro.obs.FlightRecorder` and byte-diffs the serialized JSONL
  observability event streams, line by line;
* **stream** — runs the config with ``stream_measures=True`` (measures
  accumulated online, no clock trace kept) and compares the record
  byte-for-byte against the post-hoc one: the streaming engine must be
  an exact mirror of the recorded-trace pipeline, not merely
  reproducible on its own.

Any difference — a float that drifted in the last bit, a counter off by
one, a wall-clock quantity that leaked into an event payload — is a
determinism regression: the simulation (and its telemetry) must be a
pure function of ``(config, seed)``.

Run from the repository root:

    python tools/check_determinism.py           # exit 0 iff identical

The check is wired into tier-1 via ``tests/test_tools_determinism.py``
so hot-path "optimizations" that silently reorder RNG draws are caught
immediately.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.runner.campaign import run_config  # noqa: E402

# Small enough to run twice in a few seconds, big enough to exercise
# the full machinery: corruption plan, recovery, verdict, counters.
E1_CONFIG = {
    "params": {"n": 4, "f": 1, "delta": 0.005, "rho": 5e-4, "pi": 2.0},
    "scenario": "mobile-byzantine",
    "duration": 8.0,
    "seed": 1,
}


def summary_bytes(config: dict, stream_measures: bool = False) -> bytes:
    """Run one config and serialize its summary canonically."""
    summary = run_config(config, stream_measures=stream_measures)
    return json.dumps(dataclasses.asdict(summary), sort_keys=True).encode()


def trace_bytes(config: dict) -> bytes:
    """Run the config's scenario under a flight recorder; return the JSONL."""
    from repro.obs import FlightRecorder, ObsConfig
    from repro.runner.builders import default_params, mobile_byzantine_scenario
    from repro.runner.experiment import run

    params = default_params(**config["params"])
    scenario = mobile_byzantine_scenario(params, duration=config["duration"],
                                         seed=config["seed"])
    recorder = FlightRecorder(ObsConfig(messages=True, monitors=True))
    run(scenario, recorder=recorder)
    return recorder.events_jsonl().encode()


def diff_jsonl(first: bytes, second: bytes) -> str:
    """Describe the first differing line of two JSONL streams."""
    lines_a = first.decode().splitlines()
    lines_b = second.decode().splitlines()
    for i, (a, b) in enumerate(zip(lines_a, lines_b)):
        if a != b:
            return f"line {i + 1}:\n  run 1: {a}\n  run 2: {b}"
    return (f"stream lengths differ: {len(lines_a)} vs {len(lines_b)} "
            f"events")


def check_summary() -> bool:
    """Summary determinism: measures identical across runs."""
    first = summary_bytes(E1_CONFIG)
    second = summary_bytes(E1_CONFIG)
    if first == second:
        print(f"deterministic: {len(first)} summary bytes identical across runs")
        return True
    print("DETERMINISM FAILURE: identical config+seed produced different measures",
          file=sys.stderr)
    print(f"run 1: {first.decode()}", file=sys.stderr)
    print(f"run 2: {second.decode()}", file=sys.stderr)
    return False


def check_trace() -> bool:
    """Trace determinism: observability JSONL byte-identical across runs."""
    first = trace_bytes(E1_CONFIG)
    second = trace_bytes(E1_CONFIG)
    if first == second:
        events = first.decode().count("\n")
        print(f"deterministic: {len(first)} trace bytes "
              f"({events} events) identical across runs")
        return True
    print("DETERMINISM FAILURE: identical config+seed produced different "
          "observability streams", file=sys.stderr)
    print(diff_jsonl(first, second), file=sys.stderr)
    return False


def check_stream() -> bool:
    """Streamed measures byte-identical to the post-hoc pipeline."""
    posthoc = summary_bytes(E1_CONFIG)
    streamed = summary_bytes(E1_CONFIG, stream_measures=True)
    if posthoc == streamed:
        print(f"deterministic: {len(streamed)} streamed summary bytes "
              f"identical to the post-hoc record")
        return True
    print("DETERMINISM FAILURE: stream_measures=True produced a different "
          "record than the post-hoc pipeline", file=sys.stderr)
    print(f"post-hoc: {posthoc.decode()}", file=sys.stderr)
    print(f"streamed: {streamed.decode()}", file=sys.stderr)
    return False


def main() -> int:
    ok = check_summary()
    ok = check_trace() and ok
    ok = check_stream() and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
