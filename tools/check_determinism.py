#!/usr/bin/env python3
"""Check that a config run is byte-for-byte reproducible.

Runs the E1 headline workload (rotating mobile-Byzantine adversary)
twice through :func:`repro.runner.parallel.run_config` and compares the
JSON serialization of the two :class:`ConfigRunSummary` results.  Any
difference — a float that drifted in the last bit, a counter off by
one — is a determinism regression: the simulation must be a pure
function of ``(config, seed)``.

Run from the repository root:

    python tools/check_determinism.py           # exit 0 iff identical

The check is wired into tier-1 via ``tests/test_tools_determinism.py``
so hot-path "optimizations" that silently reorder RNG draws are caught
immediately.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.runner.parallel import run_config  # noqa: E402

# Small enough to run twice in a few seconds, big enough to exercise
# the full machinery: corruption plan, recovery, verdict, counters.
E1_CONFIG = {
    "params": {"n": 4, "f": 1, "delta": 0.005, "rho": 5e-4, "pi": 2.0},
    "scenario": "mobile-byzantine",
    "duration": 8.0,
    "seed": 1,
}


def summary_bytes(config: dict) -> bytes:
    """Run one config and serialize its summary canonically."""
    summary = run_config(config)
    return json.dumps(dataclasses.asdict(summary), sort_keys=True).encode()


def main() -> int:
    first = summary_bytes(E1_CONFIG)
    second = summary_bytes(E1_CONFIG)
    if first == second:
        print(f"deterministic: {len(first)} summary bytes identical across runs")
        return 0
    print("DETERMINISM FAILURE: identical config+seed produced different measures",
          file=sys.stderr)
    print(f"run 1: {first.decode()}", file=sys.stderr)
    print(f"run 2: {second.decode()}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
