"""Setup shim so `pip install -e .` works on environments whose
setuptools lacks the PEP 660 wheel path (no `wheel` package installed).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
