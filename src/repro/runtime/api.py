"""The abstract runtime interface protocols program against.

:class:`NodeRuntime` captures the execution model of Section 2: each
processor owns a drift-bounded local clock (Definition 1), can arm
timers measured in *local clock duration* (the mechanism behind "every
``SyncInt`` time units"), and exchanges authenticated point-to-point
messages with its neighbors, delivered within ``delta`` (Section 2.2).
Nothing else — no global time, no scheduler handle, no network
internals — is visible to protocol code.

:class:`TimerHandle` is the cancellation token returned by
:meth:`NodeRuntime.set_local_timer`.  Cancellation follows the
queue-honest contract of :mod:`repro.sim.events` uniformly across every
runtime implementation:

* cancelling a pending timer prevents its callback from running;
* cancelling a timer that already fired is a no-op;
* cancelling twice is a no-op;
* ``cancelled`` is True iff :meth:`TimerHandle.cancel` was called while
  the timer was still pending.

These rules are verified for every runtime by
``tests/test_runtime_timers.py``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.clocks.logical import LogicalClock
    from repro.runtime.messages import Message


@runtime_checkable
class MessageHandler(Protocol):
    """Anything a runtime can deliver inbound messages to.

    :class:`repro.runtime.process.Process` is the canonical
    implementation; its :meth:`~repro.runtime.process.Process.deliver`
    routes to protocol logic or to a controlling adversary strategy.
    """

    node_id: int

    def deliver(self, message: "Message") -> None:
        """Accept one inbound message from the runtime."""
        ...


class TimerHandle(ABC):
    """Cancellation token for a pending local-clock timer."""

    __slots__ = ()

    @abstractmethod
    def cancel(self) -> None:
        """Cancel the timer if it has not fired yet.

        Safe to call twice or after the timer fired — both are no-ops,
        matching the queue-honest event contract the simulator
        established (see :mod:`repro.sim.events`).
        """

    @property
    @abstractmethod
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the timer fired."""


class NodeRuntime(ABC):
    """The complete execution surface available to one protocol node.

    Attributes:
        node_id: Integer identity of the node this runtime serves.
        clock: The node's logical clock (hardware + adjustment) — the
            paper's ``C_p = H_p + adj_p``.
        obs: Observability event bus, or ``None`` (the default) when no
            flight recorder is attached.  Advisory only: protocol
            decisions never read it.
    """

    node_id: int
    clock: "LogicalClock"
    obs: Any | None

    # -- time ---------------------------------------------------------------

    @abstractmethod
    def real_now(self) -> float:
        """The runtime's physical time ``tau`` (simulated or wall).

        For trace records and clock-history stamping only: a protocol
        decision that *branches* on this value is outside the paper's
        model (processors cannot read real time) and will not port
        between runtimes.
        """

    def local_now(self) -> float:
        """Current reading of this node's logical clock."""
        return self.clock.read(self.real_now())

    # -- timers -------------------------------------------------------------

    @abstractmethod
    def set_local_timer(self, duration: float, callback: Callable[[], None],
                        tag: str = "timer") -> TimerHandle:
        """Arm a timer firing after ``duration`` units of *local* clock.

        The duration is measured on the hardware clock: adjustments to
        ``adj`` shift the clock value but not elapsed local time,
        matching Definition 1 where ``adj`` is constant between resets.
        """

    # -- messaging ----------------------------------------------------------

    @abstractmethod
    def send(self, recipient: int, payload: Any) -> None:
        """Send ``payload`` to ``recipient`` over authenticated links."""

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every neighbor of this node."""
        for peer in self.neighbors():
            self.send(peer, payload)

    @abstractmethod
    def neighbors(self) -> list[int]:
        """The peers this node may exchange messages with (fresh list)."""

    @abstractmethod
    def bind(self, handler: MessageHandler) -> None:
        """Attach ``handler`` as the recipient of inbound messages."""

    # -- clock operations ---------------------------------------------------

    def adjust_clock(self, delta: float) -> None:
        """Add ``delta`` to the adjustment variable (the protocol's move)."""
        self.clock.adjust(self.real_now(), delta)

    def set_clock_value(self, target: float) -> None:
        """Set ``adj`` so the clock reads ``target`` now (resync jump)."""
        self.clock.set_value(self.real_now(), target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(node={self.node_id})"
