"""Runtime abstraction layer: the seam between protocols and engines.

The paper defines the ``Sync`` protocol (Section 3, Figure 1) against an
abstract execution model — a local hardware clock, local-clock timers,
and authenticated point-to-point messages delivered within ``delta`` —
not against any particular scheduler.  This package is that model as
code: :class:`NodeRuntime` is the *complete* surface a protocol process
may touch, and :class:`Process` is the behaviour base class written
against it.

Two engines implement the interface:

* :class:`repro.sim.runtime.SimRuntime` — the discrete-event simulator
  adapter (deterministic, byte-identical to the pre-seam engine);
* :class:`repro.rt.AsyncioRuntime` — real timers on an asyncio event
  loop, with in-memory loopback or UDP transports, so the *same*
  protocol objects run in deployment.

Everything above this layer (runner, obs, service, cli) may know about
concrete engines; ``repro.core`` and ``repro.protocols`` may not — a
contract enforced statically by ``tools/check_layering.py``.
"""

from repro.runtime.api import NodeRuntime, TimerHandle
from repro.runtime.messages import AppPayload, Message, Ping, Pong
from repro.runtime.process import Process

__all__ = [
    "AppPayload",
    "Message",
    "NodeRuntime",
    "Ping",
    "Pong",
    "Process",
    "TimerHandle",
]
