"""Message types shared by every runtime's transport.

The paper assumes *reliable authenticated links*: if a good processor
``q`` receives a message from ``p``, then ``p`` (or an adversary
controlling ``p`` at some point in the last ``delta``) really sent it.
Every runtime enforces this structurally — :class:`Message` carries the
true sender identity stamped by the transport (the simulated network or
an rt transport), and only the process bound to a node (or its
controlling strategy) can send as that node.

These types live in :mod:`repro.runtime` rather than :mod:`repro.net`
because they are part of the protocol/engine seam: protocol code may
depend on them, transport code constructs them.  :mod:`repro.net.message`
re-exports them for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, slots=True)
class Message:
    """An authenticated, delivered network message.

    Slotted: simulations create one instance per delivery, so dropping
    the per-instance ``__dict__`` measurably shrinks the hot path.

    Attributes:
        sender: Node that sent the message (authenticated identity).
        recipient: Node the message was addressed to.
        payload: Protocol-specific content (see the payload dataclasses
            in :mod:`repro.core.sync` and :mod:`repro.protocols`).
        sent_at: Runtime real time of transmission.
        delivered_at: Runtime real time of delivery.
        msg_id: Unique id assigned by the transport, for traces.
    """

    sender: int
    recipient: int
    payload: Any
    sent_at: float
    delivered_at: float
    msg_id: int


@dataclass(frozen=True, slots=True)
class Ping:
    """Clock-estimation request (Section 3.1).

    Attributes:
        nonce: Correlates the reply with this request; also prevents a
            stale reply from a previous estimation round being accepted
            (the paper notes replay of *old* messages is otherwise not
            fully ruled out by the link model).
        round_no: The requestor's local Sync round counter, trace-only.
    """

    nonce: int
    round_no: int = 0


@dataclass(frozen=True, slots=True)
class Pong:
    """Clock-estimation reply: the responder's *current* clock.

    The responder always answers with its live clock value — the "no
    rounds" property of Section 3.3.

    Attributes:
        nonce: Echo of the request nonce.
        clock_value: Responder's logical clock at reply time (``C``).
    """

    nonce: int
    clock_value: float


@dataclass(frozen=True)
class AppPayload:
    """Generic application payload for examples and workload traffic.

    Attributes:
        kind: Application-defined tag.
        body: Arbitrary content.
    """

    kind: str
    body: Any = field(default=None)
