"""Process abstraction shared by protocol implementations and adversaries.

A :class:`Process` is the unit of behaviour attached to a network node:
it receives messages (:meth:`Process.on_message`) and owns local-clock
timers.  Timers are expressed in *local clock duration* — "call me after
``SyncInt`` units of my own clock" — which the owning
:class:`~repro.runtime.api.NodeRuntime` converts to a physical fire time
through the node's hardware clock.  That conversion is exactly the
mechanism the paper relies on when it says a processor performs a
``Sync`` "every SyncInt time units" of local time.

The class is runtime-agnostic: the same process object runs under the
discrete-event simulator (:class:`repro.sim.runtime.SimRuntime`) and
under real asyncio timers (:class:`repro.rt.AsyncioRuntime`).  It also
implements the corruption hand-off used by the mobile adversary: while
a node is controlled, incoming messages and timers are routed to the
controlling strategy instead of the protocol logic, and on release
:meth:`Process.on_recover` re-initializes the protocol loop (the
paper's "alarm ... recovered after a break-in") while deliberately
*keeping* whatever clock adjustment the adversary left behind.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.runtime.api import NodeRuntime, TimerHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.clocks.logical import LogicalClock
    from repro.runtime.messages import Message


class Process:
    """Base class for per-node behaviour (protocols, adversary shells).

    Subclasses override :meth:`start`, :meth:`on_message`, and timer
    callbacks they register via :meth:`set_local_timer`.

    Args:
        runtime: The execution surface this process runs on — timers,
            messaging, and the node's logical clock.

    Attributes:
        runtime: The owning :class:`~repro.runtime.api.NodeRuntime`.
        node_id: Integer identity of the node this process runs on.
        controlled: Whether the adversary currently controls this node.
        obs: Observability event bus, or ``None`` (the default) when no
            flight recorder is attached; protocol logic never reads it.
    """

    def __init__(self, runtime: NodeRuntime) -> None:
        self.runtime = runtime
        self.node_id = runtime.node_id
        self.controlled = False
        self.obs = None
        self._controller: Any | None = None
        self._timers: list[TimerHandle] = []

    @property
    def clock(self) -> "LogicalClock":
        """The node's logical clock (hardware + adjustment)."""
        return self.runtime.clock

    # ------------------------------------------------------------------
    # Behaviour hooks (overridden by protocol subclasses)
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Called once at runtime start to kick off the protocol."""

    def on_message(self, message: "Message") -> None:
        """Handle a delivered message (good-state behaviour)."""

    def on_recover(self) -> None:
        """Called when the adversary releases this node.

        The default restarts the protocol loop via :meth:`start`, after
        dropping any timers the adversary may have left armed.  Clock
        state (``adj``) is *not* touched: recovery of the clock value is
        the protocol's job, per the paper.
        """
        self.cancel_all_timers()
        self.start()

    # ------------------------------------------------------------------
    # Messaging / timers (thin delegation to the runtime)
    # ------------------------------------------------------------------

    def send(self, recipient: int, payload: Any) -> None:
        """Send ``payload`` to ``recipient`` over authenticated links."""
        self.runtime.send(recipient, payload)

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every neighbor of this node."""
        self.runtime.broadcast(payload)

    def neighbors(self) -> list[int]:
        """The peers this node may exchange messages with."""
        return self.runtime.neighbors()

    def local_now(self) -> float:
        """Current reading of this node's logical clock."""
        return self.runtime.local_now()

    def real_now(self) -> float:
        """The runtime's physical time (trace/history stamping only)."""
        return self.runtime.real_now()

    def adjust_clock(self, delta: float) -> None:
        """Add ``delta`` to the clock's adjustment variable."""
        self.runtime.adjust_clock(delta)

    def set_clock_value(self, target: float) -> None:
        """Set the clock to read ``target`` now (resync jump)."""
        self.runtime.set_clock_value(target)

    def set_local_timer(self, duration: float, callback: Callable[[], None],
                        tag: str = "timer") -> TimerHandle:
        """Arm a timer that fires after ``duration`` units of *local* clock.

        The callback is wrapped so that adversary control suppresses it
        (a controlled node performs no protocol activity).
        """
        timer = self.runtime.set_local_timer(duration, self._timer_shim(callback),
                                             tag=tag)
        self._timers.append(timer)
        if len(self._timers) > 64:
            self._timers = [t for t in self._timers if not t.cancelled]
        return timer

    def _timer_shim(self, callback: Callable[[], None]) -> Callable[[], None]:
        """Wrap a timer callback so adversary control suppresses it."""

        def fire() -> None:
            if self.controlled:
                return  # the adversary killed protocol activity on this node
            callback()

        return fire

    def cancel_all_timers(self) -> None:
        """Cancel every pending timer owned by this process."""
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    # ------------------------------------------------------------------
    # Adversary hand-off (called by repro.adversary.mobile)
    # ------------------------------------------------------------------

    def seize(self, controller: Any) -> None:
        """Transfer control of this node to ``controller`` (break-in)."""
        self.controlled = True
        self._controller = controller
        self.cancel_all_timers()

    def release(self) -> None:
        """Return control of this node to the protocol (adversary leaves)."""
        self.controlled = False
        self._controller = None
        self.on_recover()

    def deliver(self, message: "Message") -> None:
        """Entry point used by the transport to hand a message to this node."""
        if self.controlled and self._controller is not None:
            self._controller.on_message(self, message)
        else:
            self.on_message(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "controlled" if self.controlled else "ok"
        return f"{type(self).__name__}(node={self.node_id}, {state})"
