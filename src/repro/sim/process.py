"""Compatibility shim: the process base class moved behind the runtime seam.

:class:`~repro.runtime.process.Process` is now runtime-agnostic and
lives in :mod:`repro.runtime.process`; the simulator-specific timer
handle is :class:`repro.sim.runtime.LocalTimer`.  This module re-exports
both so existing imports keep working.  New code should import from
:mod:`repro.runtime` (protocol side) or :mod:`repro.sim.runtime`
(engine side).
"""

from __future__ import annotations

from repro.runtime.process import Process
from repro.sim.runtime import LocalTimer, SimRuntime

__all__ = ["LocalTimer", "Process", "SimRuntime"]
