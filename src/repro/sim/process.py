"""Process abstraction shared by protocol implementations and adversaries.

A :class:`Process` is the unit of behaviour attached to a network node:
it receives messages (:meth:`Process.on_message`) and owns local-clock
timers.  Timers are expressed in *local clock duration* — "call me after
``SyncInt`` units of my own clock" — which the process converts to a
simulated real time through its hardware clock.  That conversion is
exactly the mechanism the paper relies on when it says a processor
performs a ``Sync`` "every SyncInt time units" of local time.

The base class also implements the corruption hand-off used by the
mobile adversary: while a node is controlled, incoming messages and
timers are routed to the controlling strategy instead of the protocol
logic, and on release :meth:`Process.on_recover` re-initializes the
protocol loop (the paper's "alarm ... recovered after a break-in")
while deliberately *keeping* whatever clock adjustment the adversary
left behind.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.clocks.logical import LogicalClock
    from repro.net.message import Message
    from repro.net.network import Network
    from repro.sim.engine import Simulator


class LocalTimer:
    """Handle for a pending local-clock timer.

    Wraps the underlying simulator :class:`Event` so the owner can cancel
    it without knowing about real-time scheduling.
    """

    __slots__ = ("event", "tag")

    def __init__(self, event: Event, tag: str):
        self.event = event
        self.tag = tag

    def cancel(self) -> None:
        """Cancel the timer if it has not fired yet.

        Safe to call twice or after the timer fired: the underlying
        event's cancellation is queue-honest (see
        :mod:`repro.sim.events`), so the simulator's live-event count
        stays exact either way.
        """
        self.event.cancel()

    @property
    def cancelled(self) -> bool:
        return self.event.cancelled


class Process:
    """Base class for per-node behaviour (protocols, adversary shells).

    Subclasses override :meth:`start`, :meth:`on_message`, and timer
    callbacks they register via :meth:`set_local_timer`.

    Attributes:
        node_id: Integer identity of the node this process runs on.
        sim: The owning simulator.
        network: Network used to send messages.
        clock: The node's logical clock (hardware + adjustment).
        controlled: Whether the adversary currently controls this node.
        obs: Observability event bus, or ``None`` (the default) when no
            flight recorder is attached; protocol logic never reads it.
    """

    def __init__(self, node_id: int, sim: "Simulator", network: "Network",
                 clock: "LogicalClock") -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.clock = clock
        self.controlled = False
        self.obs = None
        self._controller: Any | None = None
        self._timers: list[LocalTimer] = []

    # ------------------------------------------------------------------
    # Behaviour hooks (overridden by protocol subclasses)
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Called once at simulation start to kick off the protocol."""

    def on_message(self, message: "Message") -> None:
        """Handle a delivered message (good-state behaviour)."""

    def on_recover(self) -> None:
        """Called when the adversary releases this node.

        The default restarts the protocol loop via :meth:`start`, after
        dropping any timers the adversary may have left armed.  Clock
        state (``adj``) is *not* touched: recovery of the clock value is
        the protocol's job, per the paper.
        """
        self.cancel_all_timers()
        self.start()

    # ------------------------------------------------------------------
    # Messaging / timers
    # ------------------------------------------------------------------

    def send(self, recipient: int, payload: Any) -> None:
        """Send ``payload`` to ``recipient`` over the network."""
        self.network.send(self.node_id, recipient, payload)

    def local_now(self) -> float:
        """Current reading of this node's logical clock."""
        return self.clock.read(self.sim.now)

    def set_local_timer(self, duration: float, callback: Callable[[], None],
                        tag: str = "timer") -> LocalTimer:
        """Arm a timer that fires after ``duration`` units of *local* clock.

        The duration is measured on the hardware clock (adjustments to
        ``adj`` shift the clock value but not elapsed local time, matching
        Definition 1 where ``adj`` is a constant between resets).
        """
        fire_at = self.clock.hardware.real_time_after(self.sim.now, duration)
        event = self.sim.schedule_at(fire_at, self._timer_shim(callback),
                                     tag=f"n{self.node_id}:{tag}")
        timer = LocalTimer(event, tag)
        self._timers.append(timer)
        if len(self._timers) > 64:
            self._timers = [t for t in self._timers if not t.cancelled]
        return timer

    def _timer_shim(self, callback: Callable[[], None]) -> Callable[[], None]:
        """Wrap a timer callback so adversary control suppresses it."""

        def fire() -> None:
            if self.controlled:
                return  # the adversary killed protocol activity on this node
            callback()

        return fire

    def cancel_all_timers(self) -> None:
        """Cancel every pending timer owned by this process."""
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    # ------------------------------------------------------------------
    # Adversary hand-off (called by repro.adversary.mobile)
    # ------------------------------------------------------------------

    def seize(self, controller: Any) -> None:
        """Transfer control of this node to ``controller`` (break-in)."""
        self.controlled = True
        self._controller = controller
        self.cancel_all_timers()

    def release(self) -> None:
        """Return control of this node to the protocol (adversary leaves)."""
        self.controlled = False
        self._controller = None
        self.on_recover()

    def deliver(self, message: "Message") -> None:
        """Entry point used by the network to hand a message to this node."""
        if self.controlled and self._controller is not None:
            self._controller.on_message(self, message)
        else:
            self.on_message(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "controlled" if self.controlled else "ok"
        return f"{type(self).__name__}(node={self.node_id}, {state})"
