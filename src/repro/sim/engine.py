"""The discrete-event simulation engine.

:class:`Simulator` owns simulated real time (the paper's ``tau``), the
event queue, and the registry of named random streams.  Everything else
in the package — clocks, links, protocol processes, the adversary — is
driven by callbacks scheduled here.

Simulated time is a float in *seconds of real time*.  The paper treats
real time as "just another clock"; in this reproduction the simulator
clock *is* real time, and every hardware clock is defined as a function
of it (see :mod:`repro.clocks.hardware`).

Time is **monotone across runs**: :meth:`Simulator.run` only advances
``now`` to an ``until`` horizon when the event queue was actually
drained up to that horizon.  An early exit — :meth:`Simulator.stop` or
a ``max_events`` limit — leaves ``now`` at the last executed event, so
a follow-up ``run()`` resumes without jumping over (and then time-
travelling back to) still-pending events.

The engine keeps lifetime performance counters (events/sec, heap
high-water mark, cancelled-event ratio), exposed as
:class:`EnginePerfCounters` via :meth:`Simulator.perf_counters` and
re-exported through :mod:`repro.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class EnginePerfCounters:
    """Lifetime performance counters of one :class:`Simulator`.

    Attributes:
        events_processed: Events executed since construction.
        events_pushed: Events ever scheduled (live + fired + cancelled).
        events_cancelled: Events cancelled while still pending.
        cancelled_ratio: ``events_cancelled / events_pushed`` (0 when
            nothing was pushed); high values mean the schedule churns.
        heap_high_water: Largest event-heap size observed, including
            lazily-collected cancelled entries — the queue's real
            memory/compare footprint.
        run_wall_time: Wall-clock seconds spent inside ``run()`` loops.
        events_per_second: ``events_processed / run_wall_time`` (0 before
            the first ``run()``); the engine's throughput.
        pending_events: Live events still scheduled.
    """

    events_processed: int
    events_pushed: int
    events_cancelled: int
    cancelled_ratio: float
    heap_high_water: int
    run_wall_time: float
    events_per_second: float
    pending_events: int


class Simulator:
    """Deterministic discrete-event simulator.

    Attributes:
        now: Current simulated real time (``tau``).
        rngs: Registry of named deterministic random streams.
        obs: Observability event bus, or ``None`` (the default) when no
            flight recorder is attached; advisory only.

    Example:
        >>> sim = Simulator(seed=1)
        >>> fired = []
        >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
        >>> sim.run()
        1
        >>> fired
        [2.0]
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rngs = RngRegistry(seed)
        self._queue = EventQueue()
        self._events_processed = 0
        self._run_wall_time = 0.0
        self._running = False
        self._stop_requested = False
        # Observability bus (set by repro.obs.recorder.FlightRecorder);
        # None means no recorder is attached and publishes are skipped.
        self.obs = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds of real time from now.

        Raises:
            SimulationError: If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self._queue.push(self.now + delay, callback, tag)

    def schedule_at(self, time: float, callback: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``.

        Raises:
            SimulationError: If ``time`` is earlier than ``now``.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r}; simulator time is already {self.now!r}"
            )
        return self._queue.push(time, callback, tag)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (no-op if already fired).

        Equivalent to ``event.cancel()``: cancellation is queue-honest
        either way (see :mod:`repro.sim.events`).
        """
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single earliest pending event.

        Shares :meth:`run`'s wall-time and observability accounting, so
        ``EnginePerfCounters.events_per_second`` stays honest for
        step-driven sessions (an interactive debugger single-stepping
        the schedule) and the bus sees the same ``engine.run_end``
        shape with ``executed`` 0 or 1.

        Returns:
            ``True`` if an event was executed, ``False`` if the queue was
            empty.
        """
        executed = 0
        wall_start = perf_counter()
        try:
            event = self._queue.pop_due(None)
            if event is not None:
                self.now = event.time
                executed = 1
                event.callback()
        finally:
            self._events_processed += executed
            self._run_wall_time += perf_counter() - wall_start
        if self.obs is not None:
            # Deterministic counters only, like run() (see below).
            self.obs.publish("engine.run_end", executed=executed,
                             events_processed=self._events_processed,
                             pending_events=len(self._queue))
        return executed == 1

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events in time order.

        Args:
            until: If given, stop once the next event would fire strictly
                after ``until``.  The simulator clock is advanced to
                exactly ``until`` on return *only* when the queue was
                drained up to the horizon; an early exit via
                :meth:`stop` or ``max_events`` leaves ``now`` at the
                last executed event so a later ``run()`` resumes without
                time regression.
            max_events: If given, stop after this many events (safety
                valve for runaway schedules).

        Returns:
            Number of events executed by this call.

        Raises:
            SimulationError: On re-entrant ``run`` calls.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stop_requested = False
        executed = 0
        exhausted = False
        pop_due = self._queue.pop_due
        wall_start = perf_counter()
        try:
            while True:
                if self._stop_requested:
                    break
                if max_events is not None and executed >= max_events:
                    break
                event = pop_due(until)
                if event is None:
                    exhausted = True
                    break
                self.now = event.time
                executed += 1
                event.callback()
        finally:
            self._events_processed += executed
            self._run_wall_time += perf_counter() - wall_start
            self._running = False
        if exhausted and until is not None and self.now < until:
            self.now = until
        if self.obs is not None:
            # Deterministic counters only: wall-clock quantities would
            # break byte-identical event streams across identical runs.
            self.obs.publish("engine.run_end", executed=executed,
                             events_processed=self._events_processed,
                             pending_events=len(self._queue))
        return executed

    def stop(self) -> None:
        """Request that the current :meth:`run` loop exits after this event."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled, not yet fired) events."""
        return len(self._queue)

    def perf_counters(self) -> EnginePerfCounters:
        """Snapshot the engine's lifetime performance counters."""
        queue = self._queue
        pushed = queue.pushed_total
        cancelled = queue.cancelled_total
        wall = self._run_wall_time
        return EnginePerfCounters(
            events_processed=self._events_processed,
            events_pushed=pushed,
            events_cancelled=cancelled,
            cancelled_ratio=(cancelled / pushed) if pushed else 0.0,
            heap_high_water=queue.heap_high_water,
            run_wall_time=wall,
            events_per_second=(self._events_processed / wall) if wall > 0.0 else 0.0,
            pending_events=len(queue),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.6f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
