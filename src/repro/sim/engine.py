"""The discrete-event simulation engine.

:class:`Simulator` owns simulated real time (the paper's ``tau``), the
event queue, and the registry of named random streams.  Everything else
in the package — clocks, links, protocol processes, the adversary — is
driven by callbacks scheduled here.

Simulated time is a float in *seconds of real time*.  The paper treats
real time as "just another clock"; in this reproduction the simulator
clock *is* real time, and every hardware clock is defined as a function
of it (see :mod:`repro.clocks.hardware`).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngRegistry


class Simulator:
    """Deterministic discrete-event simulator.

    Attributes:
        now: Current simulated real time (``tau``).
        rngs: Registry of named deterministic random streams.

    Example:
        >>> sim = Simulator(seed=1)
        >>> fired = []
        >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [2.0]
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rngs = RngRegistry(seed)
        self._queue = EventQueue()
        self._events_processed = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds of real time from now.

        Raises:
            SimulationError: If ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self._queue.push(self.now + delay, callback, tag)

    def schedule_at(self, time: float, callback: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``.

        Raises:
            SimulationError: If ``time`` is earlier than ``now``.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r}; simulator time is already {self.now!r}"
            )
        return self._queue.push(time, callback, tag)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (no-op if already fired)."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single earliest pending event.

        Returns:
            ``True`` if an event was executed, ``False`` if the queue was
            empty.
        """
        if not self._queue:
            return False
        event = self._queue.pop()
        self.now = event.time
        self._events_processed += 1
        event.callback()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events in time order.

        Args:
            until: If given, stop once the next event would fire strictly
                after ``until``; the simulator clock is advanced to exactly
                ``until`` on return.
            max_events: If given, stop after this many events (safety
                valve for runaway schedules).

        Returns:
            Number of events executed by this call.

        Raises:
            SimulationError: On re-entrant ``run`` calls.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        self._stop_requested = False
        executed = 0
        try:
            while True:
                if self._stop_requested:
                    break
                if max_events is not None and executed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return executed

    def stop(self) -> None:
        """Request that the current :meth:`run` loop exits after this event."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled, not yet fired) events."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.6f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
