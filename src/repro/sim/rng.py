"""Named deterministic random streams.

Every stochastic component of a simulation (per-link delays, per-clock
wander, adversary choices, workload generators) draws from its own
named stream, derived from a single scenario seed.  This gives two
properties the experiment harness relies on:

* **Reproducibility** — a run is a pure function of ``(scenario, seed)``.
* **Variance isolation** — changing one component (say, adding a clock)
  does not perturb the random draws seen by unrelated components, so
  parameter sweeps compare like with like.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 over the pair so that distinct names give independent,
    platform-stable streams (``hash()`` is salted per process and must
    not be used here).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of named, independently seeded ``random.Random`` streams.

    Example:
        >>> rngs = RngRegistry(seed=7)
        >>> a = rngs.stream("link:0->1")
        >>> b = rngs.stream("link:0->1")
        >>> a is b
        True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry rooted at a derived seed.

        Useful when a sub-component (e.g. one replication of a sweep)
        needs its own namespace of streams.
        """
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
