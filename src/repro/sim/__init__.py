"""Discrete-event simulation substrate.

This subpackage is the foundation everything else runs on: a
deterministic event queue (:mod:`repro.sim.events`), the simulation
engine that owns real time (:mod:`repro.sim.engine`), named random
streams (:mod:`repro.sim.rng`), and the per-node process abstraction
(:mod:`repro.sim.process`).
"""

from repro.sim.engine import EnginePerfCounters, Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.process import LocalTimer, Process
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "Simulator",
    "EnginePerfCounters",
    "Event",
    "EventQueue",
    "Process",
    "LocalTimer",
    "RngRegistry",
    "derive_seed",
]
