"""Discrete-event simulation substrate.

This subpackage is the foundation everything else runs on: a
deterministic event queue (:mod:`repro.sim.events`), the simulation
engine that owns real time (:mod:`repro.sim.engine`), named random
streams (:mod:`repro.sim.rng`), and the simulator-backed runtime
adapter (:mod:`repro.sim.runtime`) that plugs the engine into the
:mod:`repro.runtime` seam.
"""

from repro.sim.engine import EnginePerfCounters, Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.runtime import LocalTimer, SimRuntime
from repro.sim.vector import (
    BatchResult,
    VectorRunOutput,
    VectorSpec,
    VectorUnsupported,
    run_batch,
    simulate_run,
)
from repro.runtime.process import Process

__all__ = [
    "Simulator",
    "EnginePerfCounters",
    "Event",
    "EventQueue",
    "Process",
    "LocalTimer",
    "SimRuntime",
    "RngRegistry",
    "derive_seed",
    "VectorSpec",
    "VectorRunOutput",
    "VectorUnsupported",
    "BatchResult",
    "simulate_run",
    "run_batch",
]
