"""Event primitives for the discrete-event simulator.

The simulator is a classic event-queue design: an :class:`EventQueue`
orders :class:`Event` objects by simulated real time, breaking ties with
a monotonically increasing sequence number so that execution order is
fully deterministic for a given schedule of calls.

Events are *cancellable*: cancelling marks the event dead and the queue
skips it on pop.  This is how local-clock timers are retargeted when a
hardware clock's rate changes, and how the adversary kills a victim's
pending alarms on break-in.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import SimulationError


class Event:
    """A scheduled callback at a simulated real time.

    Instances are created by :class:`EventQueue.push` (normally via
    :class:`repro.sim.engine.Simulator`), not directly by user code.

    Attributes:
        time: Simulated real time at which the callback fires.
        seq: Tie-break sequence number; unique per queue, increasing.
        callback: Zero-argument callable invoked when the event fires.
        tag: Free-form label used in traces and debugging output.
    """

    __slots__ = ("time", "seq", "callback", "tag", "_cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], tag: str = ""):
        self.time = float(time)
        self.seq = seq
        self.callback = callback
        self.tag = tag
        self._cancelled = False

    def cancel(self) -> None:
        """Mark this event dead; it will be skipped when popped."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called on this event."""
        return self._cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, tag={self.tag!r}, {state})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Ordering is by ``(time, seq)``.  The sequence counter belongs to the
    queue, so two queues built from identical call sequences produce
    identical execution orders.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, callback: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``callback`` at simulated time ``time``.

        Returns:
            The :class:`Event` handle, which supports :meth:`Event.cancel`.
        """
        event = Event(time, next(self._counter), callback, tag)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            SimulationError: If the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop() from an empty event queue")

    def peek_time(self) -> float | None:
        """Return the time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it is still pending in this queue."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
