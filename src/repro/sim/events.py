"""Event primitives for the discrete-event simulator.

The simulator is a classic event-queue design: an :class:`EventQueue`
orders :class:`Event` objects by simulated real time, breaking ties with
a monotonically increasing sequence number so that execution order is
fully deterministic for a given schedule of calls.

Events are *cancellable*, and cancellation is **queue-honest**: every
event knows its owning queue, so cancelling — whether through the
:meth:`Event.cancel` handle or through :meth:`EventQueue.cancel` — is a
single contract with one accounting path.  The rules:

* Cancelling a pending event immediately decrements the queue's live
  count (``len(queue)`` never overcounts); the heap entry is discarded
  lazily on a later pop.
* Cancelling an event that already fired is a no-op (a fired event
  cannot be un-executed, and the count must not go negative).
* Cancelling twice is a no-op.

This is how local-clock timers are retargeted when a hardware clock's
rate changes, and how the adversary kills a victim's pending alarms on
break-in.

Internally the heap stores ``(time, seq, event)`` tuples so that heap
sifting compares native floats/ints in C instead of calling a Python
``__lt__``; ``seq`` is unique per queue, so the event object itself is
never compared.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable

from repro.errors import SimulationError


class Event:
    """A scheduled callback at a simulated real time.

    Instances are created by :class:`EventQueue.push` (normally via
    :class:`repro.sim.engine.Simulator`), not directly by user code.

    Attributes:
        time: Simulated real time at which the callback fires.
        seq: Tie-break sequence number; unique per queue, increasing.
        callback: Zero-argument callable invoked when the event fires.
        tag: Free-form label used in traces and debugging output.
    """

    __slots__ = ("time", "seq", "callback", "tag", "_cancelled", "_fired", "_queue")

    def __init__(self, time: float, seq: int, callback: Callable[[], None],
                 tag: str = "", queue: "EventQueue | None" = None):
        self.time = float(time)
        self.seq = seq
        self.callback = callback
        self.tag = tag
        self._cancelled = False
        self._fired = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark this event dead and update its queue's live count.

        No-op when the event already fired or was already cancelled, so
        the owning queue's accounting can never go negative.
        """
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        queue = self._queue
        if queue is not None:
            queue._note_cancel()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """Whether this event was already popped for execution."""
        return self._fired

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._cancelled:
            state = "cancelled"
        elif self._fired:
            state = "fired"
        else:
            state = "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, tag={self.tag!r}, {state})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Ordering is by ``(time, seq)``.  The sequence counter belongs to the
    queue, so two queues built from identical call sequences produce
    identical execution orders.

    The queue also keeps lifetime performance counters (see
    :attr:`fired_total`, :attr:`cancelled_total`, :attr:`pushed_total`,
    :attr:`heap_high_water`), surfaced through
    :meth:`repro.sim.engine.Simulator.perf_counters`.

    Attributes:
        fired_total: Number of events handed out for execution.
        cancelled_total: Number of events cancelled while pending.
        heap_high_water: Largest heap size observed (including
            not-yet-collected cancelled entries).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._next_seq = 0
        self._live = 0
        self.fired_total = 0
        self.cancelled_total = 0
        self.heap_high_water = 0

    @property
    def pushed_total(self) -> int:
        """Number of events ever pushed onto this queue."""
        return self._next_seq

    def push(self, time: float, callback: Callable[[], None], tag: str = "") -> Event:
        """Schedule ``callback`` at simulated time ``time``.

        Returns:
            The :class:`Event` handle, which supports :meth:`Event.cancel`.
        """
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, callback, tag, self)
        heap = self._heap
        heappush(heap, (event.time, seq, event))
        self._live += 1
        if len(heap) > self.heap_high_water:
            self.heap_high_water = len(heap)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event, marking it fired.

        Raises:
            SimulationError: If the queue holds no live events.
        """
        heap = self._heap
        while heap:
            event = heappop(heap)[2]
            if event._cancelled:
                continue
            event._fired = True
            self._live -= 1
            self.fired_total += 1
            return event
        raise SimulationError("pop() from an empty event queue")

    def pop_due(self, bound: float | None = None) -> Event | None:
        """Pop the earliest live event firing at or before ``bound``.

        This is the engine's fast path: one heap traversal replaces the
        ``peek_time()`` + ``pop()`` pair.  Cancelled entries encountered
        on the way are discarded.

        Args:
            bound: Inclusive time horizon; ``None`` means no horizon.

        Returns:
            The fired :class:`Event`, or ``None`` when the queue has no
            live event due at or before ``bound``.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            if event._cancelled:
                heappop(heap)
                continue
            if bound is not None and entry[0] > bound:
                return None
            heappop(heap)
            event._fired = True
            self._live -= 1
            self.fired_total += 1
            return event
        return None

    def peek_time(self) -> float | None:
        """Return the time of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it is still pending (no-op otherwise).

        Equivalent to ``event.cancel()`` — both routes share the same
        accounting, so double-cancel and cancel-after-fire are safe.
        """
        event.cancel()

    def _note_cancel(self) -> None:
        """Accounting hook called by :meth:`Event.cancel` exactly once."""
        self._live -= 1
        self.cancelled_total += 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
