"""The simulator-backed :class:`~repro.runtime.api.NodeRuntime`.

:class:`SimRuntime` adapts one node's view of the discrete-event engine
— :class:`~repro.sim.engine.Simulator` for time and timers,
:class:`~repro.net.network.Network` for messaging — onto the runtime
seam that :mod:`repro.core` and :mod:`repro.protocols` program against.

The adapter is deliberately *transparent*: timer fire times, event
tags, network send order, and RNG draws are identical to the pre-seam
engine, so every record, trace, and benchmark stays byte-identical
(``tools/check_determinism.py`` enforces this).  The indirection is the
refactor's correctness contract, and its cost is gated below 5% on the
E1 events/sec figure by ``tools/bench_gate.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.runtime.api import MessageHandler, NodeRuntime, TimerHandle
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.clocks.logical import LogicalClock
    from repro.net.network import Network
    from repro.sim.engine import Simulator


class LocalTimer(TimerHandle):
    """Handle for a pending local-clock timer in the simulator.

    Wraps the underlying simulator :class:`Event` so the owner can cancel
    it without knowing about real-time scheduling.
    """

    __slots__ = ("event", "tag")

    def __init__(self, event: Event, tag: str):
        self.event = event
        self.tag = tag

    def cancel(self) -> None:
        """Cancel the timer if it has not fired yet.

        Safe to call twice or after the timer fired: the underlying
        event's cancellation is queue-honest (see
        :mod:`repro.sim.events`), so the simulator's live-event count
        stays exact either way.
        """
        self.event.cancel()

    @property
    def cancelled(self) -> bool:
        return self.event.cancelled


class SimRuntime(NodeRuntime):
    """One node's runtime over the discrete-event simulator.

    Args:
        node_id: The node this runtime serves.
        sim: The owning simulator (time source and timer scheduler).
        network: Message fabric used for sends and neighbor lookup.
        clock: The node's logical clock.
    """

    __slots__ = ("node_id", "sim", "network", "clock", "obs")

    def __init__(self, node_id: int, sim: "Simulator", network: "Network",
                 clock: "LogicalClock") -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.clock = clock
        self.obs = None

    # -- time ---------------------------------------------------------------

    def real_now(self) -> float:
        """Current simulated real time (``tau``)."""
        return self.sim.now

    def local_now(self) -> float:
        """Current reading of this node's logical clock.

        Overridden (rather than inherited) to keep the hot path at one
        call: clock reads happen on every message and sample.
        """
        return self.clock.read(self.sim.now)

    # -- timers -------------------------------------------------------------

    def set_local_timer(self, duration: float, callback: Callable[[], None],
                        tag: str = "timer") -> LocalTimer:
        """Arm a timer after ``duration`` of local clock (Definition 1).

        The fire time is resolved through the hardware clock exactly as
        the pre-seam engine did, and the event tag keeps the
        ``n<node>:<tag>`` shape traces rely on.
        """
        fire_at = self.clock.hardware.real_time_after(self.sim.now, duration)
        event = self.sim.schedule_at(fire_at, callback,
                                     tag=f"n{self.node_id}:{tag}")
        return LocalTimer(event, tag)

    # -- messaging ----------------------------------------------------------

    def send(self, recipient: int, payload: object) -> None:
        """Send ``payload`` to ``recipient`` over the simulated network."""
        self.network.send(self.node_id, recipient, payload)

    def broadcast(self, payload: object) -> None:
        """Send ``payload`` to every neighbor (network iteration order)."""
        self.network.broadcast(self.node_id, payload)

    def neighbors(self) -> list[int]:
        """Sorted neighbor list from the network topology."""
        return self.network.topology.neighbors(self.node_id)

    def bind(self, handler: MessageHandler) -> None:
        """Attach ``handler`` as this node's message recipient."""
        self.network.bind(handler)
