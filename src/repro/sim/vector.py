"""The vectorized mega-sim: a batch backend for cross-seed campaigns.

The scalar engine (:mod:`repro.sim.engine` + :mod:`repro.runner`)
dispatches one Python callback per event through ``Event`` objects,
``Message`` dataclasses, and the ``SimRuntime`` seam — roughly 12µs per
event.  For campaign-scale work (10^5–10^6 runs mapping resilience
boundaries) that dispatch overhead dominates.  This module executes the
same simulation as a tight loop over plain tuples and flat
struct-of-arrays state, at an order of magnitude more events per
second, while remaining **byte-identical** to the scalar reference:

* the event schedule is replayed exactly — same push order, same
  ``(time, seq)`` tie-breaking, same lazy cancellation accounting, so
  even the engine perf counters (pushed/fired/cancelled/high-water)
  match the scalar run;
* every random draw comes from the same named streams
  (:mod:`repro.sim.rng`) in the same order;
* all clock/estimation/convergence arithmetic reuses the *real*
  objects and kernels (:class:`~repro.clocks.logical.LogicalClock`,
  :func:`~repro.core.convergence.decide_arrays`), so floats are
  bit-exact, not merely close.

Per-node protocol state lives in flat struct-of-arrays columns: one
``array('d')`` row of ``(distance, accuracy)`` per (node, peer) pair, a
``bytearray`` reply mask, and per-node adjustment/ session/round
columns.  :func:`run_batch` stacks many runs and exposes final clock
state as ``(batch, node)`` columns (:mod:`repro.metrics.columns`), and
can re-verify every recorded :class:`ConvergenceDecision` of the whole
batch in one masked-array :func:`~repro.core.convergence.decide_columns`
call — the numpy fast path and the pure-python fallback agree
byte-for-byte.

The engine supports the *vector envelope*: the ``"sync"`` protocol with
its default convergence function, any clock model / topology / delay
model / loss rate / initial offsets, and corruption plans whose
strategies are all :class:`~repro.adversary.strategies.SilentStrategy`
(crash / napping faults, including recovery after release).  Anything
else raises :class:`VectorUnsupported`, and the runner-side wrapper
(:mod:`repro.runner.vector`) falls back to the scalar engine — so the
``vector`` backend is *always* correct, merely not always fast.

Within one run, Sync decisions are inherently sequential — each round's
ping/pong estimates read clocks already corrected by the previous
round — so the per-run loop applies the scalar decision kernel round by
round; the batch axis for masked array updates is across runs/rounds
(verification, summaries, benchmarks), never within one round's
dependency chain.  DESIGN.md §12 documents the layout and the masking
rules.
"""

from __future__ import annotations

import gc
import math
from array import array
from dataclasses import dataclass, field
from bisect import insort
from hashlib import sha256
from time import perf_counter
from typing import Any, Callable, Sequence

try:  # the raw C generator: same MT19937 stream, ~35% cheaper to seed
    from _random import Random as _CoreRandom
except ImportError:  # pragma: no cover - non-CPython fallback
    from random import Random as _CoreRandom

from repro.adversary.mobile import PlannedCorruption, audit_f_limited
from repro.adversary.strategies import SilentStrategy
from repro.clocks.hardware import FixedRateClock, PiecewiseRateClock
from repro.clocks.logical import LogicalClock
from repro.core.convergence import decide_arrays, decide_columns
from repro.core.params import ProtocolParams
from repro.core.sync import SyncRecord
from repro.errors import AdversaryError, SimulationError
from repro.metrics.columns import new_column
from repro.metrics.sampler import ClockSamples, CorruptionInterval
from repro.metrics.streaming import OnlineMeasures
from repro.metrics.trace import TraceRecorder
from repro.net.links import UniformDelay
from repro.sim.engine import EnginePerfCounters
from repro.sim.rng import RngRegistry

__all__ = [
    "VectorUnsupported",
    "VectorSpec",
    "VectorRunOutput",
    "DecisionLog",
    "BatchResult",
    "simulate_run",
    "run_batch",
]

_INF = math.inf
_NEG_INF = -math.inf

# Event kinds in the shadow heap (plain tuples, compared on (time, seq)):
#   (t, seq, SAMPLE)
#   (t, seq, ALARM, node)
#   (t, seq, DEADLINE, node, session)
#   (t, seq, PING, recipient, sender, session)
#   (t, seq, PONG, recipient, sender, session, clock_value)
#   (t, seq, BREAK, plan_index)
#   (t, seq, LEAVE, plan_index)
_SAMPLE, _ALARM, _DEADLINE, _PING, _PONG, _BREAK, _LEAVE = range(7)


class VectorUnsupported(Exception):
    """The scenario falls outside the vector envelope.

    Raised by :func:`simulate_run` when a feature it cannot replicate
    byte-exactly is requested (non-silent Byzantine strategies, a
    non-``"sync"`` protocol, message recording, ...).  The runner-side
    wrapper catches this and falls back to the scalar engine.
    """


@dataclass
class VectorSpec:
    """Resolved inputs of one batch run (a :class:`Scenario`, flattened).

    The engine lives below the runner layer, so it cannot import
    :class:`~repro.runner.scenario.Scenario`; the wrapper resolves the
    scenario's factories/specs into concrete objects and passes them
    here.  ``plan_context`` is the opaque first argument handed to
    ``plan_builder`` (the scenario itself when coming from the runner).

    Attributes:
        params: Protocol parameters.
        duration: Simulated real-time horizon.
        seed: Root seed of the named random streams.
        topology: Resolved topology object (``neighbors`` per node).
        delay_model: Resolved :class:`~repro.net.links.DelayModel`.
        clock_factory: ``(node, params, rng, horizon) -> HardwareClock``.
        initial_offsets: Explicit per-node initial ``adj``, or ``None``.
        initial_offset_spread: Uniform initial-offset spread when no
            explicit offsets are given.
        plan_builder: ``(plan_context, clocks) -> [PlannedCorruption]``
            or ``None`` for a fault-free run.
        plan_context: Opaque first argument for ``plan_builder``.
        enforce_f_limit: Audit the plan against Definition 2.
        sample_interval: Resolved sampling grid step.
        loss_rate: Per-message loss probability.
        stagger_phases: Randomize first-sync phases per node.
        stream_measures: Accumulate Definition 3 measures online
            (``samples`` stay empty) instead of recording the trace.
    """

    params: ProtocolParams
    duration: float
    seed: int
    topology: Any
    delay_model: Any
    clock_factory: Callable[..., Any]
    initial_offsets: Sequence[float] | None = None
    initial_offset_spread: float = 0.0
    plan_builder: Callable[..., Sequence[PlannedCorruption]] | None = None
    plan_context: Any = None
    enforce_f_limit: bool = True
    sample_interval: float = 0.0
    loss_rate: float = 0.0
    stagger_phases: bool = True
    stream_measures: bool = False


@dataclass
class DecisionLog:
    """Every convergence decision of one run, as raw array rows.

    ``over_rows[i]`` / ``under_rows[i]`` are the estimate views passed
    to the decision kernel for the ``i``-th Sync completion (run-global
    event order); the remaining columns are the kernel's outputs.  Used
    by :func:`run_batch` to re-verify the whole batch through the
    batched :func:`~repro.core.convergence.decide_columns` kernel.
    """

    over_rows: list[list[float]] = field(default_factory=list)
    under_rows: list[list[float]] = field(default_factory=list)
    corrections: list[float] = field(default_factory=list)
    ms: list[float] = field(default_factory=list)
    big_ms: list[float] = field(default_factory=list)
    own_discarded: list[bool] = field(default_factory=list)


@dataclass
class VectorRunOutput:
    """Everything the runner needs to assemble a ``RunResult``.

    Field-for-field byte-identical to what the scalar engine produces
    for the same spec: real clocks with full adjustment histories, the
    real trace recorder, the same sample columns (or the same finalized
    online measures), and the same deterministic engine counters.
    """

    clocks: dict[int, LogicalClock]
    corruptions: list[CorruptionInterval]
    trace: TraceRecorder
    samples: ClockSamples
    stream: OnlineMeasures | None
    events_processed: int
    messages_delivered: int
    perf: EnginePerfCounters
    decisions: DecisionLog | None = None


@dataclass
class BatchResult:
    """One vectorized batch: per-run outputs plus struct-of-arrays state.

    Attributes:
        outputs: One :class:`VectorRunOutput` per input spec, in order.
        final_clock_columns: ``(batch, node)`` logical-clock readings at
            each run's horizon — node-keyed float columns with one entry
            per run.  Empty when the specs mix different ``n``.
        final_adj_columns: ``(batch, node)`` final adjustment columns,
            same layout.
        events_processed: Total events executed across the batch.
        wall_time: Wall-clock seconds for the whole batch.
        decisions_verified: Number of convergence decisions re-verified
            through :func:`~repro.core.convergence.decide_columns`
            (0 unless ``check_decisions`` was requested).
    """

    outputs: list[VectorRunOutput]
    final_clock_columns: dict[int, array]
    final_adj_columns: dict[int, array]
    events_processed: int
    wall_time: float
    decisions_verified: int = 0

    def events_per_second(self) -> float:
        """Batch-level effective throughput (events / wall seconds)."""
        if self.wall_time <= 0.0:
            return 0.0
        return self.events_processed / self.wall_time


def simulate_run(spec: VectorSpec, collect_decisions: bool = False) -> VectorRunOutput:
    """Execute one run of the vector envelope, byte-identical to scalar.

    Args:
        spec: Resolved scenario inputs.
        collect_decisions: Record every decision's estimate rows and
            outputs in a :class:`DecisionLog` (memory-proportional to
            the number of Sync completions; off for benchmarks).

    Raises:
        VectorUnsupported: When the spec falls outside the envelope
            (non-silent strategies, non-positive sample interval).
        Same exceptions as the scalar engine otherwise — adversary
        audit failures, clock domain errors, parameter errors — with
        identical messages, so error records also match.
    """
    params = spec.params
    n = params.n
    duration = spec.duration
    interval = spec.sample_interval
    if interval <= 0:
        raise VectorUnsupported(f"non-positive sample interval {interval}")

    rngs = RngRegistry(spec.seed)
    stream_fn = rngs.stream
    trace = TraceRecorder(record_messages=False)

    # -- clocks (real factories, real streams, same draw order) ---------
    clocks: dict[int, LogicalClock] = {}
    offsets_rng = stream_fn("initial-offsets")
    offsets = spec.initial_offsets
    spread = spec.initial_offset_spread
    for node in range(n):
        hardware = spec.clock_factory(node, params, stream_fn(f"clock:{node}"),
                                      duration)
        if offsets is not None:
            adj0 = float(offsets[node])
        elif spread > 0.0:
            adj0 = offsets_rng.uniform(-spread / 2.0, spread / 2.0)
        else:
            adj0 = 0.0
        clocks[node] = LogicalClock(hardware, adj=adj0)

    phase_rng = stream_fn("phases")
    sync_interval = params.sync_interval
    if spec.stagger_phases:
        phases = [phase_rng.uniform(0.0, sync_interval) for _ in range(n)]
    else:
        phases = [0.0] * n

    # -- corruption plan (silent strategies only) -----------------------
    plan: list[PlannedCorruption] = []
    corruptions: list[CorruptionInterval] = []
    if spec.plan_builder is not None:
        plan = list(spec.plan_builder(spec.plan_context, clocks))
        for corruption in plan:
            if type(corruption.strategy) is not SilentStrategy:
                raise VectorUnsupported(
                    f"strategy {corruption.strategy.name!r} is not in the "
                    f"vector envelope (silent crash faults only)")
        if spec.enforce_f_limit:
            audit_f_limited(plan, params.f, params.pi)
        corruptions = [c.interval() for c in plan]

    # -- measurement sinks ----------------------------------------------
    record = not spec.stream_measures
    samples = ClockSamples(times=new_column(),
                           clocks={node: new_column() for node in range(n)})
    stream: OnlineMeasures | None = None
    if spec.stream_measures:
        stream = OnlineMeasures(
            clocks, corruptions, pi=params.pi, n=params.n,
            recovery_tolerance=params.bounds().max_deviation,
            recovery_settle=params.pi,
        )

    # -- struct-of-arrays node state ------------------------------------
    nn = n * n
    est_d = [0.0] * nn                    # per (node, peer) distance
    est_a = [0.0] * nn                    # per (node, peer) accuracy
    replied = bytearray(nn)               # per (node, peer) reply mask
    zero_row = bytes(n)
    adj = [clocks[node].adj for node in range(n)]  # mirror of clocks[i].adj
    sess_send = [0.0] * n                 # send-local of the open session
    controlled = bytearray(n)             # adversary occupation mask
    sess_active = [-1] * n                # open session token, -1 = none
    awaiting = [0] * n                    # outstanding pongs this session
    round_no = [0] * n
    node_timer = [-1] * n                 # seq of the pending local timer

    topology = spec.topology
    neighbor_list = [topology.neighbors(node) for node in range(n)]
    readers = [clocks[node].hardware.read for node in range(n)]
    afters = [clocks[node].hardware.real_time_after for node in range(n)]
    times_append = samples.times.append
    sample_appends = [samples.clocks[node].append for node in range(n)]
    on_sync = trace.on_sync
    on_corruption = trace.on_corruption
    on_sample = stream.on_sample if stream is not None else None

    # -- inlined clock reads --------------------------------------------
    # Hardware reads dominate message handling, so the per-segment
    # linear map of the two standard clock shapes is mirrored into flat
    # columns and evaluated inline with the *identical* float
    # expression (``h + (tau - start) * rate``, then ``+ adj``).  Event
    # times pop in non-decreasing order, so segments only ever advance;
    # `_read_slow` re-anchors the columns when ``t`` crosses a segment
    # boundary, and serves exotic clock shapes (quantized, custom) via
    # the real ``read`` method by pinning ``ck_next`` to ``-inf``.
    ck_h = [0.0] * n                      # segment-start hardware value
    ck_s = [0.0] * n                      # segment-start real time
    ck_r = [1.0] * n                      # segment rate
    ck_next = [_INF] * n                  # real time of the next segment
    pw_starts: list[list[float] | None] = [None] * n
    pw_h: list[list[float] | None] = [None] * n
    pw_rates: list[list[float] | None] = [None] * n
    pw_idx = [0] * n
    for node in range(n):
        hw = clocks[node].hardware
        hw_type = type(hw)
        if hw_type is FixedRateClock and hw.origin == 0.0:
            ck_h[node] = hw.offset
            ck_s[node] = hw.origin
            ck_r[node] = hw.rate
        elif hw_type is PiecewiseRateClock and hw.origin == 0.0:
            starts = hw._starts
            pw_starts[node] = starts
            pw_h[node] = hw._h_at_start
            pw_rates[node] = hw._rates
            ck_h[node] = hw._h_at_start[0]
            ck_s[node] = starts[0]
            ck_r[node] = hw._rates[0]
            ck_next[node] = starts[1] if len(starts) > 1 else _INF
        else:
            ck_next[node] = _NEG_INF      # always take the slow path

    def _read_slow(node: int, tau: float) -> float:
        """Logical-clock read outside the cached segment (rare)."""
        starts = pw_starts[node]
        if starts is None:
            return readers[node](tau) + adj[node]
        i = pw_idx[node] + 1
        last = len(starts) - 1
        while i < last and tau >= starts[i + 1]:
            i += 1
        pw_idx[node] = i
        ck_h[node] = h = pw_h[node][i]
        ck_s[node] = s = starts[i]
        ck_r[node] = r = pw_rates[node][i]
        ck_next[node] = starts[i + 1] if i < last else _INF
        return h + (tau - s) * r + adj[node]

    read_slow = _read_slow

    # -- per-link random streams ----------------------------------------
    # Byte-parity pins the *values*: each link/loss stream is the
    # MT19937 sequence of ``random.Random(derive_seed(seed, name))``.
    # The loop consumes them through raw ``_random.Random`` instances
    # (cheaper to seed, identical output) and applies CPython's
    # ``uniform`` formula ``a + (b - a) * random()`` inline on the
    # bound C ``random`` method.
    seed_prefix = f"{spec.seed}:".encode()

    def _link_random(sender: int, recipient: int) -> Callable[[], float]:
        digest = sha256(seed_prefix + b"link:%d->%d"
                        % (sender, recipient)).digest()
        return _CoreRandom(int.from_bytes(digest[:8], "big")).random

    def _loss_random(sender: int, recipient: int) -> Callable[[], float]:
        digest = sha256(seed_prefix + b"loss:%d->%d"
                        % (sender, recipient)).digest()
        return _CoreRandom(int.from_bytes(digest[:8], "big")).random

    delay_model = spec.delay_model
    dm_sample = delay_model.sample
    uniform_fast = type(delay_model) is UniformDelay
    if uniform_fast:
        dm_lo, dm_hi, dm_delta = delay_model.lo, delay_model.hi, delay_model.delta
    else:
        dm_lo = dm_hi = dm_delta = 0.0
    dm_span = dm_hi - dm_lo
    loss_rate = spec.loss_rate
    draw_fast: list[Callable[[], float] | None] = [None] * nn
    link_rngs: list[Any] = [None] * nn
    loss_draws: list[Callable[[], float] | None] = [None] * nn

    include_self = params.include_self
    f_param = params.f
    way_off = params.way_off
    max_wait = params.max_wait
    decide = decide_arrays
    log = DecisionLog() if collect_decisions else None

    # -- calendar event queue: exact heap order, O(1) amortized ---------
    # Replays the scalar heap's total order exactly.  Events are
    # bucketed by time (equal times always share a bucket); a bucket is
    # sorted in bulk when the cursor enters it — full-tuple comparison
    # with unique ``seq`` numbers reproduces heapq's ``(time, seq)``
    # tie-breaking — and pushes that land in the bucket currently being
    # drained insert in sorted position past the read cursor.  ``hsize``
    # tracks the number of *pending* entries (lazily cancelled
    # included), which is exactly the scalar heap's size, so the
    # high-water and pending counters stay byte-identical.
    cancelled: set[int] = set()
    cancelled_add = cancelled.add
    cancelled_discard = cancelled.discard
    avg_degree = (sum(len(peers) for peers in neighbor_list) / n) if n else 0.0
    rounds_est = duration / sync_interval if sync_interval > 0.0 else 0.0
    est_events = (n * rounds_est * (2.0 * avg_degree + 2.0)
                  + duration / interval + 2.0 * len(plan) + n)
    nb = int(est_events / 8.0)
    if nb < 16:
        nb = 16
    elif nb > 131072:
        nb = 131072
    inv_w = nb / duration if duration > 0.0 else 0.0
    buckets: list[list[tuple] | None] = [[] for _ in range(nb)]
    last_b = nb - 1
    cur_b = -1
    cl: list[tuple] = []                  # the bucket being drained
    ci = 0                                # read cursor into ``cl``
    nseq = 0
    hsize = 0
    high_water = 0
    fired = 0
    ncancelled = 0
    delivered = 0
    sample_count = 0

    def _seed_push(event: tuple) -> None:
        b = int(event[0] * inv_w)
        bucket = buckets[b if b < last_b else last_b]
        assert bucket is not None
        bucket.append(event)

    # Push order mirrors repro.runner.experiment.run: adversary install
    # (plan order: break-in, then finite release), then the sample grid,
    # then each node's first sync alarm.
    for idx, corruption in enumerate(plan):
        if corruption.start < 0.0:
            raise SimulationError(
                f"cannot schedule at t={corruption.start!r}; "
                f"simulator time is already 0.0")
        _seed_push((corruption.start, nseq, _BREAK, idx))
        nseq += 1
        hsize += 1
        if math.isfinite(corruption.end):
            _seed_push((corruption.end, nseq, _LEAVE, idx))
            nseq += 1
            hsize += 1
    grid_t = 0.0
    while grid_t <= duration + 1e-12:
        _seed_push((grid_t, nseq, _SAMPLE))
        nseq += 1
        hsize += 1
        grid_t += interval
    for node in range(n):
        fire = afters[node](0.0, phases[node])
        _seed_push((fire, nseq, _ALARM, node))
        node_timer[node] = nseq
        nseq += 1
        hsize += 1
    high_water = hsize

    sess_counter = 0
    complete_node = -1
    wall_start = perf_counter()
    cn = 0                                # cached len(cl); insort bumps it
    while True:
        if ci == cn:
            b = cur_b + 1
            while b < nb and not buckets[b]:
                b += 1
            if b == nb:
                break
            if cur_b >= 0:
                buckets[cur_b] = None     # free drained buckets early
            cur_b = b
            cl = buckets[b]
            cl.sort()
            cn = len(cl)
            ci = 0
            continue
        ev = cl[ci]
        if cancelled and ev[1] in cancelled:
            ci += 1
            hsize -= 1
            cancelled_discard(ev[1])
            continue
        t = ev[0]
        if t > duration:
            break
        ci += 1
        hsize -= 1
        fired += 1
        kind = ev[2]

        if kind == _PING:
            # Deliver a ping: a good node always answers with a pong
            # carrying its current logical clock; a controlled (silent)
            # node drops it after the delivery is counted.
            r = ev[3]
            delivered += 1
            if controlled[r]:
                continue
            if t < ck_next[r]:
                clock_value = ck_h[r] + (t - ck_s[r]) * ck_r[r] + adj[r]
            else:
                clock_value = read_slow(r, t)
            s_node = ev[4]
            key = r * n + s_node
            if loss_rate > 0.0:
                loss = loss_draws[key]
                if loss is None:
                    loss = loss_draws[key] = _loss_random(r, s_node)
                if loss() < loss_rate:
                    continue
            if uniform_fast:
                draw = draw_fast[key]
                if draw is None:
                    draw = draw_fast[key] = _link_random(r, s_node)
                delay = dm_lo + dm_span * draw()
                if delay > dm_delta:
                    delay = dm_delta
            else:
                rng = link_rngs[key]
                if rng is None:
                    rng = link_rngs[key] = stream_fn(f"link:{r}->{s_node}")
                delay = dm_sample(r, s_node, rng)
            tm = t + delay
            event = (tm, nseq, _PONG, s_node, r, ev[5], clock_value)
            b = int(tm * inv_w)
            if b >= last_b:
                b = last_b
            if b != cur_b:
                buckets[b].append(event)
            else:
                insort(cl, event, ci)
                cn += 1
            nseq += 1
            hsize += 1
            if hsize > high_water:
                high_water = hsize

        elif kind == _PONG:
            # Deliver a pong: accepted only by the session that sent the
            # matching ping (stale/duplicate replies are no-ops, exactly
            # like the scalar nonce check).
            o = ev[3]
            delivered += 1
            if controlled[o]:
                continue
            if ev[5] != sess_active[o]:
                continue
            base = o * n + ev[4]
            if replied[base]:
                continue
            if t < ck_next[o]:
                receive_local = ck_h[o] + (t - ck_s[o]) * ck_r[o] + adj[o]
            else:
                receive_local = read_slow(o, t)
            sent_local = sess_send[o]
            est_d[base] = ev[6] - (receive_local + sent_local) / 2.0
            est_a[base] = (receive_local - sent_local) / 2.0
            replied[base] = 1
            remaining = awaiting[o] - 1
            awaiting[o] = remaining
            if remaining == 0:
                cancelled_add(node_timer[o])
                ncancelled += 1
                node_timer[o] = -1
                complete_node = o

        elif kind == _SAMPLE:
            if record:
                times_append(t)
                for node in range(n):
                    if t < ck_next[node]:
                        value = (ck_h[node] + (t - ck_s[node]) * ck_r[node]
                                 + adj[node])
                    else:
                        value = read_slow(node, t)
                    sample_appends[node](value)
            else:
                on_sample(t, sample_count)
            sample_count += 1

        elif kind == _ALARM:
            # Begin a Sync round: one send-local read, a ping per peer
            # (loss then delay draw, per-link streams, peer order), then
            # the max-wait deadline.
            node = ev[3]
            if node_timer[node] == ev[1]:
                node_timer[node] = -1
            round_no[node] += 1
            sess_counter += 1
            token = sess_counter
            sess_active[node] = token
            if t < ck_next[node]:
                send_local = ck_h[node] + (t - ck_s[node]) * ck_r[node] \
                    + adj[node]
            else:
                send_local = read_slow(node, t)
            sess_send[node] = send_local
            row = node * n
            peers = neighbor_list[node]
            replied[row:row + n] = zero_row
            awaiting[node] = len(peers)
            nseq_before = nseq
            for peer in peers:
                key = row + peer
                if loss_rate > 0.0:
                    loss = loss_draws[key]
                    if loss is None:
                        loss = loss_draws[key] = _loss_random(node, peer)
                    if loss() < loss_rate:
                        continue
                if uniform_fast:
                    draw = draw_fast[key]
                    if draw is None:
                        draw = draw_fast[key] = _link_random(node, peer)
                    delay = dm_lo + dm_span * draw()
                    if delay > dm_delta:
                        delay = dm_delta
                else:
                    rng = link_rngs[key]
                    if rng is None:
                        rng = link_rngs[key] = stream_fn(f"link:{node}->{peer}")
                    delay = dm_sample(node, peer, rng)
                tm = t + delay
                event = (tm, nseq, _PING, peer, node, token)
                b = int(tm * inv_w)
                if b >= last_b:
                    b = last_b
                if b != cur_b:
                    buckets[b].append(event)
                else:
                    insort(cl, event, ci)
                    cn += 1
                nseq += 1
            fire = afters[node](t, max_wait)
            event = (fire, nseq, _DEADLINE, node, token)
            b = int(fire * inv_w)
            if b >= last_b:
                b = last_b
            if b != cur_b:
                buckets[b].append(event)
            else:
                insort(cl, event, ci)
                cn += 1
            node_timer[node] = nseq
            nseq += 1
            # hsize rises monotonically through this handler (every
            # push bumps nseq, lost pings bump neither), so one
            # high-water check after the deadline push is exact.
            hsize += nseq - nseq_before
            if hsize > high_water:
                high_water = hsize

        elif kind == _DEADLINE:
            node = ev[3]
            if node_timer[node] == ev[1]:
                node_timer[node] = -1
            if ev[4] == sess_active[node]:
                complete_node = node

        elif kind == _BREAK:
            corruption = plan[ev[3]]
            node = corruption.node
            if controlled[node]:
                raise AdversaryError(
                    f"node {node} is already controlled at break-in")
            controlled[node] = 1
            timer = node_timer[node]
            if timer >= 0:
                cancelled_add(timer)
                ncancelled += 1
                node_timer[node] = -1
            on_corruption(node, t, "break_in", corruption.strategy.name)

        else:  # _LEAVE
            corruption = plan[ev[3]]
            node = corruption.node
            if not controlled[node]:
                raise AdversaryError(
                    f"release of node {node} that is not controlled")
            controlled[node] = 0
            # Recovery restart: fresh session, first delay is the start
            # phase when the node never ran a round, else SyncInt.
            sess_active[node] = -1
            first_delay = phases[node] if round_no[node] == 0 else sync_interval
            fire = afters[node](t, first_delay)
            event = (fire, nseq, _ALARM, node)
            b = int(fire * inv_w)
            if b >= last_b:
                b = last_b
            if b != cur_b:
                buckets[b].append(event)
            else:
                insort(cl, event, ci)
                cn += 1
            node_timer[node] = nseq
            nseq += 1
            hsize += 1
            if hsize > high_water:
                high_water = hsize
            on_corruption(node, t, "release", corruption.strategy.name)

        if complete_node >= 0:
            # Complete the Sync: estimates in sorted-peer order (timeout
            # = (0, inf)), optional self estimate, one decision-kernel
            # call, real clock adjustment, real trace record, next alarm.
            o = complete_node
            complete_node = -1
            sess_active[o] = -1
            row = o * n
            overs: list[float] = []
            unders: list[float] = []
            replies = 0
            for peer in neighbor_list[o]:
                base = row + peer
                if replied[base]:
                    distance = est_d[base]
                    accuracy = est_a[base]
                    overs.append(distance + accuracy)
                    unders.append(distance - accuracy)
                    replies += 1
                else:
                    overs.append(_INF)
                    unders.append(_NEG_INF)
            if include_self:
                overs.append(0.0)
                unders.append(0.0)
            if t < ck_next[o]:
                local_before = ck_h[o] + (t - ck_s[o]) * ck_r[o] + adj[o]
            else:
                local_before = read_slow(o, t)
            decision = decide(overs, unders, f_param, way_off)
            clock = clocks[o]
            clock.adjust(t, decision.correction)
            adj[o] = clock.adj
            on_sync(SyncRecord(o, round_no[o], t, local_before,
                               decision.correction, decision.m,
                               decision.big_m, decision.own_discarded,
                               replies))
            if log is not None:
                log.over_rows.append(overs)
                log.under_rows.append(unders)
                log.corrections.append(decision.correction)
                log.ms.append(decision.m)
                log.big_ms.append(decision.big_m)
                log.own_discarded.append(decision.own_discarded)
            fire = afters[o](t, sync_interval)
            event = (fire, nseq, _ALARM, o)
            b = int(fire * inv_w)
            if b >= last_b:
                b = last_b
            if b != cur_b:
                buckets[b].append(event)
            else:
                insort(cl, event, ci)
                cn += 1
            node_timer[o] = nseq
            nseq += 1
            hsize += 1
            if hsize > high_water:
                high_water = hsize

    wall = perf_counter() - wall_start
    if stream is not None:
        stream.finalize()

    perf = EnginePerfCounters(
        events_processed=fired,
        events_pushed=nseq,
        events_cancelled=ncancelled,
        cancelled_ratio=(ncancelled / nseq) if nseq else 0.0,
        heap_high_water=high_water,
        run_wall_time=wall,
        events_per_second=(fired / wall) if wall > 0.0 else 0.0,
        pending_events=nseq - fired - ncancelled,
    )
    return VectorRunOutput(
        clocks=clocks,
        corruptions=corruptions,
        trace=trace,
        samples=samples,
        stream=stream,
        events_processed=fired,
        messages_delivered=delivered,
        perf=perf,
        decisions=log,
    )


def run_batch(specs: Sequence[VectorSpec],
              check_decisions: bool = False) -> BatchResult:
    """Run many independent specs as one batch in a single process.

    Each run executes through :func:`simulate_run` (runs are
    independent, but their internal event schedules are data-dependent,
    so they cannot share one heap); the batch layer stacks the final
    per-node clock state into ``(batch, node)`` struct-of-arrays columns
    and, with ``check_decisions``, re-evaluates **every** recorded
    convergence decision of the whole batch through the masked
    :func:`~repro.core.convergence.decide_columns` kernel, asserting
    float-exact agreement with the corrections the runs applied.

    Raises:
        SimulationError: When the batched kernel disagrees with a
            sequentially applied decision (would indicate a backend
            divergence bug — this is the batch self-check).
    """
    outputs: list[VectorRunOutput] = []
    # The hot loop's allocations are balanced (every event tuple pushed
    # is popped and dropped), so cyclic-gc passes triggered by the sheer
    # allocation *rate* find nothing and only cost time.  Batches own
    # their process slot, so suspend collection for the duration.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    wall_start = perf_counter()
    try:
        for spec in specs:
            outputs.append(
                simulate_run(spec, collect_decisions=check_decisions))
    finally:
        wall = perf_counter() - wall_start
        if gc_was_enabled:
            gc.enable()

    clock_columns: dict[int, array] = {}
    adj_columns: dict[int, array] = {}
    sizes = {len(output.clocks) for output in outputs}
    if len(sizes) == 1 and outputs:
        n = sizes.pop()
        clock_columns = {node: new_column() for node in range(n)}
        adj_columns = {node: new_column() for node in range(n)}
        for spec, output in zip(specs, outputs):
            horizon = spec.duration
            for node in range(n):
                clock = output.clocks[node]
                clock_columns[node].append(clock.read(horizon))
                adj_columns[node].append(clock.adj)

    verified = 0
    if check_decisions:
        # Group rows by width (mixed-degree topologies and mixed specs
        # produce different estimate counts), one batched kernel call
        # per group.
        grouped: dict[tuple[int, int, float], list[tuple[list[float], list[float], float, float, float, bool]]] = {}
        for spec, output in zip(specs, outputs):
            log = output.decisions
            if log is None:
                continue
            for i, over_row in enumerate(log.over_rows):
                group_key = (len(over_row), spec.params.f, spec.params.way_off)
                grouped.setdefault(group_key, []).append(
                    (over_row, log.under_rows[i], log.corrections[i],
                     log.ms[i], log.big_ms[i], log.own_discarded[i]))
        for (width, f, way_off), rows in grouped.items():
            over_rows = [row[0] for row in rows]
            under_rows = [row[1] for row in rows]
            corrections, ms, big_ms, discarded = decide_columns(
                over_rows, under_rows, f, way_off)
            for i, row in enumerate(rows):
                if (corrections[i] != row[2] or ms[i] != row[3]
                        or big_ms[i] != row[4] or discarded[i] != row[5]):
                    raise SimulationError(
                        f"batched decision kernel diverged from the applied "
                        f"decision: row width {width}, f={f}: "
                        f"({corrections[i]!r}, {ms[i]!r}, {big_ms[i]!r}, "
                        f"{discarded[i]!r}) != ({row[2]!r}, {row[3]!r}, "
                        f"{row[4]!r}, {row[5]!r})")
                verified += 1

    return BatchResult(
        outputs=outputs,
        final_clock_columns=clock_columns,
        final_adj_columns=adj_columns,
        events_processed=sum(output.events_processed for output in outputs),
        wall_time=wall,
        decisions_verified=verified,
    )
