"""JSON scenario configuration: declarative experiments.

Lets operators describe a run in a config file instead of Python::

    {
      "params": {"n": 7, "f": 2, "delta": 0.005, "rho": 5e-4, "pi": 4.0},
      "scenario": "mobile-byzantine",
      "protocol": "sync",
      "duration": 20.0,
      "seed": 1,
      "clocks": "wander",
      "delay": {"model": "uniform"},
      "loss_rate": 0.0
    }

consumed via ``python -m repro run --config experiment.json`` or
:func:`scenario_from_config`.  Only canonical scenarios, registered
protocols, and the named clock/delay models are reachable from configs
— arbitrary code stays in Python, so configs are safe to accept from
experiment directories.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.core.params import ProtocolParams
from repro.errors import ConfigurationError
from repro.net.links import (
    AsymmetricDelay,
    DelayModel,
    FixedDelay,
    JitteredDelay,
    UniformDelay,
)
from repro.runner.builders import (
    benign_scenario,
    mobile_byzantine_scenario,
    recovery_scenario,
    split_world_scenario,
)
from repro.runner.scenario import (
    Scenario,
    extremal_clocks,
    perfect_clocks,
    wander_clocks,
)

_SCENARIOS = {
    "benign": benign_scenario,
    "mobile-byzantine": mobile_byzantine_scenario,
    "recovery": recovery_scenario,
    "split-world": split_world_scenario,
}

_CLOCKS = {
    "wander": wander_clocks,
    "extremal": extremal_clocks,
    "perfect": perfect_clocks,
}

_DELAYS = {
    "fixed": FixedDelay,
    "uniform": UniformDelay,
    "asymmetric": AsymmetricDelay,
    "jittered": JitteredDelay,
}


def params_from_config(spec: dict[str, Any]) -> ProtocolParams:
    """Build :class:`ProtocolParams` from the ``params`` config section.

    Either a full explicit parameterization (``sync_interval`` etc.
    present) or the common derived form (``n, f, delta, rho, pi`` and
    optional ``target_k``).
    """
    required = {"n", "f", "delta", "rho", "pi"}
    missing = required - spec.keys()
    if missing:
        raise ConfigurationError(f"params config missing keys: {sorted(missing)}")
    if "sync_interval" in spec:
        return ProtocolParams(**spec)
    return ProtocolParams.derive(
        n=int(spec["n"]), f=int(spec["f"]), delta=float(spec["delta"]),
        rho=float(spec["rho"]), pi=float(spec["pi"]),
        target_k=int(spec.get("target_k", 10)),
    )


def delay_from_config(spec: dict[str, Any] | None, delta: float) -> DelayModel | None:
    """Build a delay model from the ``delay`` config section."""
    if spec is None:
        return None
    kind = spec.get("model")
    if kind not in _DELAYS:
        raise ConfigurationError(
            f"unknown delay model {kind!r}; known: {sorted(_DELAYS)}")
    kwargs = {k: v for k, v in spec.items() if k != "model"}
    return _DELAYS[kind](delta, **kwargs)


def scenario_from_config(config: dict[str, Any]) -> Scenario:
    """Build a complete :class:`Scenario` from a parsed config dict.

    Raises:
        ConfigurationError: Naming the offending key on any mistake.
    """
    if "params" not in config:
        raise ConfigurationError("config requires a 'params' section")
    params = params_from_config(config["params"])

    scenario_name = config.get("scenario", "benign")
    if scenario_name not in _SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {scenario_name!r}; known: {sorted(_SCENARIOS)}")

    clocks_name = config.get("clocks", "wander")
    if clocks_name not in _CLOCKS:
        raise ConfigurationError(
            f"unknown clock model {clocks_name!r}; known: {sorted(_CLOCKS)}")

    builder = _SCENARIOS[scenario_name]
    scenario = builder(
        params,
        duration=float(config.get("duration", 20.0)),
        seed=int(config.get("seed", 0)),
        protocol=config.get("protocol", "sync"),
        clock_factory=_CLOCKS[clocks_name],
    )
    scenario.delay_model = delay_from_config(config.get("delay"), params.delta)
    scenario.loss_rate = float(config.get("loss_rate", 0.0))
    if "sample_interval" in config:
        scenario.sample_interval = float(config["sample_interval"])
    if "initial_offset_spread" in config:
        scenario.initial_offset_spread = float(config["initial_offset_spread"])
    if "stagger_phases" in config:
        scenario.stagger_phases = bool(config["stagger_phases"])
    return scenario


def load_scenario(path: str | pathlib.Path) -> Scenario:
    """Read a JSON config file and build its scenario.

    Raises:
        ConfigurationError: On unreadable files or invalid JSON, with
            the path in the message.
    """
    path = pathlib.Path(path)
    try:
        config = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigurationError(f"config file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON in {path}: {exc}") from None
    if not isinstance(config, dict):
        raise ConfigurationError(f"config root must be an object: {path}")
    return scenario_from_config(config)
