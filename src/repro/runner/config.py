"""JSON scenario configuration: declarative experiments.

Lets operators describe a run in a config file instead of Python::

    {
      "params": {"n": 7, "f": 2, "delta": 0.005, "rho": 5e-4, "pi": 4.0},
      "scenario": "mobile-byzantine",
      "protocol": "sync",
      "duration": 20.0,
      "seed": 1,
      "clocks": "wander",
      "delay": {"model": "uniform"},
      "loss_rate": 0.0
    }

consumed via ``python -m repro run --config experiment.json``,
``python -m repro sweep``, or :func:`scenario_from_config`.  Two forms
are accepted:

* the ``"scenario"`` shorthand above — a canonical builder name plus
  overrides; also the default (``"benign"``) when no builder, plan, or
  topology is named;
* the full declarative form produced by ``Scenario.to_config()`` —
  explicit ``plan`` / ``topology`` / ``name`` sections (see
  :meth:`repro.runner.scenario.Scenario.from_config`).

Unknown top-level keys are rejected (a typo like ``"loss_rte"`` must
not silently run a different experiment).  Only canonical scenarios,
registered protocols, plans, strategies, and the named clock / delay /
topology models are reachable from configs — arbitrary code stays in
Python, so configs are safe to accept from experiment directories.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.clocks.factories import CLOCK_MODELS
from repro.core.params import ProtocolParams
from repro.errors import ConfigurationError
from repro.net.links import DelayModel, DelaySpec
from repro.runner.builders import (
    benign_scenario,
    mobile_byzantine_scenario,
    recovery_scenario,
    split_world_scenario,
)
from repro.runner.scenario import Scenario

_SCENARIOS = {
    "benign": benign_scenario,
    "mobile-byzantine": mobile_byzantine_scenario,
    "recovery": recovery_scenario,
    "split-world": split_world_scenario,
}

#: Keys the builder-shorthand form understands; the declarative form
#: additionally understands ``plan`` / ``topology`` / ``name`` / etc.
#: (see ``Scenario.CONFIG_KEYS``).
CONFIG_KEYS = frozenset(Scenario.CONFIG_KEYS | {"scenario"})


def params_from_config(spec: dict[str, Any]) -> ProtocolParams:
    """Build :class:`ProtocolParams` from the ``params`` config section.

    Thin wrapper over :meth:`ProtocolParams.from_config`: either a full
    explicit parameterization (``sync_interval`` etc. present) or the
    common derived form (``n, f, delta, rho, pi`` and optional
    ``target_k``).  Unknown or mixed keys raise
    :class:`~repro.errors.ConfigurationError` naming the offenders.
    """
    return ProtocolParams.from_config(spec)


def delay_from_config(spec: dict[str, Any] | None, delta: float) -> DelayModel | None:
    """Build a delay model from the ``delay`` config section."""
    if spec is None:
        return None
    return DelaySpec.from_config(spec).build(delta)


def scenario_from_config(config: dict[str, Any]) -> Scenario:
    """Build a complete :class:`Scenario` from a parsed config dict.

    Dispatch: a ``"scenario"`` key (or neither ``plan`` nor ``topology``
    nor ``name``) selects a canonical builder with overrides; otherwise
    the config is the full declarative form and goes through
    :meth:`Scenario.from_config`.

    Raises:
        ConfigurationError: Naming the offending key on any mistake,
            including unknown top-level keys.
    """
    unknown = config.keys() - CONFIG_KEYS
    if unknown:
        raise ConfigurationError(
            f"unknown config keys {sorted(unknown)}; known: {sorted(CONFIG_KEYS)}")

    declarative = {"plan", "topology", "name"} & config.keys()
    if "scenario" in config and declarative:
        raise ConfigurationError(
            f"'scenario' (builder shorthand) cannot be combined with the "
            f"declarative keys {sorted(declarative)}; use one form or the other")
    if "scenario" not in config and declarative:
        return Scenario.from_config(config)

    if "params" not in config:
        raise ConfigurationError("config requires a 'params' section")
    params = params_from_config(config["params"])

    scenario_name = config.get("scenario", "benign")
    if scenario_name not in _SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {scenario_name!r}; known: {sorted(_SCENARIOS)}")

    clocks_name = config.get("clocks", "wander")
    if clocks_name not in CLOCK_MODELS:
        raise ConfigurationError(
            f"unknown clock model {clocks_name!r}; known: {sorted(CLOCK_MODELS)}")

    builder = _SCENARIOS[scenario_name]
    scenario = builder(
        params,
        duration=float(config.get("duration", 20.0)),
        seed=int(config.get("seed", 0)),
        protocol=config.get("protocol", "sync"),
        clock_factory=clocks_name,
    )
    if "delay" in config:
        scenario.delay_model = DelaySpec.from_config(config["delay"])
    scenario.loss_rate = float(config.get("loss_rate", 0.0))
    if "sample_interval" in config:
        scenario.sample_interval = float(config["sample_interval"])
    if "initial_offset_spread" in config:
        scenario.initial_offset_spread = float(config["initial_offset_spread"])
    if "initial_offsets" in config:
        scenario.initial_offsets = [float(x) for x in config["initial_offsets"]]
    if "stagger_phases" in config:
        scenario.stagger_phases = bool(config["stagger_phases"])
    if "record_messages" in config:
        scenario.record_messages = bool(config["record_messages"])
    if "enforce_f_limit" in config:
        scenario.enforce_f_limit = bool(config["enforce_f_limit"])
    if "extra" in config:
        scenario.extra = dict(config["extra"])
    return scenario


def load_scenario(path: str | pathlib.Path) -> Scenario:
    """Read a JSON config file and build its scenario.

    Raises:
        ConfigurationError: On unreadable files or invalid JSON, with
            the path in the message.
    """
    path = pathlib.Path(path)
    try:
        config = json.loads(path.read_text())
    except FileNotFoundError:
        raise ConfigurationError(f"config file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON in {path}: {exc}") from None
    if not isinstance(config, dict):
        raise ConfigurationError(f"config root must be an object: {path}")
    return scenario_from_config(config)
