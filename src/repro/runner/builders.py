"""Canonical scenario builders used by tests, examples, and benchmarks.

These encode the standard workloads of the evaluation:

* :func:`default_params` — a laptop-scale parameterization with visible
  drift (``rho`` inflated vs. real crystals so effects show up in
  seconds of simulated time).
* :func:`benign_scenario` — drift only, no adversary.
* :func:`mobile_byzantine_scenario` — the headline workload: a rotating
  f-limited adversary corrupting every node over time with a mix of
  strategies.
* :func:`recovery_scenario` — one corruption burst, for focused
  recovery measurement.
* :func:`split_world_scenario` — the omniscient spreading attack, for
  probing the tightness of the deviation bound.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.adversary.plans import PlanSpec, StrategySpec
from repro.adversary.strategies import standard_strategy_mix  # noqa: F401  -- re-export
from repro.core.params import ProtocolParams
from repro.net.topology import TopologySpec
from repro.runner.scenario import Scenario


def default_params(n: int = 7, f: int = 2, delta: float = 0.005, rho: float = 5e-4,
                   pi: float = 2.0, target_k: int = 10) -> ProtocolParams:
    """A laptop-scale parameterization with strict validation.

    ``rho = 5e-4`` is deliberately ~100x a real crystal's drift so that
    drift effects are visible within seconds of simulated time; the
    protocol's guarantees are drift-scale-free, so this only compresses
    the experiment timescale.
    """
    return ProtocolParams.derive(n=n, f=f, delta=delta, rho=rho, pi=pi, target_k=target_k)


def benign_scenario(params: ProtocolParams | None = None, duration: float = 10.0,
                    seed: int = 0, **kwargs) -> Scenario:
    """Drift and jitter only — no adversary."""
    params = params if params is not None else default_params()
    return Scenario(params=params, duration=duration, seed=seed,
                    name="benign", **kwargs)


def mobile_byzantine_scenario(params: ProtocolParams | None = None,
                              duration: float = 30.0, seed: int = 0,
                              dwell: float | None = None, **kwargs) -> Scenario:
    """The headline workload: rotating f-limited Byzantine corruption.

    Over the run, the adversary corrupts group after group of ``f``
    processors (eventually all of them, repeatedly), each episode using
    the :func:`standard_strategy_mix`.
    """
    params = params if params is not None else default_params()
    options = {"first_start": 2.0 * params.t_interval}  # let startup converge
    if dwell is not None:
        options["dwell"] = dwell
    plan = PlanSpec("rotating", StrategySpec("standard-mix"), options)
    return Scenario(params=params, duration=duration, seed=seed,
                    plan_builder=plan, name="mobile-byzantine", **kwargs)


def recovery_scenario(params: ProtocolParams | None = None, duration: float = 12.0,
                      seed: int = 0, victims: Sequence[int] | None = None,
                      displacement: float | None = None, burst_at: float | None = None,
                      dwell: float | None = None, **kwargs) -> Scenario:
    """One corruption burst that scrambles the victims' clocks.

    After release the victims must recover through Sync alone; the
    displacement defaults to ``4 * WayOff`` (well into the "ignore own
    clock" branch of Figure 1).
    """
    params = params if params is not None else default_params()
    victims = list(victims) if victims is not None else list(range(params.f))
    if len(victims) > params.f:
        raise ValueError(f"at most f={params.f} simultaneous victims allowed")
    displacement = 4.0 * params.way_off if displacement is None else displacement
    burst_at = 2.0 * params.t_interval if burst_at is None else burst_at
    dwell = params.t_interval if dwell is None else dwell

    plan = PlanSpec("single-burst",
                    StrategySpec("alternating-reset", {"offset": displacement}),
                    {"victims": victims, "start": burst_at, "dwell": dwell})
    return Scenario(params=params, duration=duration, seed=seed,
                    plan_builder=plan, name="recovery", **kwargs)


def split_world_scenario(params: ProtocolParams | None = None, duration: float = 20.0,
                         seed: int = 0, **kwargs) -> Scenario:
    """Omniscient spread-maximizing attack (bound-tightness probe)."""
    params = params if params is not None else default_params()
    plan = PlanSpec("rotating",
                    StrategySpec("split-world", {"push": 50.0 * params.way_off}),
                    {"first_start": 2.0 * params.t_interval})
    return Scenario(params=params, duration=duration, seed=seed,
                    plan_builder=plan, name="split-world", **kwargs)


def two_clique_scenario(f: int = 1, duration: float = 40.0, seed: int = 0,
                        pi: float = 2.0, rho: float = 2e-3, **kwargs) -> Scenario:
    """The Section 5 counterexample: two cliques joined by a matching.

    No adversary is even needed — with clocks drifting at opposite
    extremes per clique, the cliques' internal synchronization is
    perfect while the inter-clique deviation grows without bound (at
    the mutual drift rate ``(1+rho) - 1/(1+rho) ~ 2*rho``, so the
    default ``rho`` is chosen to cross the Theorem 5 bound within the
    default duration).
    """
    n = 2 * (3 * f + 1)
    params = ProtocolParams.derive(n=n, f=f, delta=0.005, rho=rho, pi=pi)
    return Scenario(params=params, duration=duration, seed=seed,
                    topology=TopologySpec("two-cliques", {"f": f}),
                    clock_factory="clique-extremal",
                    name="two-clique", **kwargs)


def warmup_for(params: ProtocolParams, intervals: float = 3.0) -> float:
    """A standard warmup: a few analysis intervals of settling time."""
    return intervals * params.t_interval


def recommended_tolerance(params: ProtocolParams) -> float:
    """Recovery tolerance: the Theorem 5 deviation bound."""
    return params.bounds().max_deviation


def effective_horizon(duration: float, pi: float) -> float:
    """Last time with a full PI-window of history (for good-set math)."""
    return max(0.0, duration - pi)


def is_power_of_two(value: int) -> bool:
    """Tiny helper used by sweep builders to pick K grids."""
    return value > 0 and (value & (value - 1)) == 0


def geometric_grid(lo: float, hi: float, points: int) -> list[float]:
    """``points`` geometrically spaced values from ``lo`` to ``hi``."""
    if points < 2 or lo <= 0 or hi <= lo:
        raise ValueError(f"invalid grid spec lo={lo}, hi={hi}, points={points}")
    step = (hi / lo) ** (1.0 / (points - 1))
    return [lo * step ** i for i in range(points)]


def about_equal(a: float, b: float, rel: float = 1e-9) -> bool:
    """Relative float comparison helper shared by analysis code."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=1e-12)
