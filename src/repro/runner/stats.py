"""Replication statistics: mean ± confidence interval over seeds.

A single seeded run is a point estimate; the benchmark tables report
several seeds where it matters, and this module provides the standard
machinery — sample mean, standard deviation, and a Student-t confidence
interval (via scipy) — for summarizing a measure across replications.
Used by the statistics bench and available to downstream experiment
pipelines.

The store-backed entry points (:func:`summarize_column`,
:func:`summarize_grouped`) run the *same* reduction over columns of a
:class:`~repro.runner.store.ResultStore`: because the store preserves
measure floats bit-exactly and the reduction code is shared, a campaign
summarized through its store is byte-identical to summarizing the
in-memory records directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import MeasurementError
from repro.runner.store import Query, ResultStore


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean and confidence interval of a measure over replications.

    Attributes:
        n: Number of replications.
        mean: Sample mean.
        std: Sample standard deviation (ddof=1; 0 for n=1).
        ci_low: Lower end of the confidence interval.
        ci_high: Upper end.
        confidence: The confidence level used.
        values: The raw per-replication values.
    """

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float
    values: tuple[float, ...]

    @property
    def half_width(self) -> float:
        """Half the CI width (the "±" in mean ± x)."""
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:
        return (f"{self.mean:.6g} ± {self.half_width:.3g} "
                f"({int(self.confidence * 100)}% CI, n={self.n})")


def summarize_replications(values: Sequence[float],
                           confidence: float = 0.95) -> ReplicationSummary:
    """Student-t confidence interval for the mean of ``values``.

    Args:
        values: Per-replication measurements (at least one; with one
            value the CI degenerates to the point).
        confidence: Two-sided confidence level in (0, 1).

    Raises:
        MeasurementError: On empty input or a bad confidence level.
    """
    if not values:
        raise MeasurementError("cannot summarize zero replications")
    if not (0.0 < confidence < 1.0):
        raise MeasurementError(f"confidence must be in (0, 1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return ReplicationSummary(n=1, mean=mean, std=0.0, ci_low=mean,
                                  ci_high=mean, confidence=confidence,
                                  values=tuple(values))
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(variance)
    from scipy import stats as scipy_stats

    t_crit = scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
    half = t_crit * std / math.sqrt(n)
    return ReplicationSummary(n=n, mean=mean, std=std, ci_low=mean - half,
                              ci_high=mean + half, confidence=confidence,
                              values=tuple(values))


def replicate_measure(scenario_builder: Callable[[int], object],
                      measure: Callable[[object], float],
                      seeds: Sequence[int],
                      confidence: float = 0.95) -> ReplicationSummary:
    """Run ``scenario_builder(seed)`` per seed and summarize ``measure``.

    Args:
        scenario_builder: Maps a seed to a runnable scenario.
        measure: Extracts the statistic from each
            :class:`~repro.runner.experiment.RunResult`.
        seeds: Replication seeds.
        confidence: CI level.
    """
    from repro.runner.experiment import run

    values = [measure(run(scenario_builder(seed))) for seed in seeds]
    return summarize_replications(values, confidence)


def summarize_column(source: ResultStore | Query, column: str,
                     confidence: float = 0.95) -> ReplicationSummary:
    """Summarize one store column across its present rows.

    ``source`` is a whole :class:`~repro.runner.store.ResultStore` or a
    pre-filtered :class:`~repro.runner.store.Query` (e.g.
    ``store.query().where("error", "isnull")``).  Absent cells are
    dropped; the present values feed :func:`summarize_replications`
    unchanged, so the result is byte-identical to summarizing the same
    runs' records by hand.

    Raises:
        MeasurementError: When no selected row has the column present.
    """
    query = source.query() if isinstance(source, ResultStore) else source
    return summarize_replications(query.values(column), confidence)


def summarize_grouped(source: ResultStore | Query, key: str, column: str,
                      confidence: float = 0.95
                      ) -> dict[object, ReplicationSummary]:
    """Per-group :func:`summarize_column`, keyed by a group-by column.

    The sweep-analysis staple: one CI per parameter value, e.g.
    ``summarize_grouped(store, "config.params.f",
    "verdict.measured_deviation")``.  Groups whose rows have no present
    ``column`` cell are omitted (instead of raising).
    """
    query = source.query() if isinstance(source, ResultStore) else source
    out: dict[object, ReplicationSummary] = {}
    for group_key in sorted(set(query.values(key)), key=lambda k: (str(type(k)), str(k))):
        values = query.where(key, "==", group_key).values(column)
        if values:
            out[group_key] = summarize_replications(values, confidence)
    return out
