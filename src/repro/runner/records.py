"""The run-record schema: what a campaign keeps from every run.

:class:`RunRecord` and :class:`RunPerf` used to live in
:mod:`repro.runner.campaign`; they are the shared vocabulary of the
whole results path — the campaign executor produces them, the columnar
:mod:`repro.runner.store` persists them, and the declarative
:mod:`repro.runner.evaluation` layer judges them — so they sit at the
bottom of the runner stack where every other module can import them
without layering cycles.  ``repro.runner.campaign`` re-exports both
names; existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.analysis import Theorem5Verdict
from repro.metrics.measures import AccuracyReport, RecoveryReport


@dataclass(frozen=True)
class RunPerf:
    """Deterministic engine counters of one run.

    A strict subset of :class:`~repro.sim.engine.EnginePerfCounters`:
    the wall-clock fields (``run_wall_time``, ``events_per_second``)
    are deliberately absent so records stay a pure function of
    (config, seed) — identical-seed runs are byte-compared by the
    determinism checks.
    """

    events_processed: int
    events_pushed: int
    events_cancelled: int
    cancelled_ratio: float
    heap_high_water: int
    pending_events: int


@dataclass(frozen=True)
class RunRecord:
    """Everything a campaign keeps from one run (picklable, rich).

    Replaces the skeletal ``ConfigRunSummary``: all Definition 3
    measures, the Theorem 5 verdict, the recovery report, deterministic
    perf counters, and an optional observability summary.

    Attributes:
        index: Position of the run in its campaign (input order).
        name: Scenario label.
        config: The input config dict (the run's full identity together
            with the code version).
        seed: The run's root seed.
        duration: Real-time length of the run.
        warmup: Warmup (real time) applied to the measures.
        verdict: Theorem 5 measured-vs-bound comparison (``None`` on
            error records).
        accuracy: Measured drift/discontinuity (Definition 3(ii)).
        deviation_percentiles: Good-set deviation percentiles after
            warmup, keyed by percentile.
        recovery: Recovery report for every adversary release.
        envelope_occupancy: Fraction of post-warmup deviation samples
            inside the Theorem 5(i) envelope (``nan`` with no samples).
        corruption_count: Number of planned corruption intervals.
        events_processed: Simulator event count.
        messages_delivered: Network delivery count.
        sync_executions: Number of Sync executions traced.
        perf: Deterministic engine counters (``None`` on error records).
        obs: Small flight-recorder summary when the campaign observes
            runs, else ``None``.
        scalar_fallback_reason: ``None`` when the run executed on the
            backend the campaign requested; otherwise the reason a
            ``"vector"``-backend run fell back to the scalar engine
            (out-of-envelope scenario, observed run, ...).  Fallbacks
            are correct-by-contract but no longer silent: campaigns
            count them (see
            :attr:`~repro.runner.campaign.CampaignResult.scalar_fallbacks`).
        error: ``None`` on success; ``"ExcType: message"`` on failure
            (all measure fields are then ``None``/zero).
    """

    index: int
    name: str
    config: dict[str, Any]
    seed: int
    duration: float
    warmup: float = 0.0
    verdict: Theorem5Verdict | None = None
    accuracy: AccuracyReport | None = None
    deviation_percentiles: dict[float, float] | None = None
    recovery: RecoveryReport | None = None
    envelope_occupancy: float | None = None
    corruption_count: int = 0
    events_processed: int = 0
    messages_delivered: int = 0
    sync_executions: int = 0
    perf: RunPerf | None = None
    obs: dict[str, Any] | None = None
    scalar_fallback_reason: str | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Ran without error and every Theorem 5 guarantee held."""
        return self.error is None and self.verdict is not None and self.verdict.all_ok

    @property
    def max_deviation(self) -> float:
        """Shortcut to the measured Theorem 5(i) subject (``nan`` on
        error records)."""
        return self.verdict.measured_deviation if self.verdict is not None else float("nan")
