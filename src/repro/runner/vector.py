"""Runner-side adapter for the vectorized batch engine.

:func:`run_vector` is the drop-in counterpart of
:func:`repro.runner.experiment.run` backed by
:mod:`repro.sim.vector`: it resolves a declarative
:class:`~repro.runner.scenario.Scenario` into a flat
:class:`~repro.sim.vector.VectorSpec`, executes the fast batch loop,
and re-assembles a byte-identical :class:`RunResult`.  Scenarios
outside the vector envelope (non-``"sync"`` protocols, message
recording, non-silent Byzantine strategies) silently **fall back to the
scalar engine** — the ``vector`` backend is always correct, merely not
always fast — so campaigns can select it wholesale without auditing
every config first.
"""

from __future__ import annotations

from repro.runner.experiment import RunResult, run
from repro.runner.scenario import Scenario
from repro.sim.vector import (
    VectorSpec,
    VectorUnsupported,
    run_batch,
    simulate_run,
)

__all__ = ["vector_spec", "scalar_only_reason", "run_vector",
           "run_vector_report", "run_batch"]


def scalar_only_reason(scenario: Scenario) -> str | None:
    """Why this scenario cannot enter the vector engine, or ``None``.

    The cheap, pre-resolution checks; strategy and sampling-interval
    checks happen inside :func:`~repro.sim.vector.simulate_run` (they
    need resolved clocks/plans) and surface as
    :class:`~repro.sim.vector.VectorUnsupported` instead.
    """
    if not (isinstance(scenario.protocol, str) and scenario.protocol == "sync"):
        return f"protocol {scenario.protocol!r} is not the declarative 'sync'"
    if scenario.record_messages:
        return "per-message trace recording needs the scalar engine"
    return None


def vector_spec(scenario: Scenario, stream_measures: bool = False) -> VectorSpec:
    """Resolve a scenario's factories/specs into a flat engine spec.

    The scenario itself rides along as the opaque ``plan_context`` so
    registered plan builders (which take ``(scenario, clocks)``) keep
    their signature.
    """
    return VectorSpec(
        params=scenario.params,
        duration=scenario.duration,
        seed=scenario.seed,
        topology=scenario.resolved_topology(),
        delay_model=scenario.resolved_delay_model(),
        clock_factory=scenario.resolved_clock_factory(),
        initial_offsets=scenario.initial_offsets,
        initial_offset_spread=scenario.initial_offset_spread,
        plan_builder=scenario.plan_builder,
        plan_context=scenario,
        enforce_f_limit=scenario.enforce_f_limit,
        sample_interval=scenario.resolved_sample_interval(),
        loss_rate=scenario.loss_rate,
        stagger_phases=scenario.stagger_phases,
        stream_measures=stream_measures,
    )


def run_vector(scenario: Scenario, stream_measures: bool = False) -> RunResult:
    """Execute one scenario on the vector backend (scalar fallback).

    Byte-identical to :func:`repro.runner.experiment.run` for the same
    scenario: same clocks and adjustment histories, same trace, same
    samples or streamed measures, same deterministic engine counters.
    ``processes`` is empty (the batch engine has no per-node process
    objects) and no flight recorder can attach; campaigns that observe
    runs use the scalar engine.
    """
    return run_vector_report(scenario, stream_measures=stream_measures)[0]


def run_vector_report(scenario: Scenario,
                      stream_measures: bool = False
                      ) -> tuple[RunResult, str | None]:
    """Like :func:`run_vector`, also reporting why a fallback happened.

    Returns ``(result, reason)`` where ``reason`` is ``None`` when the
    batch engine actually ran, and a human-readable explanation when
    the run fell back to the scalar engine.  The result is the same
    either way (fallbacks are correct-by-contract); campaigns record
    the reason so fleets of runs can audit how much of the sweep really
    exercised the fast path.
    """
    output = None
    reason = scalar_only_reason(scenario)
    if reason is None:
        try:
            output = simulate_run(vector_spec(scenario, stream_measures))
        except VectorUnsupported as exc:
            reason = str(exc) or type(exc).__name__
            output = None
    if output is None:
        return run(scenario, stream_measures=stream_measures), reason
    return RunResult(
        scenario=scenario,
        params=scenario.params,
        samples=output.samples,
        corruptions=output.corruptions,
        trace=output.trace,
        clocks=output.clocks,
        processes={},
        events_processed=output.events_processed,
        messages_delivered=output.messages_delivered,
        perf=output.perf,
        obs=None,
        stream=output.stream,
    ), None
