"""The campaign executor: one engine for every multi-run experiment.

A *campaign* is an ordered list of declarative scenario configs (see
:mod:`repro.runner.config`) executed into :class:`RunRecord` results.
Because every canonical scenario is now fully declarative — plans,
clock models, delays, and topologies are registered specs — any
campaign can fan out over a process pool, not just the four canned
config scenarios.  This module replaces the old ``sweep()`` /
``replicate()`` / ``run_many()`` / ``run_configs()`` quartet.

Features:

* **Parallel fan-out** — ``workers >= 2`` uses a process pool; results
  are byte-identical to a serial run (each run is a pure function of
  its config, and the wall-clock engine counters are excluded from
  records).
* **Content-addressed caching** — with a ``cache_dir``, each record is
  stored under ``sha256(canonical config + code version + measurement
  settings)``; a repeated campaign re-executes zero runs, and an
  interrupted one resumes completing only the missing runs.  Failed
  runs are never cached.
* **Failure isolation** — a worker failure becomes an error
  :class:`RunRecord` carrying the config and index instead of killing
  the sweep (``isolate_failures=False`` raises
  :class:`~repro.errors.CampaignError` naming the culprit instead).

Cache layout: ``<cache_dir>/<64-hex-digest>.pkl``, one pickled
:class:`RunRecord` per file, written atomically (tmp + rename).
Unreadable or corrupt cache files count as misses.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import logging
import os
import pathlib
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

if TYPE_CHECKING:
    from repro.runner.store import Query, ResultStore

from repro._version import __version__
from repro.errors import CampaignError, ConfigurationError
from repro.runner.records import RunPerf, RunRecord
from repro.runner.scenario import Scenario

__all__ = [
    "CACHE_FORMAT", "BACKENDS", "RunPerf", "RunRecord", "CampaignResult",
    "Campaign", "BisectResult", "execute_run", "run_config", "run_configs",
    "sweep", "replicate",
]

_log = logging.getLogger(__name__)

#: Bumped when the RunRecord schema or measurement pipeline changes in
#: a way that invalidates cached records independent of the package
#: version.  2: columnar/streaming measurement engine — RunRecord grew
#: ``envelope_occupancy`` and the ``stream_measures`` identity field.
#: 3: selectable simulation backend — the ``backend`` identity field
#: keeps scalar and vector records from colliding (they are
#: byte-identical by contract, but a parity bug must never be masked by
#: a stale cache hit from the other engine).
#: 4: columnar result store — RunRecord grew
#: ``scalar_fallback_reason``, and cache files became versioned
#: ``{"format": ..., "record": ...}`` envelopes so future schema bumps
#: are recognized as stale instead of unpickling into garbage.
CACHE_FORMAT = 4

#: Simulation backends a campaign can select.
BACKENDS = ("scalar", "vector")


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one campaign execution.

    Attributes:
        records: One :class:`RunRecord` per config, in input order.
        executed: Runs actually executed this invocation.
        cached: Runs served from the result cache.
        failed: Runs that ended in an error record.
    """

    records: list[RunRecord]
    executed: int
    cached: int
    failed: int

    @property
    def all_ok(self) -> bool:
        """Every run succeeded and met its bounds."""
        return all(record.ok for record in self.records)

    def errors(self) -> list[RunRecord]:
        """The error records, if any."""
        return [record for record in self.records if record.error is not None]

    @property
    def scalar_fallbacks(self) -> int:
        """Runs that requested the vector backend but executed scalar."""
        return sum(1 for record in self.records
                   if record.scalar_fallback_reason is not None)

    def fallback_reasons(self) -> dict[str, int]:
        """Distinct scalar-fallback reasons with their run counts."""
        reasons: dict[str, int] = {}
        for record in self.records:
            if record.scalar_fallback_reason is not None:
                reasons[record.scalar_fallback_reason] = \
                    reasons.get(record.scalar_fallback_reason, 0) + 1
        return dict(sorted(reasons.items()))

    def store(self, meta: dict[str, Any] | None = None):
        """The records as a queryable in-memory
        :class:`~repro.runner.store.ResultStore`."""
        from repro.runner.store import ResultStore
        return ResultStore.from_records(self.records, meta=meta)


# ----------------------------------------------------------------------
# Worker entry points (module level: must pickle)
# ----------------------------------------------------------------------


def _obs_summary(recorder) -> dict[str, Any]:
    """Small, picklable digest of a flight recorder."""
    return {
        "events": len(recorder.events),
        "spans": len(recorder.spans),
        "violations": [
            {"probe": v.probe, "time": v.time, "node": v.node,
             "measured": v.measured, "bound": v.bound}
            for v in recorder.violations
        ],
    }


def execute_run(index: int, config: dict[str, Any],
                warmup_intervals: float = 3.0,
                observe: bool = False,
                stream_measures: bool = False,
                backend: str = "scalar") -> RunRecord:
    """Execute one config into a :class:`RunRecord` (raises on failure).

    Args:
        index: Campaign position recorded on the result.
        config: A :mod:`repro.runner.config` scenario description.
        warmup_intervals: Warmup in analysis intervals ``T``.
        observe: Attach a flight recorder and keep its summary.
        stream_measures: Accumulate the measures online during the run
            (no clock trace is kept); the record is byte-identical to
            the post-hoc path.
        backend: ``"scalar"`` (reference engine) or ``"vector"`` (the
            batch engine, with automatic scalar fallback outside its
            envelope).  Records are byte-identical across backends;
            observed runs always use the scalar engine (the flight
            recorder hooks the per-process path).
    """
    # Imports kept local so worker startup stays cheap when the module
    # is imported only for the dataclasses.
    from repro.runner.config import scenario_from_config
    from repro.runner.experiment import run

    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    scenario = scenario_from_config(config)
    recorder = None
    fallback_reason = None
    if observe:
        from repro.obs import FlightRecorder
        recorder = FlightRecorder()
    if backend == "vector" and recorder is None:
        from repro.runner.vector import run_vector_report
        result, fallback_reason = run_vector_report(
            scenario, stream_measures=stream_measures)
    else:
        if backend == "vector":
            fallback_reason = "observed runs use the scalar engine " \
                              "(the flight recorder hooks the per-process path)"
        result = run(scenario, recorder=recorder, stream_measures=stream_measures)
    warmup = warmup_intervals * result.params.t_interval
    verdict = result.verdict(warmup=warmup)
    perf = result.perf
    return RunRecord(
        index=index,
        name=scenario.name,
        config=config,
        seed=scenario.seed,
        duration=scenario.duration,
        warmup=warmup,
        verdict=verdict,
        accuracy=result.accuracy(),
        deviation_percentiles=result.deviation_percentiles(warmup=warmup),
        recovery=result.recovery(),
        envelope_occupancy=result.envelope_occupancy(warmup=warmup),
        corruption_count=len(result.corruptions),
        events_processed=result.events_processed,
        messages_delivered=result.messages_delivered,
        sync_executions=len(result.trace.syncs),
        perf=RunPerf(
            events_processed=perf.events_processed,
            events_pushed=perf.events_pushed,
            events_cancelled=perf.events_cancelled,
            cancelled_ratio=perf.cancelled_ratio,
            heap_high_water=perf.heap_high_water,
            pending_events=perf.pending_events,
        ) if perf is not None else None,
        obs=_obs_summary(recorder) if recorder is not None else None,
        scalar_fallback_reason=fallback_reason,
    )


def _execute_isolated(index: int, config: dict[str, Any],
                      warmup_intervals: float, observe: bool,
                      stream_measures: bool = False,
                      backend: str = "scalar") -> RunRecord:
    """Worker wrapper: any failure becomes an error record, so one bad
    config cannot take down the pool or the sweep."""
    try:
        return execute_run(index, config, warmup_intervals, observe,
                           stream_measures, backend)
    except BaseException as exc:  # noqa: BLE001 -- isolation is the point
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        name = config.get("name", config.get("scenario", "scenario")) \
            if isinstance(config, dict) else "scenario"
        return RunRecord(
            index=index,
            name=str(name),
            config=config if isinstance(config, dict) else {},
            seed=int(config.get("seed", 0)) if isinstance(config, dict) else 0,
            duration=float(config.get("duration", 0.0)) if isinstance(config, dict) else 0.0,
            error=f"{type(exc).__name__}: {exc}",
        )


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------


@dataclass
class Campaign:
    """An ordered batch of declarative runs with caching and fan-out.

    Attributes:
        configs: Declarative scenario configs, one per run.
        warmup_intervals: Warmup in analysis intervals ``T`` applied to
            every run's measures (part of the cache identity).
        cache_dir: Result cache directory (``None`` disables caching).
        observe: Attach a flight recorder to every run and keep its
            summary on the records (part of the cache identity).
        stream_measures: Compute measures online during each run
            instead of post-hoc over a recorded trace (part of the
            cache identity; workers keep O(n) state instead of the full
            O(samples x n) trace).  Records are byte-identical either
            way.
        backend: Simulation backend for every run: ``"scalar"``
            (reference engine) or ``"vector"`` (batch engine with
            scalar fallback outside its envelope).  Part of the cache
            identity so the two engines' records never collide.
        store_dir: When set, :meth:`run` appends every completed
            campaign's records to the columnar
            :class:`~repro.runner.store.ResultStore` at this directory
            (one chunk per invocation) — the native results output that
            ``repro evaluate`` and the query API consume.  Not part of
            the cache identity (where results land does not change what
            they are).
    """

    configs: list[dict[str, Any]]
    warmup_intervals: float = 3.0
    cache_dir: str | pathlib.Path | None = None
    observe: bool = False
    stream_measures: bool = False
    backend: str = "scalar"
    store_dir: str | pathlib.Path | None = None

    # -- construction --------------------------------------------------

    @classmethod
    def from_scenarios(cls, scenarios: Sequence[Scenario],
                       **kwargs: Any) -> "Campaign":
        """Build a campaign from declarative scenarios.

        Raises:
            ConfigurationError: If any scenario holds raw callables
                (see :meth:`Scenario.to_config`).
        """
        return cls(configs=[s.to_config() for s in scenarios], **kwargs)

    @classmethod
    def sweep(cls, base: Scenario, variations: Iterable[dict[str, Any]],
              **kwargs: Any) -> "Campaign":
        """One run per variation dict (fields to ``dataclasses.replace``).

        A variation may replace any :class:`Scenario` field; replacing
        ``params`` requires passing a full ``ProtocolParams``.
        """
        scenarios = [dataclasses.replace(base, **changes) for changes in variations]
        return cls.from_scenarios(scenarios, **kwargs)

    @classmethod
    def replicate(cls, base: Scenario, seeds: Sequence[int],
                  **kwargs: Any) -> "Campaign":
        """One run per seed (for variance estimates)."""
        return cls.sweep(base, [{"seed": seed} for seed in seeds], **kwargs)

    # -- caching -------------------------------------------------------

    def cache_key(self, config: dict[str, Any]) -> str:
        """Content address of one run: canonical config JSON + code
        version + measurement settings."""
        identity = {
            "config": config,
            "version": __version__,
            "format": CACHE_FORMAT,
            "warmup_intervals": self.warmup_intervals,
            "observe": self.observe,
            "stream_measures": self.stream_measures,
            "backend": self.backend,
        }
        canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _cache_path(self, config: dict[str, Any]) -> pathlib.Path:
        return pathlib.Path(self.cache_dir) / f"{self.cache_key(config)}.pkl"

    def _cache_load(self, config: dict[str, Any]) -> RunRecord | None:
        path = self._cache_path(config)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        # Format 4 envelope: {"format": CACHE_FORMAT, "record": record}.
        # Anything else — a bare pre-4 RunRecord, an envelope from a
        # different format, foreign pickles — is a logged miss that
        # re-executes, never an exception: an old cache directory must
        # not be able to break a new campaign.
        if isinstance(payload, dict):
            fmt = payload.get("format")
            record = payload.get("record")
            if fmt != CACHE_FORMAT or not isinstance(record, RunRecord):
                _log.info("cache %s has format %r (current %d); re-executing",
                          path.name, fmt, CACHE_FORMAT)
                return None
            return record
        if isinstance(payload, RunRecord):
            _log.info("cache %s is a pre-format-4 bare record; re-executing",
                      path.name)
        return None

    def _cache_store(self, config: dict[str, Any], record: RunRecord) -> None:
        path = self._cache_path(config)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump({"format": CACHE_FORMAT, "record": record}, handle)
        os.replace(tmp, path)

    # -- execution -----------------------------------------------------

    def run(self, workers: int | None = None, fresh: bool = False,
            isolate_failures: bool = True) -> CampaignResult:
        """Execute every run not already cached.

        Args:
            workers: Process count; ``None`` or ``1`` runs serially in
                this process (no pickling round-trip), ``>= 2`` uses a
                process pool.  Records come back in input order either
                way, byte-identical across the two modes.
            fresh: Ignore existing cache entries (results still get
                written back, replacing them).
            isolate_failures: When True (default), a failed run yields
                an error record; when False the first failure raises
                :class:`~repro.errors.CampaignError` carrying the run's
                index and config.

        Raises:
            ConfigurationError: On an empty campaign or bad ``workers``.
            CampaignError: A run failed and ``isolate_failures=False``.
        """
        if not self.configs:
            raise ConfigurationError("campaign needs at least one config")
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}")

        records: list[RunRecord | None] = [None] * len(self.configs)
        cached = 0
        if self.cache_dir is not None and not fresh:
            for index, config in enumerate(self.configs):
                record = self._cache_load(config)
                if record is not None and record.error is None:
                    # Same content hash can be produced from a different
                    # campaign position; pin the index to this campaign.
                    records[index] = dataclasses.replace(record, index=index)
                    cached += 1

        pending = [(index, config) for index, config in enumerate(self.configs)
                   if records[index] is None]

        if workers is None or workers == 1:
            fresh_records = [
                _execute_isolated(index, config, self.warmup_intervals,
                                  self.observe, self.stream_measures,
                                  self.backend)
                for index, config in pending
            ]
        else:
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_execute_isolated, index, config,
                                self.warmup_intervals, self.observe,
                                self.stream_measures, self.backend)
                    for index, config in pending
                ]
                fresh_records = [future.result() for future in futures]

        failed = 0
        for record in fresh_records:
            if record.error is not None:
                failed += 1
                if not isolate_failures:
                    raise CampaignError(
                        f"campaign run {record.index} ({record.name!r}, "
                        f"seed={record.seed}) failed: {record.error}",
                        index=record.index, config=record.config,
                    )
            elif self.cache_dir is not None:
                self._cache_store(record.config, record)
            records[record.index] = record

        final = [record for record in records if record is not None]
        assert len(final) == len(self.configs)
        result = CampaignResult(records=final, executed=len(fresh_records),
                                cached=cached, failed=failed)
        if self.store_dir is not None:
            from repro.runner.store import append_to_dir
            append_to_dir(self.store_dir, final, meta={
                "version": __version__,
                "cache_format": CACHE_FORMAT,
                "backend": self.backend,
                "warmup_intervals": self.warmup_intervals,
                "observe": self.observe,
                "stream_measures": self.stream_measures,
            })
        return result

    # -- adaptive driving ----------------------------------------------

    @classmethod
    def bisect(cls, make_config: Callable[[int, int], dict[str, Any]],
               lo: int, hi: int, *,
               seeds: Sequence[int] = (1,),
               passes: Callable[["Query"], bool] | None = None,
               store_dir: str | pathlib.Path | None = None,
               **campaign_kwargs: Any) -> "BisectResult":
        """Find an integer resilience boundary by adaptive bisection.

        Sweeping-to-the-boundary instead of spot-checking: given a
        monotone knob (number of colluding liars, loss rate step, ...),
        probe integer values in ``[lo, hi]``, judging each probe by a
        store query over the records it produced, and home in on the
        largest passing / smallest failing value with O(log(hi - lo))
        campaigns instead of hi - lo + 1.

        Args:
            make_config: ``(value, seed) -> config``.  Embed ``value``
                into the config (e.g. under ``extra``) so the pooled
                store keeps the probe identity as a queryable
                ``config.…`` column.
            lo: Smallest candidate, expected to pass.
            hi: Largest candidate, expected to fail.
            seeds: Root seeds run per probe value.
            passes: Judgement over the probe's rows as a store
                :class:`~repro.runner.store.Query`; default: the probe
                passes iff every run met all Theorem 5 bounds (the
                ``ok`` column is all-true).
            store_dir: When set, the pooled store of every probe is
                saved there (with the probe map in its metadata).
            **campaign_kwargs: Forwarded to the per-probe ``Campaign``
                (``backend=``, ``cache_dir=``, ...).

        Returns:
            A :class:`BisectResult`; when the expected orientation
            holds, ``first_fail == last_pass + 1`` is the boundary.

        Raises:
            ConfigurationError: If ``lo > hi``.
        """
        from repro.runner.store import Query, ResultStore

        if lo > hi:
            raise ConfigurationError(f"bisect needs lo <= hi, got [{lo}, {hi}]")
        if passes is None:
            passes = lambda q: q.count() > 0 and \
                bool(q.aggregate(verdict=("ok", "all"))["verdict"])

        store = ResultStore()
        probes: dict[int, bool] = {}

        def probe(value: int) -> bool:
            if value in probes:
                return probes[value]
            start = store.n_runs
            result = cls([make_config(value, seed) for seed in seeds],
                         **campaign_kwargs).run()
            store.append_records(result.records)
            verdict = bool(passes(Query(store, list(range(start, store.n_runs)))))
            probes[value] = verdict
            _log.info("bisect probe %d: %s", value,
                      "pass" if verdict else "fail")
            return verdict

        if not probe(lo):
            last_pass, first_fail = None, lo
        elif probe(hi):
            last_pass, first_fail = hi, None
        else:
            good, bad = lo, hi
            while bad - good > 1:
                mid = (good + bad) // 2
                if probe(mid):
                    good = mid
                else:
                    bad = mid
            last_pass, first_fail = good, bad

        store.meta["bisect"] = {
            "lo": lo, "hi": hi, "seeds": list(seeds),
            "last_pass": last_pass, "first_fail": first_fail,
            "probes": {str(value): verdict
                       for value, verdict in sorted(probes.items())},
        }
        if store_dir is not None:
            store.save(store_dir)
        return BisectResult(last_pass=last_pass, first_fail=first_fail,
                            probes=dict(sorted(probes.items())), store=store)


@dataclass(frozen=True)
class BisectResult:
    """Outcome of :meth:`Campaign.bisect`.

    Attributes:
        last_pass: Largest probed value whose runs passed (``None`` if
            even ``lo`` failed).
        first_fail: Smallest probed value whose runs failed (``None``
            if even ``hi`` passed — the boundary lies beyond the
            range).
        probes: Every probed value with its pass/fail verdict.
        store: Pooled :class:`~repro.runner.store.ResultStore` over all
            probe runs (probe summary in ``store.meta["bisect"]``).
    """

    last_pass: int | None
    first_fail: int | None
    probes: dict[int, bool]
    store: "ResultStore"


# ----------------------------------------------------------------------
# Convenience functions (the old orchestration surface, record-based)
# ----------------------------------------------------------------------


def sweep(base: Scenario, variations: Iterable[dict[str, Any]],
          workers: int | None = None, **kwargs: Any) -> list[RunRecord]:
    """Run ``base`` once per variation dict; records in input order."""
    return Campaign.sweep(base, variations, **kwargs).run(workers=workers).records


def replicate(base: Scenario, seeds: Sequence[int],
              workers: int | None = None, **kwargs: Any) -> list[RunRecord]:
    """Run ``base`` once per seed (for variance estimates)."""
    return Campaign.replicate(base, seeds, **kwargs).run(workers=workers).records


def run_config(config: dict[str, Any], warmup_intervals: float = 3.0,
               stream_measures: bool = False,
               backend: str = "scalar") -> RunRecord:
    """Execute one config in-process (no isolation; exceptions raise)."""
    return execute_run(0, config, warmup_intervals=warmup_intervals,
                       stream_measures=stream_measures, backend=backend)


def run_configs(configs: Sequence[dict[str, Any]], workers: int | None = None,
                warmup_intervals: float = 3.0) -> list[RunRecord]:
    """Run many configs, optionally across processes.

    The strict variant of :meth:`Campaign.run`: any worker failure
    raises :class:`~repro.errors.CampaignError` identifying the config
    by campaign index (instead of a bare traceback losing which config
    died).

    Raises:
        ConfigurationError: On an empty config list or bad worker count.
        CampaignError: Naming the index and config of a failed run.
    """
    if not configs:
        raise ConfigurationError("run_configs needs at least one config")
    campaign = Campaign(configs=list(configs), warmup_intervals=warmup_intervals)
    return campaign.run(workers=workers, isolate_failures=False).records
