"""Declarative evaluation specs: machine-checked pass criteria.

The paper's claims — the Theorem 5 deviation/accuracy envelope, the
Claim 8 recovery bound, the Definition 2 resilience limit — deserve
pass/fail criteria that live next to the experiments instead of inside
ad-hoc analysis scripts.  An :class:`EvaluationSpec` is a picklable,
registered description of what a campaign's
:class:`~repro.runner.store.ResultStore` must look like for an
experiment to count as reproduced:

* ``required_columns`` — fields the store must carry at all,
* ``where`` — which rows the spec judges (e.g. only the runs whose
  corruption stayed within the Definition 2 ``f`` limit),
* ``checks`` — per-row comparisons, each either against a constant
  (``envelope_occupancy >= 0.95``) or against another column
  (``recovery.max_recovery_time <= verdict.bound.recovery_seconds``,
  the measured-vs-bound shape), with an optional additive tolerance.

:func:`evaluate` runs one spec against a store and returns a rich
:class:`EvaluationReport`; ``repro evaluate <campaign-dir>`` is the
CLI face.  Specs whose ``where`` selects no rows are *skipped*, not
failed, so ``repro evaluate`` can run the whole registry against any
campaign and judge only the applicable experiments.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import EvaluationError
from repro.runner.store import Query, ResultStore

__all__ = [
    "Check",
    "EvaluationSpec",
    "CheckResult",
    "EvaluationReport",
    "evaluate",
    "evaluate_all",
    "register_spec",
    "get_spec",
    "registered_specs",
]

_CHECK_OPS = ("==", "!=", "<", "<=", ">", ">=", "isnull", "notnull")


@dataclass(frozen=True)
class Check:
    """One per-row criterion of an :class:`EvaluationSpec`.

    Every selected row must satisfy ``column <op> rhs``, where the
    right-hand side is either the constant ``value`` or the row's own
    ``bound_column`` cell times ``scale`` — the latter is how
    measured-vs-bound claims are written without precomputed flag
    columns.  ``tolerance`` adds slack in the direction of the
    operator (``<=`` allows ``lhs <= rhs + tolerance``, ``>=`` allows
    ``lhs >= rhs - tolerance``, ``==`` becomes
    ``|lhs - rhs| <= tolerance`` when nonzero).

    Rows whose left (or bound) cell is absent, or ``nan``, fail the
    check — a claim that cannot be verified is not verified.  The
    ``isnull`` / ``notnull`` operators check presence itself and take
    no right-hand side.
    """

    column: str
    op: str
    value: Any = None
    bound_column: str | None = None
    scale: float = 1.0
    tolerance: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _CHECK_OPS:
            raise EvaluationError(
                f"check on {self.column!r}: unknown op {self.op!r}; "
                f"known: {_CHECK_OPS}")
        if self.bound_column is not None and self.value is not None:
            raise EvaluationError(
                f"check on {self.column!r}: value and bound_column are "
                f"mutually exclusive")

    def label(self) -> str:
        """Compact one-line rendering (``lhs <= 1.0*rhs (+tol)``)."""
        if self.op in ("isnull", "notnull"):
            return f"{self.column} {self.op}"
        if self.bound_column is not None:
            rhs = self.bound_column if self.scale == 1.0 \
                else f"{self.scale:g}*{self.bound_column}"
        else:
            rhs = repr(self.value)
        tol = f" (tol {self.tolerance:g})" if self.tolerance else ""
        return f"{self.column} {self.op} {rhs}{tol}"


@dataclass(frozen=True)
class EvaluationSpec:
    """A registered, picklable pass criterion for one experiment.

    Attributes:
        name: Registry key (``repro evaluate --spec <name>``).
        description: What claim of the paper this spec verifies.
        where: Row filters selecting the runs the spec judges, as
            ``(column, op, value)`` triples combined with AND (the
            :meth:`~repro.runner.store.Query.where` vocabulary).  An
            empty selection *skips* the spec.
        required_columns: Columns the store must have for the spec to
            be judgeable; missing ones fail the evaluation outright.
        checks: Per-row criteria; all must hold on every selected row.
        min_runs: Fewer selected runs than this fails the evaluation
            (a claim "verified" on one lucky seed is not verified).
    """

    name: str
    description: str
    where: tuple[tuple[str, str, Any], ...] = ()
    required_columns: tuple[str, ...] = ()
    checks: tuple[Check, ...] = ()
    min_runs: int = 1

    def select(self, store: ResultStore) -> Query:
        """The spec's row selection over ``store``."""
        query = store.query()
        for column, op, value in self.where:
            if not store.has_column(column):
                return Query(store, [])
            query = query.where(column, op, value)
        return query


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one :class:`Check` over the selected rows.

    Attributes:
        label: The check's one-line rendering.
        description: The check's own description.
        passed: Whether every checked row satisfied the criterion.
        checked: Number of rows judged.
        failures: Number of rows that failed.
        worst: ``(row, lhs, rhs)`` of the worst offender — largest
            violation margin for ordered ops, first failure otherwise
            (``None`` when all passed).
    """

    label: str
    description: str
    passed: bool
    checked: int
    failures: int
    worst: tuple[int, Any, Any] | None = None


@dataclass(frozen=True)
class EvaluationReport:
    """Outcome of evaluating one spec against one store.

    ``status`` is ``"pass"``, ``"fail"``, or ``"skipped"`` (the spec's
    ``where`` matched no rows — the campaign does not exercise this
    experiment).
    """

    spec: str
    description: str
    status: str
    total: int
    selected: int
    missing_columns: tuple[str, ...] = ()
    checks: tuple[CheckResult, ...] = ()

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    @property
    def skipped(self) -> bool:
        return self.status == "skipped"

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable report (the ``repro evaluate --json`` shape)."""
        return {
            "spec": self.spec,
            "description": self.description,
            "status": self.status,
            "total": self.total,
            "selected": self.selected,
            "missing_columns": list(self.missing_columns),
            "checks": [
                {
                    "label": c.label,
                    "description": c.description,
                    "passed": c.passed,
                    "checked": c.checked,
                    "failures": c.failures,
                    "worst": None if c.worst is None else list(c.worst),
                }
                for c in self.checks
            ],
        }

    def render(self) -> str:
        """Human-readable multi-line report."""
        head = {"pass": "PASS", "fail": "FAIL",
                "skipped": "SKIP"}[self.status]
        lines = [f"{head} {self.spec}: {self.description} "
                 f"[{self.selected}/{self.total} runs]"]
        for column in self.missing_columns:
            lines.append(f"  !! missing column {column!r}")
        for check in self.checks:
            mark = "ok" if check.passed else "FAIL"
            line = f"  [{mark}] {check.label}"
            if check.description:
                line += f" — {check.description}"
            line += f" ({check.checked - check.failures}/{check.checked})"
            if check.worst is not None:
                row, lhs, rhs = check.worst
                line += f"; worst row {row}: {lhs!r} vs {rhs!r}"
            lines.append(line)
        return "\n".join(lines)


def _violation_margin(op: str, lhs: Any, rhs: Any) -> float:
    """How badly an ordered comparison failed (for worst-offender
    ranking); 0.0 when not rankable."""
    try:
        if op in ("<", "<="):
            return float(lhs) - float(rhs)
        if op in (">", ">="):
            return float(rhs) - float(lhs)
        if op in ("==",):
            return abs(float(lhs) - float(rhs))
    except (TypeError, ValueError):
        pass
    return 0.0


def _cell_ok(check: Check, lhs: Any, rhs: Any) -> bool:
    if check.op == "isnull":
        return lhs is None
    if check.op == "notnull":
        return lhs is not None
    if lhs is None or rhs is None:
        return False
    try:
        if isinstance(lhs, float) and math.isnan(lhs):
            return False
        if check.op == "==":
            if check.tolerance:
                return abs(lhs - rhs) <= check.tolerance
            return lhs == rhs
        if check.op == "!=":
            return lhs != rhs
        if check.op == "<":
            return lhs < rhs
        if check.op == "<=":
            return lhs <= rhs + check.tolerance
        if check.op == ">":
            return lhs > rhs
        return lhs >= rhs - check.tolerance
    except TypeError:
        return False


def _run_check(check: Check, store: ResultStore,
               rows: Sequence[int]) -> CheckResult:
    lhs_cells = store.values(check.column) if store.has_column(check.column) \
        else [None] * store.n_runs
    rhs_cells = None
    if check.bound_column is not None:
        rhs_cells = store.values(check.bound_column) \
            if store.has_column(check.bound_column) else [None] * store.n_runs
    failures = 0
    worst: tuple[int, Any, Any] | None = None
    worst_margin = -math.inf
    for row in rows:
        lhs = lhs_cells[row]
        if rhs_cells is not None:
            rhs = rhs_cells[row]
            if rhs is not None:
                rhs = rhs * check.scale
        else:
            rhs = check.value
        if _cell_ok(check, lhs, rhs):
            continue
        failures += 1
        margin = _violation_margin(check.op, lhs, rhs)
        if worst is None or margin > worst_margin:
            worst = (row, lhs, rhs)
            worst_margin = margin
    return CheckResult(
        label=check.label(),
        description=check.description,
        passed=failures == 0,
        checked=len(rows),
        failures=failures,
        worst=worst,
    )


def evaluate(spec: EvaluationSpec | str,
             store: ResultStore) -> EvaluationReport:
    """Judge ``store`` against ``spec`` (a spec or a registered name).

    Raises:
        EvaluationError: On an unregistered spec name.
    """
    if isinstance(spec, str):
        spec = get_spec(spec)
    missing = tuple(column for column in spec.required_columns
                    if not store.has_column(column))
    selection = spec.select(store)
    rows = selection.indices()
    if not rows and not missing:
        return EvaluationReport(spec=spec.name, description=spec.description,
                                status="skipped", total=store.n_runs,
                                selected=0)
    results = tuple(_run_check(check, store, rows) for check in spec.checks)
    passed = (not missing and len(rows) >= spec.min_runs
              and all(result.passed for result in results))
    return EvaluationReport(
        spec=spec.name,
        description=spec.description,
        status="pass" if passed else "fail",
        total=store.n_runs,
        selected=len(rows),
        missing_columns=missing,
        checks=results,
    )


def evaluate_all(store: ResultStore,
                 names: Iterable[str] | None = None) -> list[EvaluationReport]:
    """Evaluate ``store`` against every named (or every registered)
    spec, in registry order."""
    if names is None:
        names = list(registered_specs())
    return [evaluate(name, store) for name in names]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, EvaluationSpec] = {}


def register_spec(spec: EvaluationSpec) -> EvaluationSpec:
    """Register a spec under its name (idempotent for equal specs).

    Raises:
        EvaluationError: When a *different* spec already owns the name.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise EvaluationError(f"evaluation spec {spec.name!r} is already "
                              f"registered with a different definition")
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> EvaluationSpec:
    """Look up a registered spec.

    Raises:
        EvaluationError: On an unknown name, listing what exists.
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise EvaluationError(f"unknown evaluation spec {name!r}; "
                              f"registered: {sorted(_REGISTRY)}")
    return spec


def registered_specs() -> dict[str, EvaluationSpec]:
    """Name → spec of every registered evaluation spec (a copy)."""
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Built-in specs for the repo's experiments
# ----------------------------------------------------------------------

#: E1 / Theorem 5(i): on every clean run, the measured good-set
#: deviation stays within the theoretical envelope, and the envelope
#: holds sample-by-sample (occupancy 1.0), not just at the max.
register_spec(EvaluationSpec(
    name="theorem5-envelope",
    description="Theorem 5(i): measured deviation within the bound on "
                "every clean run",
    where=(("error", "isnull", None),),
    required_columns=("verdict.measured_deviation",
                      "verdict.bound.max_deviation",
                      "envelope_occupancy"),
    checks=(
        Check(column="verdict.measured_deviation", op="<=",
              bound_column="verdict.bound.max_deviation",
              description="max good-set deviation vs. the 5(i) bound"),
        Check(column="envelope_occupancy", op=">=", value=1.0,
              description="every post-warmup sample inside the envelope"),
    ),
))

#: E2 / Theorem 5(ii): accuracy — logical drift and discontinuity
#: within their bounds on every clean run.
register_spec(EvaluationSpec(
    name="theorem5-accuracy",
    description="Theorem 5(ii): implied drift and discontinuity within "
                "their bounds on every clean run",
    where=(("error", "isnull", None),),
    required_columns=("accuracy.implied_drift",
                      "verdict.bound.logical_drift",
                      "accuracy.max_discontinuity",
                      "verdict.bound.discontinuity"),
    checks=(
        Check(column="accuracy.implied_drift", op="<=",
              bound_column="verdict.bound.logical_drift",
              description="implied logical drift vs. the 5(ii) drift bound"),
        Check(column="accuracy.max_discontinuity", op="<=",
              bound_column="verdict.bound.discontinuity",
              description="largest good-state correction vs. the 5(ii) "
                          "discontinuity bound"),
    ),
))

#: E4 / Claim 8(iii): every released node stably rejoins, within the
#: O(1) recovery bound (recovery_intervals * T, in seconds).
register_spec(EvaluationSpec(
    name="claim8-recovery",
    description="Claim 8(iii): every recovering node rejoins within the "
                "recovery bound",
    where=(("error", "isnull", None), ("recovery.count", ">", 0)),
    required_columns=("recovery.all_recovered",
                      "recovery.max_recovery_time",
                      "verdict.bound.recovery_seconds"),
    checks=(
        Check(column="recovery.all_recovered", op="==", value=True,
              description="no released node stayed lost"),
        Check(column="recovery.max_recovery_time", op="<=",
              bound_column="verdict.bound.recovery_seconds",
              description="worst rejoin time vs. Claim 8's bound"),
    ),
))

#: E7 / Definition 2: with at most f concurrently-corrupted processors
#: (configs tag themselves via ``extra.within_f``), every guarantee
#: holds — the resilience boundary experiment's "good side".
register_spec(EvaluationSpec(
    name="e7-resilience",
    description="Definition 2: all Theorem 5 guarantees hold while "
                "corruption stays within the f limit",
    where=(("config.extra.within_f", "==", True),),
    required_columns=("ok",),
    checks=(
        Check(column="error", op="isnull",
              description="within-f runs execute cleanly"),
        Check(column="ok", op="==", value=True,
              description="all Theorem 5 guarantees held"),
    ),
))

#: Campaign hygiene: no run errored, independent of any bound.
register_spec(EvaluationSpec(
    name="campaign-clean",
    description="No run in the campaign ended in an error record",
    required_columns=("error",),
    checks=(
        Check(column="error", op="isnull",
              description="error column empty on every run"),
    ),
))
