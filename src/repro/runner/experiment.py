"""Run scenarios and collect results.

:func:`run` is the package's main entry point: it wires a
:class:`~repro.runner.scenario.Scenario` into a simulator — topology,
delay model, clocks, protocol processes, adversary, sampler — executes
it, and returns a :class:`RunResult` exposing the Definition 3 measures
and the Theorem 5 verdict.

Orchestration (sweeps, replication, parallel fan-out, caching) lives in
:mod:`repro.runner.campaign`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import repro.protocols  # noqa: F401  -- importing registers the protocol factories
from repro.adversary.mobile import MobileAdversary
from repro.clocks.logical import LogicalClock
from repro.core.analysis import Theorem5Verdict, theorem5_verdict
from repro.core.params import ProtocolParams
from repro.errors import MeasurementError
from repro.metrics.measures import (
    AccuracyReport,
    RecoveryReport,
    accuracy_report,
    deviation_series,
    envelope_occupancy,
    recovery_report,
    series_percentiles,
)
from repro.metrics.sampler import (
    ClockSampler,
    ClockSamples,
    CorruptionInterval,
    GoodSetIndex,
)
from repro.metrics.streaming import OnlineMeasures
from repro.metrics.trace import TraceRecorder
from repro.net.network import Network
from repro.protocols.base import protocol_factory
from repro.runner.scenario import Scenario
from repro.runtime.process import Process
from repro.sim.engine import EnginePerfCounters, Simulator
from repro.sim.runtime import SimRuntime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.recorder import FlightRecorder


@dataclass
class RunResult:
    """Everything observable from one simulation run.

    Attributes:
        scenario: The input scenario.
        params: Shortcut to ``scenario.params``.
        samples: Grid clock samples.
        corruptions: Audited corruption intervals that occurred.
        trace: Sync/corruption/message trace.
        clocks: Logical clocks by node (with adjustment histories).
        processes: Protocol processes by node.
        events_processed: Simulator event count (performance metric).
        messages_delivered: Network delivery count.
        perf: Engine performance counters (events/sec, heap high-water
            mark, cancelled-event ratio) for the run's simulator.
        obs: The :class:`~repro.obs.recorder.FlightRecorder` that
            observed the run, or ``None`` when none was passed to
            :func:`run`.
        stream: The :class:`~repro.metrics.streaming.OnlineMeasures`
            that observed the run when ``stream_measures=True``; every
            measure method then answers from it (byte-identically)
            instead of from ``samples``, which stays empty.
    """

    scenario: Scenario
    params: ProtocolParams
    samples: ClockSamples
    corruptions: list[CorruptionInterval]
    trace: TraceRecorder
    clocks: dict[int, LogicalClock]
    processes: dict[int, Process] = field(repr=False, default_factory=dict)
    events_processed: int = 0
    messages_delivered: int = 0
    perf: EnginePerfCounters | None = None
    obs: "FlightRecorder | None" = field(repr=False, default=None)
    stream: OnlineMeasures | None = field(repr=False, default=None)
    _good_index: GoodSetIndex | None = field(repr=False, default=None, compare=False)
    _dev_cache: tuple | None = field(repr=False, default=None, compare=False)

    # -- measures ----------------------------------------------------------

    def good_index(self) -> GoodSetIndex:
        """The run's good-set index (built once, shared by all measures)."""
        if self._good_index is None:
            self._good_index = GoodSetIndex(self.corruptions, self.params.pi,
                                            self.params.n)
        return self._good_index

    def _deviation_pairs(self) -> tuple[list[float], list[float]]:
        """The full (warmup=0) deviation series, computed once.

        Per-sample values are independent of the warmup cut, so every
        warmup view is a bisected suffix of this one series.
        """
        if self._dev_cache is None:
            pairs = deviation_series(self.samples, self.corruptions,
                                     self.params.pi, self.params.n,
                                     index=self.good_index())
            self._dev_cache = ([tau for tau, _ in pairs],
                               [dev for _, dev in pairs])
        return self._dev_cache

    def deviation_series(self, warmup: float = 0.0) -> list[tuple[float, float]]:
        """Good-set deviation per sample (Definition 3(i) subject)."""
        if self.stream is not None:
            return self.stream.deviation_series(warmup)
        taus, devs = self._deviation_pairs()
        lo = bisect.bisect_left(taus, warmup)
        return list(zip(taus[lo:], devs[lo:]))

    def max_deviation(self, warmup: float = 0.0) -> float:
        """Maximum good-set deviation after ``warmup``."""
        if self.stream is not None:
            return self.stream.max_deviation(warmup)
        taus, devs = self._deviation_pairs()
        lo = bisect.bisect_left(taus, warmup)
        if lo >= len(devs):
            raise MeasurementError("no samples with a non-trivial good set after warmup")
        return max(devs[lo:])

    def deviation_percentiles(self, warmup: float = 0.0,
                              percentiles=(50.0, 95.0, 99.0, 100.0)
                              ) -> dict[float, float]:
        """Median/tail percentiles of the good-set deviation series."""
        if self.stream is not None:
            return self.stream.deviation_percentiles(warmup, percentiles)
        taus, devs = self._deviation_pairs()
        lo = bisect.bisect_left(taus, warmup)
        series = devs[lo:]
        if not series:
            raise MeasurementError("no deviation samples after warmup")
        return series_percentiles(series, percentiles)

    def envelope_occupancy(self, warmup: float = 0.0) -> float:
        """Fraction of post-warmup samples inside the Theorem 5 envelope."""
        bound = self.params.bounds().max_deviation
        if self.stream is not None:
            return self.stream.envelope_occupancy(bound, warmup)
        taus, devs = self._deviation_pairs()
        lo = bisect.bisect_left(taus, warmup)
        return envelope_occupancy(devs[lo:], bound)

    def accuracy(self, min_span: float = 0.0) -> AccuracyReport:
        """Measured drift and discontinuity (Definition 3(ii) subject)."""
        if self.stream is not None:
            return self.stream.accuracy(min_span)
        return accuracy_report(self.samples, self.corruptions, self.clocks,
                               self.params.pi, self.params.n, min_span,
                               index=self.good_index())

    def recovery(self, tolerance: float | None = None,
                 settle: float | None = None) -> RecoveryReport:
        """Recovery times for every adversary release.

        ``tolerance`` defaults to the Theorem 5 deviation bound — a node
        counts as recovered when it is within the guarantee of the good
        range.
        """
        if tolerance is None:
            tolerance = self.params.bounds().max_deviation
        if self.stream is not None:
            return self.stream.recovery(tolerance, settle)
        return recovery_report(self.samples, self.corruptions, self.params.pi,
                               self.params.n, tolerance, settle,
                               index=self.good_index())

    def verdict(self, warmup: float = 0.0) -> Theorem5Verdict:
        """Theorem 5 measured-vs-bound comparison for this run."""
        return theorem5_verdict(self.params, self.max_deviation(warmup), self.accuracy())


def run(scenario: Scenario, recorder: "FlightRecorder | None" = None,
        stream_measures: bool = False) -> RunResult:
    """Execute one scenario to completion.

    Deterministic: identical scenarios (including seed) produce
    identical results.  An optional flight ``recorder`` observes the run
    (event stream, spans, metrics, live Theorem 5 probes) without
    changing it: observability publishes from existing events only, so
    the schedule — and therefore every sample, sync, and verdict — is
    identical with and without a recorder.

    With ``stream_measures=True`` the Definition 3 measures are
    accumulated *during* the run by an
    :class:`~repro.metrics.streaming.OnlineMeasures` riding the sampling
    hook, and no clock trace is recorded: the result's ``samples`` stay
    empty while every measure method answers byte-identically from the
    stream.  Neither mode changes the event schedule, so traces and
    engine counters are unaffected.
    """
    params = scenario.params
    sim = Simulator(seed=scenario.seed)
    network = Network(sim, scenario.resolved_topology(),
                      scenario.resolved_delay_model(),
                      loss_rate=scenario.loss_rate)
    trace = TraceRecorder(record_messages=scenario.record_messages)
    network.add_tap(trace.on_message)

    # Clocks: hardware from the factory, initial offsets via adj.
    clocks: dict[int, LogicalClock] = {}
    clock_factory = scenario.resolved_clock_factory()
    offsets_rng = sim.rngs.stream("initial-offsets")
    for node in range(params.n):
        hardware = clock_factory(
            node, params, sim.rngs.stream(f"clock:{node}"), scenario.duration
        )
        clocks[node] = LogicalClock(hardware, adj=scenario.initial_offset_for(node, offsets_rng))

    # Protocol processes.
    factory = (protocol_factory(scenario.protocol)
               if isinstance(scenario.protocol, str) else scenario.protocol)
    phase_rng = sim.rngs.stream("phases")
    processes: dict[int, Process] = {}
    for node in range(params.n):
        phase = phase_rng.uniform(0.0, params.sync_interval) if scenario.stagger_phases else 0.0
        runtime = SimRuntime(node, sim, network, clocks[node])
        process = factory(runtime, params, phase)
        runtime.bind(process)
        processes[node] = process
        if hasattr(process, "sync_listeners"):
            process.sync_listeners.append(trace.on_sync)

    # Adversary.
    corruptions: list[CorruptionInterval] = []
    adversary: MobileAdversary | None = None
    if scenario.plan_builder is not None:
        plan = list(scenario.plan_builder(scenario, clocks))
        adversary = MobileAdversary(
            sim, network, plan, f=params.f, pi=params.pi, trace=trace,
            enforce=scenario.enforce_f_limit,
        )
        adversary.install()
        corruptions = adversary.corruption_intervals()

    # Observability (advisory; attached before any event runs).
    if recorder is not None:
        recorder.attach(sim, network, processes, clocks, params,
                        adversary=adversary)

    # Measurement streaming (advisory, like the recorder: reads clocks
    # from within the sampler's own grid events, adds none of its own).
    stream: OnlineMeasures | None = None
    if stream_measures:
        stream = OnlineMeasures(
            clocks, corruptions, pi=params.pi, n=params.n,
            recovery_tolerance=params.bounds().max_deviation,
            recovery_settle=params.pi,
        )

    # Sampling.
    hooks = [hook for hook in (
        recorder.on_sample if recorder is not None else None,
        stream.on_sample if stream is not None else None,
    ) if hook is not None]
    if not hooks:
        on_sample = None
    elif len(hooks) == 1:
        on_sample = hooks[0]
    else:
        def on_sample(tau: float, sample_index: int,
                      _hooks=tuple(hooks)) -> None:
            for hook in _hooks:
                hook(tau, sample_index)
    sampler = ClockSampler(
        sim, clocks, scenario.resolved_sample_interval(),
        on_sample=on_sample,
        record=not stream_measures,
    )
    sampler.start(scenario.duration)

    for process in processes.values():
        process.start()

    sim.run(until=scenario.duration)

    if recorder is not None:
        recorder.finalize(sim)
    if stream is not None:
        stream.finalize()

    return RunResult(
        scenario=scenario,
        params=params,
        samples=sampler.samples,
        corruptions=corruptions,
        trace=trace,
        clocks=clocks,
        processes=processes,
        events_processed=sim.events_processed,
        messages_delivered=network.messages_delivered,
        perf=sim.perf_counters(),
        obs=recorder,
        stream=stream,
    )


def summarize(values: Sequence[float]) -> tuple[float, float, float]:
    """``(min, mean, max)`` of a non-empty value sequence."""
    return (min(values), sum(values) / len(values), max(values))
