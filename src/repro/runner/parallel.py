"""Parallel execution of config-described experiments.

Sweeps over many scenarios are embarrassingly parallel (each run is a
pure function of its config + seed), but :class:`~repro.runner.scenario.
Scenario` objects hold closures (plan builders, clock factories) that do
not pickle.  The parallel runner therefore operates on the *declarative*
config dicts of :mod:`repro.runner.config` — picklable by construction —
and rebuilds each scenario inside the worker process.

Determinism is preserved: a parallel sweep returns byte-identical
measures to the same sweep run serially (a test asserts this), because
each run's randomness comes only from its own seed.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ConfigRunSummary:
    """Picklable summary of one config run (full RunResults hold
    unpicklable process objects and are large; workers return these).

    Attributes:
        config: The input config dict.
        max_deviation: Good-set max deviation after warmup.
        deviation_bound: The Theorem 5(i) bound for the run's params.
        all_ok: Full Theorem 5 verdict.
        all_recovered: Recovery report outcome (True when no events).
        messages_delivered: Network counter.
        events_processed: Simulator counter.
    """

    config: dict[str, Any]
    max_deviation: float
    deviation_bound: float
    all_ok: bool
    all_recovered: bool
    messages_delivered: int
    events_processed: int


def run_config(config: dict[str, Any], warmup_intervals: float = 3.0
               ) -> ConfigRunSummary:
    """Execute one config (worker entry point; importable at top level).

    Args:
        config: A :mod:`repro.runner.config` scenario description.
        warmup_intervals: Warmup in analysis intervals ``T``.
    """
    # Imports kept local so worker startup stays cheap when the module
    # is imported only for the dataclass.
    from repro.runner.builders import warmup_for
    from repro.runner.config import scenario_from_config
    from repro.runner.experiment import run

    scenario = scenario_from_config(config)
    result = run(scenario)
    warmup = warmup_intervals * result.params.t_interval
    verdict = result.verdict(warmup=warmup)
    recovery = result.recovery()
    return ConfigRunSummary(
        config=config,
        max_deviation=verdict.measured_deviation,
        deviation_bound=verdict.bounds.max_deviation,
        all_ok=verdict.all_ok,
        all_recovered=recovery.all_recovered,
        messages_delivered=result.messages_delivered,
        events_processed=result.events_processed,
    )


def run_configs(configs: Sequence[dict[str, Any]], workers: int | None = None,
                warmup_intervals: float = 3.0) -> list[ConfigRunSummary]:
    """Run many configs, optionally across processes.

    Args:
        configs: Scenario descriptions (see :mod:`repro.runner.config`).
        workers: Process count; ``None`` or ``1`` runs serially in this
            process (no pickling round-trip), ``>= 2`` uses a process
            pool.  Results are returned in input order either way.

    Raises:
        ConfigurationError: On an empty config list or bad worker count.
    """
    if not configs:
        raise ConfigurationError("run_configs needs at least one config")
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if workers is None or workers == 1:
        return [run_config(config, warmup_intervals) for config in configs]
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(run_config, config, warmup_intervals)
                   for config in configs]
        return [future.result() for future in futures]
