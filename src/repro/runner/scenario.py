"""Scenario descriptions: everything a run is a function of.

A :class:`Scenario` fully determines a simulation run (together with
its ``seed``): protocol, network model, clock population, adversary
plan, and sampling grid.  Every behavioral field is *declarative* — a
registered name or spec object (clock model name, :class:`DelaySpec`,
:class:`TopologySpec`, :class:`~repro.adversary.plans.PlanSpec`) — so
scenarios pickle across process pools and round-trip losslessly through
JSON via :meth:`Scenario.to_config` / :meth:`Scenario.from_config`.

Raw callables and model instances are still accepted in every slot as a
Python-only escape hatch (one-off experiments, tests); such scenarios
run fine but refuse ``to_config()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Callable, Sequence, Union

from repro.adversary.plans import PlanSpec
from repro.clocks.factories import (
    CLOCK_MODELS,
    ClockFactory,
    clock_model,
    extremal_clocks,
    perfect_clocks,
    wander_clocks,
)
from repro.core.params import ProtocolParams
from repro.errors import ConfigurationError
from repro.net.links import DelayModel, DelaySpec, UniformDelay
from repro.net.topology import Topology, TopologySpec, full_mesh
from repro.protocols.base import ProtocolFactory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import random

    from repro.adversary.mobile import PlannedCorruption
    from repro.clocks.logical import LogicalClock

__all__ = [
    "Scenario",
    "ClockFactory",
    "PlanBuilder",
    "wander_clocks",
    "extremal_clocks",
    "perfect_clocks",
]


PlanBuilder = Callable[["Scenario", dict[int, "LogicalClock"]], "Sequence[PlannedCorruption]"]
"""Builds the adversary plan once the clocks exist (omniscient
strategies need the clock registry).  :class:`PlanSpec` implements this
signature; raw closures remain accepted but are not serializable."""


@dataclass
class Scenario:
    """Complete description of one simulation run.

    Attributes:
        params: Protocol parameterization (also carries ``n``, ``f``,
            ``delta``, ``rho``, ``pi``).
        duration: Real-time length of the run.
        seed: Root seed for every random stream.
        protocol: Registered protocol name, or a factory callable.
        topology: A :class:`TopologySpec`, an explicit topology, or
            ``None`` for the full mesh on ``n``.
        delay_model: A :class:`DelaySpec`, an explicit delay model, or
            ``None`` for ``UniformDelay(delta)``.
        clock_factory: Registered clock-model name (see
            :data:`~repro.clocks.factories.CLOCK_MODELS`) or a raw
            factory callable; defaults to ``"wander"``.
        initial_offset_spread: Initial clock values are uniform in
            ``[-spread/2, +spread/2]`` (applied via ``adj``); keep below
            ``WayOff`` unless deliberately testing cold-start.
        initial_offsets: Explicit per-node initial clock offsets,
            overriding the spread.
        plan_builder: A :class:`~repro.adversary.plans.PlanSpec` or a
            raw plan-builder callable; ``None`` = no faults.
        enforce_f_limit: Audit the plan against Definition 2 (E7
            disables this deliberately).
        sample_interval: Clock sampling grid spacing; defaults to
            ``max_wait`` (several samples per sync interval).
        record_messages: Keep per-message trace records (memory-heavy).
        loss_rate: Probability of independent message loss (beyond the
            paper's reliable-link model; lost messages surface as
            estimation timeouts).
        stagger_phases: Randomize each node's first-sync phase within
            one sync interval (the paper assumes nothing about relative
            Sync times); when False all nodes sync in lockstep.
        name: Label for reports.
    """

    params: ProtocolParams
    duration: float
    seed: int = 0
    protocol: Union[str, ProtocolFactory] = "sync"
    topology: TopologySpec | Topology | None = None
    delay_model: DelaySpec | DelayModel | None = None
    clock_factory: str | ClockFactory = "wander"
    initial_offset_spread: float = 0.0
    initial_offsets: Sequence[float] | None = None
    plan_builder: PlanSpec | PlanBuilder | None = None
    enforce_f_limit: bool = True
    sample_interval: float | None = None
    record_messages: bool = False
    loss_rate: float = 0.0
    stagger_phases: bool = True
    name: str = "scenario"
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Resolution (spec -> live object)
    # ------------------------------------------------------------------

    def resolved_topology(self) -> Topology:
        """The scenario topology (full mesh by default)."""
        if self.topology is None:
            return full_mesh(self.params.n)
        if isinstance(self.topology, TopologySpec):
            return self.topology.build(self.params)
        return self.topology

    def resolved_delay_model(self) -> DelayModel:
        """The scenario delay model (uniform by default)."""
        if self.delay_model is None:
            return UniformDelay(self.params.delta)
        if isinstance(self.delay_model, DelaySpec):
            return self.delay_model.build(self.params.delta)
        return self.delay_model

    def resolved_clock_factory(self) -> ClockFactory:
        """The clock factory (registry lookup for named models)."""
        if isinstance(self.clock_factory, str):
            return clock_model(self.clock_factory)
        return self.clock_factory

    def resolved_sample_interval(self) -> float:
        """The sampling grid spacing (``max_wait`` by default)."""
        if self.sample_interval is not None:
            return self.sample_interval
        return self.params.max_wait

    def initial_offset_for(self, node: int, rng: "random.Random") -> float:
        """Initial clock offset of ``node`` (explicit list or sampled)."""
        if self.initial_offsets is not None:
            return float(self.initial_offsets[node])
        if self.initial_offset_spread > 0.0:
            return rng.uniform(-self.initial_offset_spread / 2.0,
                               self.initial_offset_spread / 2.0)
        return 0.0

    # ------------------------------------------------------------------
    # Config round-tripping
    # ------------------------------------------------------------------

    def is_declarative(self) -> bool:
        """Whether every behavioral field is a spec (so the scenario
        pickles and serializes; raw callables/instances fail this)."""
        return (isinstance(self.protocol, str)
                and isinstance(self.clock_factory, str)
                and (self.topology is None
                     or isinstance(self.topology, TopologySpec))
                and (self.delay_model is None
                     or isinstance(self.delay_model, DelaySpec))
                and (self.plan_builder is None
                     or isinstance(self.plan_builder, PlanSpec)))

    def to_config(self) -> dict[str, Any]:
        """Lossless JSON form (round-trips through :meth:`from_config`).

        Raises:
            ConfigurationError: If any behavioral field holds a raw
                callable or model instance instead of a spec.
        """
        if not self.is_declarative():
            offenders = [fname for fname, ok in (
                ("protocol", isinstance(self.protocol, str)),
                ("clock_factory", isinstance(self.clock_factory, str)),
                ("topology", self.topology is None
                 or isinstance(self.topology, TopologySpec)),
                ("delay_model", self.delay_model is None
                 or isinstance(self.delay_model, DelaySpec)),
                ("plan_builder", self.plan_builder is None
                 or isinstance(self.plan_builder, PlanSpec)),
            ) if not ok]
            raise ConfigurationError(
                f"scenario {self.name!r} is not declarative: fields "
                f"{offenders} hold raw callables/instances; use registered "
                f"names or spec objects to serialize")
        config: dict[str, Any] = {
            "params": self.params.to_config(),
            "duration": self.duration,
            "seed": self.seed,
            "protocol": self.protocol,
            "clocks": self.clock_factory,
            "initial_offset_spread": self.initial_offset_spread,
            "enforce_f_limit": self.enforce_f_limit,
            "record_messages": self.record_messages,
            "loss_rate": self.loss_rate,
            "stagger_phases": self.stagger_phases,
            "name": self.name,
        }
        if self.topology is not None:
            config["topology"] = self.topology.to_config()
        if self.delay_model is not None:
            config["delay"] = self.delay_model.to_config()
        if self.plan_builder is not None:
            config["plan"] = self.plan_builder.to_config()
        if self.initial_offsets is not None:
            config["initial_offsets"] = list(self.initial_offsets)
        if self.sample_interval is not None:
            config["sample_interval"] = self.sample_interval
        if self.extra:
            config["extra"] = dict(self.extra)
        return config

    #: Top-level config keys understood by :meth:`from_config` (the
    #: config layer adds ``"scenario"`` for builder shorthands).
    CONFIG_KEYS = frozenset({
        "params", "duration", "seed", "protocol", "clocks", "topology",
        "delay", "plan", "initial_offset_spread", "initial_offsets",
        "enforce_f_limit", "sample_interval", "record_messages",
        "loss_rate", "stagger_phases", "name", "extra",
    })

    @classmethod
    def from_config(cls, config: dict[str, Any]) -> "Scenario":
        """Build a scenario from its JSON form.

        Raises:
            ConfigurationError: Naming any unknown top-level key, and on
                any invalid section (params, clocks, delay, topology,
                plan).
        """
        unknown = config.keys() - cls.CONFIG_KEYS
        if unknown:
            raise ConfigurationError(
                f"unknown config keys {sorted(unknown)}; known: "
                f"{sorted(cls.CONFIG_KEYS)}")
        if "params" not in config:
            raise ConfigurationError("config requires a 'params' section")
        params = ProtocolParams.from_config(config["params"])

        clocks_name = config.get("clocks", "wander")
        if clocks_name not in CLOCK_MODELS:
            raise ConfigurationError(
                f"unknown clock model {clocks_name!r}; known: "
                f"{sorted(CLOCK_MODELS)}")

        scenario = cls(
            params=params,
            duration=float(config.get("duration", 20.0)),
            seed=int(config.get("seed", 0)),
            protocol=config.get("protocol", "sync"),
            clock_factory=clocks_name,
            initial_offset_spread=float(config.get("initial_offset_spread", 0.0)),
            enforce_f_limit=bool(config.get("enforce_f_limit", True)),
            record_messages=bool(config.get("record_messages", False)),
            loss_rate=float(config.get("loss_rate", 0.0)),
            stagger_phases=bool(config.get("stagger_phases", True)),
            name=str(config.get("name", "scenario")),
            extra=dict(config.get("extra", {})),
        )
        if "topology" in config:
            scenario.topology = TopologySpec.from_config(config["topology"])
        if "delay" in config:
            scenario.delay_model = DelaySpec.from_config(config["delay"])
        if "plan" in config:
            scenario.plan_builder = PlanSpec.from_config(config["plan"])
        if "initial_offsets" in config:
            scenario.initial_offsets = [float(x) for x in config["initial_offsets"]]
        if "sample_interval" in config:
            scenario.sample_interval = float(config["sample_interval"])
        return scenario


# Sanity: CONFIG_KEYS must track the dataclass (every key maps to a
# field modulo the clocks/delay/plan renames), so a field added without
# a config form fails loudly at import time rather than silently
# de-syncing to_config/from_config.
_FIELD_TO_KEY = {"clock_factory": "clocks", "delay_model": "delay",
                 "plan_builder": "plan"}
assert Scenario.CONFIG_KEYS == {
    _FIELD_TO_KEY.get(f.name, f.name) for f in fields(Scenario)
}, "Scenario.CONFIG_KEYS out of sync with Scenario fields"
