"""Scenario descriptions: everything a run is a function of.

A :class:`Scenario` fully determines a simulation run (together with
its ``seed``): protocol, network model, clock population, adversary
plan, and sampling grid.  Scenarios are plain data plus small factory
callables, so sweeps can ``dataclasses.replace`` one field at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence, Union

from repro.clocks.drift import wander_schedule
from repro.clocks.hardware import FixedRateClock, HardwareClock, PiecewiseRateClock
from repro.core.params import ProtocolParams
from repro.net.links import DelayModel, UniformDelay
from repro.net.topology import Topology, full_mesh
from repro.protocols.base import ProtocolFactory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import random

    from repro.adversary.mobile import PlannedCorruption
    from repro.clocks.logical import LogicalClock


ClockFactory = Callable[[int, "ProtocolParams", "random.Random", float], HardwareClock]
"""Builds node ``i``'s hardware clock: ``(node, params, rng, horizon)``."""

PlanBuilder = Callable[["Scenario", dict[int, "LogicalClock"]], "Sequence[PlannedCorruption]"]
"""Builds the adversary plan once the clocks exist (omniscient
strategies need the clock registry)."""


def wander_clocks(node: int, params: ProtocolParams, rng: "random.Random",
                  horizon: float) -> HardwareClock:
    """Default clock population: independent bounded random-walk drift."""
    schedule = wander_schedule(params.rho, step=params.sync_interval, horizon=horizon, rng=rng)
    return PiecewiseRateClock(params.rho, schedule)


def extremal_clocks(node: int, params: ProtocolParams, rng: "random.Random",
                    horizon: float) -> HardwareClock:
    """Worst-case population: clocks pinned at alternating drift extremes.

    Even nodes run at ``1 + rho``, odd nodes at ``1/(1+rho)`` — the
    maximum mutual drift eq. (2) permits, sustained forever.
    """
    rate = (1.0 + params.rho) if node % 2 == 0 else 1.0 / (1.0 + params.rho)
    return FixedRateClock(params.rho, rate=rate)


def perfect_clocks(node: int, params: ProtocolParams, rng: "random.Random",
                   horizon: float) -> HardwareClock:
    """Driftless clocks (the Section 4.3 simplified analysis setting)."""
    return FixedRateClock(params.rho, rate=1.0)


@dataclass
class Scenario:
    """Complete description of one simulation run.

    Attributes:
        params: Protocol parameterization (also carries ``n``, ``f``,
            ``delta``, ``rho``, ``pi``).
        duration: Real-time length of the run.
        seed: Root seed for every random stream.
        protocol: Registered protocol name, or a factory callable.
        topology: Explicit topology; defaults to the full mesh on ``n``.
        delay_model: Explicit delay model; defaults to
            ``UniformDelay(delta)``.
        clock_factory: Builds each node's hardware clock; defaults to
            :func:`wander_clocks`.
        initial_offset_spread: Initial clock values are uniform in
            ``[-spread/2, +spread/2]`` (applied via ``adj``); keep below
            ``WayOff`` unless deliberately testing cold-start.
        initial_offsets: Explicit per-node initial clock offsets,
            overriding the spread.
        plan_builder: Builds the adversary plan; ``None`` = no faults.
        enforce_f_limit: Audit the plan against Definition 2 (E7
            disables this deliberately).
        sample_interval: Clock sampling grid spacing; defaults to
            ``max_wait`` (several samples per sync interval).
        record_messages: Keep per-message trace records (memory-heavy).
        loss_rate: Probability of independent message loss (beyond the
            paper's reliable-link model; lost messages surface as
            estimation timeouts).
        stagger_phases: Randomize each node's first-sync phase within
            one sync interval (the paper assumes nothing about relative
            Sync times); when False all nodes sync in lockstep.
        name: Label for reports.
    """

    params: ProtocolParams
    duration: float
    seed: int = 0
    protocol: Union[str, ProtocolFactory] = "sync"
    topology: Topology | None = None
    delay_model: DelayModel | None = None
    clock_factory: ClockFactory = wander_clocks
    initial_offset_spread: float = 0.0
    initial_offsets: Sequence[float] | None = None
    plan_builder: PlanBuilder | None = None
    enforce_f_limit: bool = True
    sample_interval: float | None = None
    record_messages: bool = False
    loss_rate: float = 0.0
    stagger_phases: bool = True
    name: str = "scenario"
    extra: dict = field(default_factory=dict)

    def resolved_topology(self) -> Topology:
        """The scenario topology (full mesh by default)."""
        return self.topology if self.topology is not None else full_mesh(self.params.n)

    def resolved_delay_model(self) -> DelayModel:
        """The scenario delay model (uniform by default)."""
        if self.delay_model is not None:
            return self.delay_model
        return UniformDelay(self.params.delta)

    def resolved_sample_interval(self) -> float:
        """The sampling grid spacing (``max_wait`` by default)."""
        if self.sample_interval is not None:
            return self.sample_interval
        return self.params.max_wait

    def initial_offset_for(self, node: int, rng: "random.Random") -> float:
        """Initial clock offset of ``node`` (explicit list or sampled)."""
        if self.initial_offsets is not None:
            return float(self.initial_offsets[node])
        if self.initial_offset_spread > 0.0:
            return rng.uniform(-self.initial_offset_spread / 2.0,
                               self.initial_offset_spread / 2.0)
        return 0.0
