"""Columnar campaign results: the :class:`ResultStore` and its query API.

PR 9's vector backend made 10^5-run campaigns cheap to *produce*; this
module makes them cheap to *keep and ask questions of*.  Instead of one
JSON/pickle blob per run, a campaign's records live as struct-of-arrays
columns over all runs:

* every scalar config leaf is exploded into a ``config.<dotted.path>``
  column (query-only; the exact input dict is preserved separately),
* every measure — Theorem 5 verdict and bounds, Definition 3 accuracy
  and recovery, envelope occupancy, deterministic perf counters — is a
  typed column (``array('d')`` floats, ``array('q')`` ints, bools,
  strings, JSON blobs), each with a presence mask so error records and
  schema evolution never crash a reader.

The round trip is **lossless**: ``RunRecord`` → store → ``RunRecord``
reproduces float-exact measures and ``==``-equal config dicts, so the
content-addressed cache and campaign resume keep working unchanged
(records remain the unit of execution; the store is the unit of
storage and analysis).

On-disk format (append-friendly):

    <dir>/manifest.json          store_format, meta, ordered chunk list
    <dir>/chunk-000000.json      per-chunk column directory
    <dir>/chunk-000000.bin       concatenated column/mask bytes

Numeric columns are raw ``array.tobytes()`` slices of the ``.bin`` file
(byte order recorded per chunk and swapped on foreign-endian load);
string/JSON columns live in the chunk JSON.  Appending runs writes one
new chunk plus a small manifest rewrite — no existing bytes are
touched.  When pyarrow is installed (the ``repro[parquet]`` extra) and
active, chunks are written as ``.parquet`` row groups instead — the
fast path mirrors the numpy seam in :mod:`repro.metrics.columns`:
auto-detected, forceable via :func:`set_parquet`, never a hard
dependency, and aggregate results are byte-identical across both
paths (both feed the same Python reduction code with the same float
bytes).

Querying (no pandas)::

    store = ResultStore.load("campaign-out")
    ok = store.query().where("error", "isnull")
    worst = ok.aggregate(worst=("verdict.measured_deviation", "max"))
    by_f = ok.group_by("config.params.f").aggregate(
        runs=("index", "count"),
        mean_dev=("verdict.measured_deviation", "mean"))
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
from array import array
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro._version import __version__
from repro.core.analysis import Theorem5Verdict
from repro.core.params import Theorem5Bounds
from repro.errors import StoreError
from repro.metrics.measures import AccuracyReport, RecoveryEvent, RecoveryReport
from repro.runner.records import RunPerf, RunRecord

try:  # pragma: no cover - exercised only with the parquet extra
    import pyarrow as _pa
    import pyarrow.parquet as _pq
except ImportError:  # pragma: no cover - default environment
    _pa = None
    _pq = None

__all__ = [
    "ResultStore",
    "Column",
    "Query",
    "GroupedQuery",
    "ABSENT",
    "STORE_FORMAT",
    "HAVE_PYARROW",
    "set_parquet",
    "parquet_active",
    "append_to_dir",
    "AGGREGATES",
]

#: Bumped when the on-disk layout changes incompatibly.  Loaders refuse
#: *newer* formats with a clear error and accept every older one.
STORE_FORMAT = 1

#: Whether pyarrow was importable in this environment.
HAVE_PYARROW = _pa is not None

#: Tri-state override: None = auto (use parquet iff pyarrow available).
_FORCED_PARQUET: bool | None = None

#: Marker for "this run has no value in this column" (distinct from a
#: present ``None``, which JSON columns can hold).
ABSENT = object()

_KINDS = ("f8", "i8", "bool", "str", "json")
_TYPECODES = {"f8": "d", "i8": "q", "bool": "b"}


def set_parquet(enabled: bool | None) -> None:
    """Force the chunk format: True/False, or None for auto-detect.

    Mirrors :func:`repro.metrics.columns.set_numpy`.

    Raises:
        StoreError: When forcing parquet in an environment without
            pyarrow.
    """
    global _FORCED_PARQUET
    if enabled is True and not HAVE_PYARROW:
        raise StoreError("cannot force the parquet path: pyarrow is not "
                         "installed (pip install repro[parquet])")
    _FORCED_PARQUET = enabled


def parquet_active() -> bool:
    """Whether new chunks will be written as parquet right now."""
    if _FORCED_PARQUET is None:
        return HAVE_PYARROW
    return _FORCED_PARQUET


# ----------------------------------------------------------------------
# Columns
# ----------------------------------------------------------------------


class Column:
    """One typed column plus its presence mask.

    Kinds: ``f8`` (float, ``array('d')``), ``i8`` (int, ``array('q')``),
    ``bool`` (``array('b')``), ``str`` (list of str), ``json`` (list of
    JSON-serializable values).  Absent cells read as ``None``.
    """

    __slots__ = ("name", "kind", "values", "mask")

    def __init__(self, name: str, kind: str) -> None:
        if kind not in _KINDS:
            raise StoreError(f"unknown column kind {kind!r}; known: {_KINDS}")
        self.name = name
        self.kind = kind
        self.values: Any = (array(_TYPECODES[kind]) if kind in _TYPECODES
                            else [])
        self.mask = bytearray()

    def __len__(self) -> int:
        return len(self.mask)

    def append(self, value: Any) -> None:
        """Append one cell (``ABSENT`` for a masked hole)."""
        if value is ABSENT:
            self.mask.append(0)
            if self.kind in _TYPECODES:
                self.values.append(0)
            else:
                self.values.append(None)
            return
        self.mask.append(1)
        try:
            if self.kind == "f8":
                self.values.append(float(value))
            elif self.kind == "i8":
                self.values.append(int(value))
            elif self.kind == "bool":
                self.values.append(1 if value else 0)
            else:
                self.values.append(value)
        except OverflowError as exc:
            raise StoreError(
                f"column {self.name!r}: value {value!r} does not fit the "
                f"{self.kind} column type") from exc

    def pad_to(self, n: int) -> None:
        """Backfill masked holes so the column reaches ``n`` rows."""
        while len(self) < n:
            self.append(ABSENT)

    def present(self, i: int) -> bool:
        """Whether row ``i`` holds a value (vs an ABSENT hole)."""
        return bool(self.mask[i])

    def get(self, i: int) -> Any:
        """Cell value at row ``i`` (``None`` when absent)."""
        if not self.mask[i]:
            return None
        value = self.values[i]
        if self.kind == "bool":
            return bool(value)
        return value


# ----------------------------------------------------------------------
# RunRecord <-> columns schema
# ----------------------------------------------------------------------

_BOUNDS_FIELDS = (
    ("t_interval", "f8"), ("k", "i8"), ("c", "f8"), ("max_deviation", "f8"),
    ("logical_drift", "f8"), ("discontinuity", "f8"), ("d_half_width", "f8"),
    ("way_off_required", "f8"), ("recovery_intervals", "i8"),
)

_PERF_FIELDS = (
    ("events_processed", "i8"), ("events_pushed", "i8"),
    ("events_cancelled", "i8"), ("cancelled_ratio", "f8"),
    ("heap_high_water", "i8"), ("pending_events", "i8"),
)


def _maybe(obj: Any, attr: str) -> Any:
    return ABSENT if obj is None else getattr(obj, attr)


def _fixed_schema() -> list[tuple[str, str, Callable[[RunRecord], Any]]]:
    """``(column, kind, extractor)`` triples for the fixed record schema."""
    schema: list[tuple[str, str, Callable[[RunRecord], Any]]] = [
        ("index", "i8", lambda r: r.index),
        ("name", "str", lambda r: r.name),
        ("seed", "i8", lambda r: r.seed),
        ("duration", "f8", lambda r: r.duration),
        ("warmup", "f8", lambda r: r.warmup),
        ("error", "str", lambda r: ABSENT if r.error is None else r.error),
        ("scalar_fallback_reason", "str",
         lambda r: ABSENT if r.scalar_fallback_reason is None
         else r.scalar_fallback_reason),
        ("ok", "bool", lambda r: r.ok),
        ("config_json", "str", lambda r: _canonical_config(r.config)),
        ("verdict.measured_deviation", "f8",
         lambda r: _maybe(r.verdict, "measured_deviation")),
        ("verdict.measured_drift", "f8",
         lambda r: _maybe(r.verdict, "measured_drift")),
        ("verdict.measured_discontinuity", "f8",
         lambda r: _maybe(r.verdict, "measured_discontinuity")),
        ("verdict.deviation_ok", "bool",
         lambda r: _maybe(r.verdict, "deviation_ok")),
        ("verdict.drift_ok", "bool", lambda r: _maybe(r.verdict, "drift_ok")),
        ("verdict.discontinuity_ok", "bool",
         lambda r: _maybe(r.verdict, "discontinuity_ok")),
        ("verdict.all_ok", "bool", lambda r: _maybe(r.verdict, "all_ok")),
        ("accuracy.max_discontinuity", "f8",
         lambda r: _maybe(r.accuracy, "max_discontinuity")),
        ("accuracy.implied_drift", "f8",
         lambda r: _maybe(r.accuracy, "implied_drift")),
        ("accuracy.stretches", "i8", lambda r: _maybe(r.accuracy, "stretches")),
        ("deviation_percentiles", "json",
         lambda r: ABSENT if r.deviation_percentiles is None
         else [[k, v] for k, v in sorted(r.deviation_percentiles.items())]),
        ("recovery.tolerance", "f8", lambda r: _maybe(r.recovery, "tolerance")),
        ("recovery.events", "json",
         lambda r: ABSENT if r.recovery is None
         else [[e.node, e.released_at, e.rejoined_at, e.initial_distance]
               for e in r.recovery.events]),
        ("recovery.count", "i8",
         lambda r: ABSENT if r.recovery is None else len(r.recovery.events)),
        ("recovery.max_recovery_time", "f8",
         lambda r: _maybe(r.recovery, "max_recovery_time")),
        ("recovery.all_recovered", "bool",
         lambda r: _maybe(r.recovery, "all_recovered")),
        ("envelope_occupancy", "f8",
         lambda r: ABSENT if r.envelope_occupancy is None
         else r.envelope_occupancy),
        ("corruption_count", "i8", lambda r: r.corruption_count),
        ("events_processed", "i8", lambda r: r.events_processed),
        ("messages_delivered", "i8", lambda r: r.messages_delivered),
        ("sync_executions", "i8", lambda r: r.sync_executions),
        ("obs", "json", lambda r: ABSENT if r.obs is None else r.obs),
    ]
    for field, kind in _BOUNDS_FIELDS:
        schema.append((f"verdict.bound.{field}", kind,
                       lambda r, f=field: ABSENT if r.verdict is None
                       else getattr(r.verdict.bounds, f)))
    # Derived: the Claim 8 recovery bound in seconds, so evaluation
    # specs can compare measured recovery times against it directly.
    schema.append(("verdict.bound.recovery_seconds", "f8",
                   lambda r: ABSENT if r.verdict is None
                   else (r.verdict.bounds.recovery_intervals
                         * r.verdict.bounds.t_interval)))
    for field, kind in _PERF_FIELDS:
        schema.append((f"perf.{field}", kind,
                       lambda r, f=field: _maybe(r.perf, f)))
    return schema


_SCHEMA = _fixed_schema()
_FIXED_KINDS = {name: kind for name, kind, _ in _SCHEMA}


def _canonical_config(config: Mapping[str, Any]) -> str:
    """Canonical JSON text of a config dict (the lossless copy).

    Raises:
        StoreError: If the config does not survive a JSON round trip
            (non-string keys, tuples, other non-JSON values) — such a
            config could not have been cached either, and storing a
            lossy copy would silently break resume.
    """
    try:
        text = json.dumps(config, sort_keys=True, separators=(",", ":"))
        if json.loads(text) != config:
            raise ValueError("round trip changed the value")
    except (TypeError, ValueError) as exc:
        raise StoreError(
            f"config is not losslessly JSON-serializable ({exc}); the "
            f"result store keeps configs as canonical JSON") from exc
    return text


def _config_leaves(config: Mapping[str, Any]) -> Iterable[tuple[str, Any]]:
    """Scalar leaves of a config dict as ``config.<dotted.path>`` pairs.

    Dict nesting recurses; lists and other composites stay reachable
    only through ``config_json`` (they are poor query keys anyway).
    """
    def walk(obj: Mapping[str, Any], prefix: str):
        for key in obj:
            if not isinstance(key, str):
                continue
            value = obj[key]
            if isinstance(value, Mapping):
                yield from walk(value, f"{prefix}{key}.")
            elif value is None or isinstance(value, (str, int, float, bool)):
                yield f"{prefix}{key}", value
    yield from walk(config, "config.")


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------


class ResultStore:
    """Struct-of-arrays storage for campaign :class:`RunRecord` s.

    Build one with :meth:`from_records` (or let
    :meth:`repro.runner.campaign.Campaign.run` write one natively via
    ``store_dir``), extend it with :meth:`append_records`, persist with
    :meth:`save` / :func:`append_to_dir`, reload with :meth:`load`,
    and analyze through :meth:`query`.
    """

    def __init__(self, meta: dict[str, Any] | None = None) -> None:
        # The fixed record schema exists from birth, so an empty store
        # answers the same queries as a populated one (just with zero
        # rows) instead of raising "no column".
        self.columns: dict[str, Column] = {
            name: Column(name, kind) for name, kind, _ in _SCHEMA}
        self.n_runs = 0
        self.meta: dict[str, Any] = dict(meta or {})

    # -- construction --------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[RunRecord],
                     meta: dict[str, Any] | None = None) -> "ResultStore":
        """Explode records into columns (see the module docstring)."""
        store = cls(meta=meta)
        store.append_records(records)
        return store

    def append_records(self, records: Sequence[RunRecord]) -> None:
        """Append runs; new columns backfill masked holes, missing ones
        extend with masked holes (schema evolution is per-row safe)."""
        for record in records:
            self._append_one(record)

    def _column(self, name: str, kind: str) -> Column:
        column = self.columns.get(name)
        if column is None:
            column = Column(name, kind)
            column.pad_to(self.n_runs)
            self.columns[name] = column
        elif column.kind != kind:
            raise StoreError(
                f"column {name!r} already exists with kind "
                f"{column.kind!r}, not {kind!r}")
        return column

    def _append_one(self, record: RunRecord) -> None:
        if not isinstance(record, RunRecord):
            raise StoreError(f"expected a RunRecord, got {type(record).__name__}")
        for name, kind, extract in _SCHEMA:
            self._column(name, kind).append(extract(record))
        if isinstance(record.config, Mapping):
            for name, value in _config_leaves(record.config):
                self._column(name, "json").append(value)
        self.n_runs += 1
        for column in self.columns.values():
            column.pad_to(self.n_runs)

    # -- access --------------------------------------------------------

    def column_names(self) -> list[str]:
        """All column names, fixed schema first then config columns."""
        return list(self.columns)

    def has_column(self, name: str) -> bool:
        """Whether the store has a column named ``name``."""
        return name in self.columns

    def values(self, name: str) -> list[Any]:
        """Full column as a list (``None`` where absent).

        Raises:
            StoreError: On an unknown column, naming near misses.
        """
        column = self.columns.get(name)
        if column is None:
            near = [c for c in self.columns if name in c]
            hint = f"; similar: {sorted(near)[:6]}" if near else ""
            raise StoreError(f"no column {name!r}{hint}")
        return [column.get(i) for i in range(self.n_runs)]

    def query(self) -> "Query":
        """A query over every run in the store."""
        return Query(self, list(range(self.n_runs)))

    # -- record round trip ---------------------------------------------

    def record(self, i: int) -> RunRecord:
        """Reassemble the :class:`RunRecord` of row ``i`` (lossless)."""
        if not 0 <= i < self.n_runs:
            raise StoreError(f"row {i} out of range (store has {self.n_runs})")
        cell = lambda name: self.columns[name].get(i) \
            if name in self.columns else None
        verdict = None
        if cell("verdict.measured_deviation") is not None:
            verdict = Theorem5Verdict(
                bounds=Theorem5Bounds(**{
                    field: cell(f"verdict.bound.{field}")
                    for field, _ in _BOUNDS_FIELDS}),
                measured_deviation=cell("verdict.measured_deviation"),
                measured_drift=cell("verdict.measured_drift"),
                measured_discontinuity=cell("verdict.measured_discontinuity"),
                deviation_ok=cell("verdict.deviation_ok"),
                drift_ok=cell("verdict.drift_ok"),
                discontinuity_ok=cell("verdict.discontinuity_ok"),
            )
        accuracy = None
        if cell("accuracy.max_discontinuity") is not None:
            accuracy = AccuracyReport(
                max_discontinuity=cell("accuracy.max_discontinuity"),
                implied_drift=cell("accuracy.implied_drift"),
                stretches=cell("accuracy.stretches"),
            )
        percentiles = cell("deviation_percentiles")
        recovery = None
        if cell("recovery.tolerance") is not None:
            recovery = RecoveryReport(
                events=[RecoveryEvent(node=int(node), released_at=released,
                                      rejoined_at=rejoined,
                                      initial_distance=distance)
                        for node, released, rejoined, distance
                        in (cell("recovery.events") or [])],
                tolerance=cell("recovery.tolerance"),
            )
        perf = None
        if cell("perf.events_processed") is not None:
            perf = RunPerf(**{field: cell(f"perf.{field}")
                              for field, _ in _PERF_FIELDS})
        config_json = cell("config_json")
        return RunRecord(
            index=cell("index"),
            name=cell("name"),
            config=json.loads(config_json) if config_json is not None else {},
            seed=cell("seed"),
            duration=cell("duration"),
            warmup=cell("warmup"),
            verdict=verdict,
            accuracy=accuracy,
            deviation_percentiles=(None if percentiles is None
                                   else {k: v for k, v in percentiles}),
            recovery=recovery,
            envelope_occupancy=cell("envelope_occupancy"),
            corruption_count=cell("corruption_count"),
            events_processed=cell("events_processed"),
            messages_delivered=cell("messages_delivered"),
            sync_executions=cell("sync_executions"),
            perf=perf,
            obs=cell("obs"),
            scalar_fallback_reason=cell("scalar_fallback_reason"),
            error=cell("error"),
        )

    def to_records(self) -> list[RunRecord]:
        """All rows reassembled into records, in store order."""
        return [self.record(i) for i in range(self.n_runs)]

    # -- persistence ---------------------------------------------------

    def save(self, directory: str | pathlib.Path) -> None:
        """Write the store fresh (one chunk), replacing any existing one.

        For incremental writes use :func:`append_to_dir`, which adds a
        chunk without touching existing bytes.
        """
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for stale in directory.glob("chunk-*"):
            stale.unlink()
        chunk = _write_chunk(directory, 0, self)
        _write_manifest(directory, [chunk], self.meta)

    @classmethod
    def load(cls, directory: str | pathlib.Path) -> "ResultStore":
        """Load a store directory (all chunks, both formats).

        Raises:
            StoreError: On a missing/corrupt manifest, a newer
                ``store_format``, or a parquet chunk without pyarrow.
        """
        directory = pathlib.Path(directory)
        manifest_path = directory / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise StoreError(f"not a result store (no manifest.json): "
                             f"{directory}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"unreadable store manifest {manifest_path}: "
                             f"{exc}") from None
        fmt = manifest.get("store_format")
        if not isinstance(fmt, int) or fmt > STORE_FORMAT:
            raise StoreError(
                f"store {directory} has format {fmt!r}; this build reads "
                f"up to {STORE_FORMAT} — upgrade repro to read it")
        store = cls(meta=manifest.get("meta", {}))
        for entry in manifest.get("chunks", []):
            _read_chunk(directory, entry, store)
        return store


# ----------------------------------------------------------------------
# Chunk I/O
# ----------------------------------------------------------------------


def _write_manifest(directory: pathlib.Path, chunks: list[dict[str, Any]],
                    meta: dict[str, Any]) -> None:
    payload = {
        "store_format": STORE_FORMAT,
        "version": __version__,
        "meta": meta,
        "chunks": chunks,
    }
    tmp = directory / f"manifest.json.tmp.{os.getpid()}"
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, directory / "manifest.json")


def _write_chunk(directory: pathlib.Path, index: int,
                 store: ResultStore) -> dict[str, Any]:
    """Write one chunk holding all of ``store``'s rows; return its
    manifest entry."""
    name = f"chunk-{index:06d}"
    if parquet_active():
        _write_chunk_parquet(directory / f"{name}.parquet", store)
        return {"name": name, "runs": store.n_runs, "format": "parquet"}
    _write_chunk_core(directory, name, store)
    return {"name": name, "runs": store.n_runs, "format": "core"}


def _write_chunk_core(directory: pathlib.Path, name: str,
                      store: ResultStore) -> None:
    blobs: list[bytes] = []
    offset = 0
    entries: list[dict[str, Any]] = []
    for column in store.columns.values():
        entry: dict[str, Any] = {"name": column.name, "kind": column.kind}
        if column.kind in _TYPECODES:
            data = column.values.tobytes()
            entry["offset"], entry["nbytes"] = offset, len(data)
            blobs.append(data)
            offset += len(data)
        else:
            entry["values"] = [
                [column.values[i]] if column.mask[i] else 0
                for i in range(len(column))
            ]
        if column.kind in _TYPECODES and 0 in column.mask:
            mask = bytes(column.mask)
            entry["mask_offset"] = offset
            blobs.append(mask)
            offset += len(mask)
        entries.append(entry)
    (directory / f"{name}.bin").write_bytes(b"".join(blobs))
    header = {"runs": store.n_runs, "byteorder": sys.byteorder,
              "columns": entries}
    (directory / f"{name}.json").write_text(
        json.dumps(header, sort_keys=True) + "\n")


def _read_chunk(directory: pathlib.Path, entry: dict[str, Any],
                store: ResultStore) -> None:
    name, fmt = entry.get("name"), entry.get("format", "core")
    start = store.n_runs
    if fmt == "parquet":
        runs = _read_chunk_parquet(directory / f"{name}.parquet", store, start)
    elif fmt == "core":
        runs = _read_chunk_core(directory, name, store, start)
    else:
        raise StoreError(f"chunk {name!r} has unknown format {fmt!r}")
    store.n_runs = start + runs
    for column in store.columns.values():
        column.pad_to(store.n_runs)


def _read_chunk_core(directory: pathlib.Path, name: str,
                     store: ResultStore, start: int) -> int:
    try:
        header = json.loads((directory / f"{name}.json").read_text())
        blob = (directory / f"{name}.bin").read_bytes()
    except (OSError, json.JSONDecodeError) as exc:
        raise StoreError(f"unreadable store chunk {name!r}: {exc}") from None
    runs = int(header["runs"])
    foreign = header.get("byteorder", sys.byteorder) != sys.byteorder
    for entry in header["columns"]:
        column = store._column(entry["name"], entry["kind"])
        column.pad_to(start)
        if entry["kind"] in _TYPECODES:
            data = array(_TYPECODES[entry["kind"]])
            data.frombytes(blob[entry["offset"]:entry["offset"] + entry["nbytes"]])
            if foreign and entry["kind"] != "bool":
                data.byteswap()
            mask_offset = entry.get("mask_offset")
            mask = (blob[mask_offset:mask_offset + runs]
                    if mask_offset is not None else b"\x01" * runs)
            if len(data) != runs or len(mask) != runs:
                raise StoreError(f"chunk {name!r} column "
                                 f"{entry['name']!r} is truncated")
            column.values.extend(data)
            column.mask.extend(mask)
        else:
            cells = entry["values"]
            if len(cells) != runs:
                raise StoreError(f"chunk {name!r} column "
                                 f"{entry['name']!r} is truncated")
            for cell in cells:
                column.append(cell[0] if isinstance(cell, list) else ABSENT)
    return runs


def _write_chunk_parquet(path: pathlib.Path, store: ResultStore) -> None:
    if not HAVE_PYARROW:  # pragma: no cover - guarded by parquet_active
        raise StoreError("parquet chunk requested but pyarrow is not "
                         "installed (pip install repro[parquet])")
    arrays, fields = [], []
    for column in store.columns.values():
        cells = [column.get(i) for i in range(len(column))]
        if column.kind == "json":
            # Encode present cells as JSON text so a present None stays
            # distinguishable from an absent cell (arrow null).
            cells = [None if not column.present(i)
                     else json.dumps(column.values[i], sort_keys=True)
                     for i in range(len(column))]
            arrow_type = _pa.string()
        elif column.kind == "f8":
            arrow_type = _pa.float64()
        elif column.kind == "i8":
            arrow_type = _pa.int64()
        elif column.kind == "bool":
            arrow_type = _pa.bool_()
        else:
            arrow_type = _pa.string()
        arrays.append(_pa.array(cells, type=arrow_type))
        fields.append(_pa.field(column.name, arrow_type))
    kinds = {c.name: c.kind for c in store.columns.values()}
    schema = _pa.schema(fields, metadata={
        b"repro_kinds": json.dumps(kinds, sort_keys=True).encode(),
        b"repro_store_format": str(STORE_FORMAT).encode(),
    })
    _pq.write_table(_pa.Table.from_arrays(arrays, schema=schema), path)


def _read_chunk_parquet(path: pathlib.Path, store: ResultStore,
                        start: int) -> int:
    if not HAVE_PYARROW:
        raise StoreError(f"store chunk {path.name} is parquet but pyarrow "
                         f"is not installed (pip install repro[parquet])")
    try:
        table = _pq.read_table(path)
    except (OSError, _pa.ArrowInvalid) as exc:  # pragma: no cover - corrupt file
        raise StoreError(f"unreadable parquet chunk {path}: {exc}") from None
    metadata = table.schema.metadata or {}
    kinds = json.loads(metadata.get(b"repro_kinds", b"{}"))
    for field in table.schema.names:
        kind = kinds.get(field, "json")
        column = store._column(field, kind)
        column.pad_to(start)
        for cell in table.column(field).to_pylist():
            if cell is None:
                column.append(ABSENT)
            elif kind == "json":
                column.append(json.loads(cell))
            else:
                column.append(cell)
    return table.num_rows


def append_to_dir(directory: str | pathlib.Path,
                  records: Sequence[RunRecord],
                  meta: dict[str, Any] | None = None) -> None:
    """Append ``records`` to an on-disk store as one new chunk.

    Creates the store if the directory holds none.  Existing chunk
    files are never rewritten — only the small manifest is atomically
    replaced — so interrupted appends leave the prior store intact.
    ``meta`` (when given) is merged over the stored metadata.
    """
    directory = pathlib.Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        ResultStore.from_records(records, meta=meta).save(directory)
        return
    manifest = json.loads(manifest_path.read_text())
    fmt = manifest.get("store_format")
    if not isinstance(fmt, int) or fmt > STORE_FORMAT:
        raise StoreError(f"cannot append to store {directory} with format "
                         f"{fmt!r} (this build writes {STORE_FORMAT})")
    chunks = list(manifest.get("chunks", []))
    chunk = _write_chunk(directory, len(chunks),
                         ResultStore.from_records(records))
    chunks.append(chunk)
    merged = dict(manifest.get("meta", {}))
    merged.update(meta or {})
    _write_manifest(directory, chunks, merged)


# ----------------------------------------------------------------------
# Query API
# ----------------------------------------------------------------------

#: Aggregate functions usable in :meth:`Query.aggregate` /
#: :meth:`GroupedQuery.aggregate`.  All reduce present cells in row
#: order with plain Python arithmetic, so results are identical no
#: matter which on-disk path (core or parquet) produced the columns.
AGGREGATES: dict[str, Callable[[list], Any]] = {
    "count": len,
    "sum": lambda vals: sum(vals),
    "mean": lambda vals: (sum(vals) / len(vals)) if vals else None,
    "min": lambda vals: min(vals) if vals else None,
    "max": lambda vals: max(vals) if vals else None,
    "any": lambda vals: any(vals),
    "all": lambda vals: all(vals),
    "first": lambda vals: vals[0] if vals else None,
}

_PREDICATES: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda cell, rhs: cell == rhs,
    "!=": lambda cell, rhs: cell != rhs,
    "<": lambda cell, rhs: cell < rhs,
    "<=": lambda cell, rhs: cell <= rhs,
    ">": lambda cell, rhs: cell > rhs,
    ">=": lambda cell, rhs: cell >= rhs,
    "in": lambda cell, rhs: cell in rhs,
    "not-in": lambda cell, rhs: cell not in rhs,
}


class Query:
    """An immutable row selection over a :class:`ResultStore`.

    Every refinement returns a new query; the store is never copied.
    """

    def __init__(self, store: ResultStore, indices: list[int]) -> None:
        self._store = store
        self._indices = indices

    def __len__(self) -> int:
        return len(self._indices)

    def count(self) -> int:
        """Number of selected rows."""
        return len(self._indices)

    def indices(self) -> list[int]:
        """Selected row numbers, in store order."""
        return list(self._indices)

    def where(self, column: str, op: str = "notnull",
              value: Any = None) -> "Query":
        """Keep rows whose ``column`` cell satisfies ``op`` / ``value``.

        Ops: ``== != < <= > >= in not-in isnull notnull``.  Absent
        cells satisfy only ``isnull``; comparisons between incompatible
        types (a string cell vs a numeric rhs) are simply no-matches,
        so a heterogeneous config column never aborts a query.

        Raises:
            StoreError: On an unknown column or operator.
        """
        if op in ("isnull", "notnull"):
            cells = self._store.values(column)
            want_null = op == "isnull"
            keep = [i for i in self._indices
                    if (cells[i] is None) == want_null]
            return Query(self._store, keep)
        predicate = _PREDICATES.get(op)
        if predicate is None:
            raise StoreError(f"unknown query op {op!r}; known: "
                             f"{sorted(_PREDICATES) + ['isnull', 'notnull']}")
        cells = self._store.values(column)
        keep = []
        for i in self._indices:
            cell = cells[i]
            if cell is None:
                continue
            try:
                hit = predicate(cell, value)
            except TypeError:
                hit = False
            if hit:
                keep.append(i)
        return Query(self._store, keep)

    def values(self, column: str) -> list[Any]:
        """Present cell values of ``column`` over the selection, in row
        order (absent cells dropped)."""
        cells = self._store.values(column)
        return [cells[i] for i in self._indices if cells[i] is not None]

    def select(self, *columns: str) -> dict[str, list[Any]]:
        """Aligned columns over the selection (``None`` where absent)."""
        out = {}
        for name in columns:
            cells = self._store.values(name)
            out[name] = [cells[i] for i in self._indices]
        return out

    def records(self) -> list[RunRecord]:
        """The selected rows reassembled into :class:`RunRecord` s."""
        return [self._store.record(i) for i in self._indices]

    def aggregate(self, **outputs: tuple[str, str]) -> dict[str, Any]:
        """Reduce the selection: ``name=("column", "fn")`` per output.

        Raises:
            StoreError: On an unknown aggregate function or column.
        """
        result = {}
        for out_name, (column, fn_name) in outputs.items():
            fn = AGGREGATES.get(fn_name)
            if fn is None:
                raise StoreError(f"unknown aggregate {fn_name!r}; known: "
                                 f"{sorted(AGGREGATES)}")
            result[out_name] = fn(self.values(column))
        return result

    def group_by(self, *keys: str) -> "GroupedQuery":
        """Partition the selection by the values of ``keys``."""
        if not keys:
            raise StoreError("group_by needs at least one key column")
        return GroupedQuery(self, keys)


class GroupedQuery:
    """The result of :meth:`Query.group_by`, awaiting aggregation."""

    def __init__(self, query: Query, keys: Sequence[str]) -> None:
        self._query = query
        self._keys = tuple(keys)
        key_columns = query.select(*self._keys)
        groups: dict[tuple, list[int]] = {}
        for position, row in enumerate(query.indices()):
            key = tuple(key_columns[k][position] for k in self._keys)
            groups.setdefault(key, []).append(row)
        self._groups = groups

    def __len__(self) -> int:
        return len(self._groups)

    def aggregate(self, **outputs: tuple[str, str]) -> list[dict[str, Any]]:
        """One result row per group: key columns plus the aggregates,
        sorted by group key (deterministic across runs and paths)."""
        rows = []
        for key, indices in self._groups.items():
            sub = Query(self._query._store, indices)
            row = dict(zip(self._keys, key))
            row.update(sub.aggregate(**outputs))
            rows.append(row)
        rows.sort(key=lambda row: json.dumps(
            [row[k] for k in self._keys], sort_keys=True, default=str))
        return rows
