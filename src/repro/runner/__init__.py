"""Experiment orchestration: scenarios, runs, campaigns, builders."""

from repro.runner.builders import (
    benign_scenario,
    default_params,
    geometric_grid,
    mobile_byzantine_scenario,
    recovery_scenario,
    recommended_tolerance,
    split_world_scenario,
    standard_strategy_mix,
    two_clique_scenario,
    warmup_for,
)
from repro.runner.campaign import (
    Campaign,
    CampaignResult,
    RunPerf,
    RunRecord,
    execute_run,
    replicate,
    run_config,
    run_configs,
    sweep,
)
from repro.runner.config import load_scenario, scenario_from_config
from repro.runner.stats import (
    ReplicationSummary,
    replicate_measure,
    summarize_replications,
)
from repro.runner.experiment import (
    RunResult,
    run,
    summarize,
)
from repro.runner.scenario import (
    Scenario,
    extremal_clocks,
    perfect_clocks,
    wander_clocks,
)
from repro.runner.vector import run_vector, scalar_only_reason, vector_spec

__all__ = [
    "Scenario",
    "wander_clocks",
    "extremal_clocks",
    "perfect_clocks",
    "run",
    "sweep",
    "replicate",
    "summarize",
    "RunResult",
    "Campaign",
    "CampaignResult",
    "RunRecord",
    "RunPerf",
    "execute_run",
    "default_params",
    "benign_scenario",
    "mobile_byzantine_scenario",
    "recovery_scenario",
    "split_world_scenario",
    "two_clique_scenario",
    "standard_strategy_mix",
    "warmup_for",
    "recommended_tolerance",
    "geometric_grid",
    "load_scenario",
    "scenario_from_config",
    "run_config",
    "run_configs",
    "summarize_replications",
    "replicate_measure",
    "ReplicationSummary",
    "run_vector",
    "vector_spec",
    "scalar_only_reason",
]
