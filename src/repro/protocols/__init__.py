"""Baseline protocols and the protocol registry.

Importing this package registers every protocol, including the paper's
own Sync under the name ``"sync"``.
"""

from typing import TYPE_CHECKING

from repro.core.sync import SyncProcess
from repro.protocols.averaging import AveragingProcess
from repro.protocols.broadcast_based import BroadcastSyncProcess
from repro.protocols.cached_estimation import CachedEstimationProcess
from repro.protocols.base import (
    ProtocolFactory,
    protocol_factory,
    register_protocol,
    registered_protocols,
)
from repro.protocols.drift_compensation import DriftCompensatingProcess
from repro.protocols.driftonly import DriftOnlyProcess
from repro.protocols.interactive_convergence import InteractiveConvergenceProcess
from repro.protocols.minimal_correction import MinimalCorrectionProcess, default_max_step
from repro.protocols.round_based import RoundBasedProcess
from repro.protocols.srikanth_toueg import SrikanthTouegProcess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams
    from repro.runtime.api import NodeRuntime


@register_protocol("sync")
def make_sync(runtime: "NodeRuntime", params: "ProtocolParams",
              start_phase: float) -> SyncProcess:
    """Factory for the paper's Sync protocol."""
    return SyncProcess(runtime, params, start_phase=start_phase)


__all__ = [
    "ProtocolFactory",
    "protocol_factory",
    "register_protocol",
    "registered_protocols",
    "make_sync",
    "SyncProcess",
    "DriftOnlyProcess",
    "DriftCompensatingProcess",
    "CachedEstimationProcess",
    "BroadcastSyncProcess",
    "InteractiveConvergenceProcess",
    "AveragingProcess",
    "MinimalCorrectionProcess",
    "default_max_step",
    "RoundBasedProcess",
    "SrikanthTouegProcess",
]
