"""Protocol factory registry.

Every protocol in this package (and the paper's own
:class:`~repro.core.sync.SyncProcess`) is constructed through a common
factory signature, so scenarios and sweeps can switch protocols by
name.  The registry is the single place benchmarks look protocols up.

Since the runtime seam, a factory takes a
:class:`~repro.runtime.api.NodeRuntime` rather than simulator handles —
the same factory builds processes for the discrete-event engine and for
the real-time asyncio engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams
    from repro.runtime.api import NodeRuntime
    from repro.runtime.process import Process


class ProtocolFactory(Protocol):
    """Builds one node's protocol process.

    Args mirror :class:`~repro.core.sync.SyncProcess`; ``start_phase``
    staggers the first Sync so processors are not round-aligned.
    """

    def __call__(self, runtime: "NodeRuntime", params: "ProtocolParams",
                 start_phase: float) -> "Process": ...


_REGISTRY: dict[str, ProtocolFactory] = {}


def register_protocol(name: str) -> Callable[[ProtocolFactory], ProtocolFactory]:
    """Class/function decorator adding a factory to the registry."""

    def deco(factory: ProtocolFactory) -> ProtocolFactory:
        if name in _REGISTRY:
            raise ConfigurationError(f"protocol {name!r} registered twice")
        _REGISTRY[name] = factory
        return factory

    return deco


def protocol_factory(name: str) -> ProtocolFactory:
    """Look up a registered protocol factory by name.

    Raises:
        ConfigurationError: Listing the known names if absent.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise ConfigurationError(
            f"unknown protocol {name!r}; registered: {known}"
        ) from None


def registered_protocols() -> list[str]:
    """Sorted names of all registered protocols."""
    return sorted(_REGISTRY)
