"""Broadcast-based clock synchronization (Dolev-Halpern-Simons-Strong
[10] style) — the paper's other comparator family.

Section 1.1 contrasts Sync with [10] at length.  [10] is built on
authenticated *broadcast*: processors sign and forward resynchronization
messages, and a message carrying ``f+1`` distinct signatures is
trusted (at least one signer was good).  That design buys a better
resilience threshold — only a **majority** of good processors is needed
(``n >= 2f+1``), vs Sync's two-thirds — but the paper identifies the
operational costs this module makes measurable:

* **fault detection is assumed**: "in that work it is assumed that
  faults are detected.  In practice, faults are often undetected —
  especially malicious faults."  A recovering processor here must
  *know* it recovered to run the join rule; an undetected victim whose
  epoch counter was scrambled waits forever for an epoch that never
  comes (``detection=False`` reproduces this, the default models the
  realistic undetected case).
* **global broadcast flow**: every processor relays every epoch
  message with its signature appended — message complexity per
  resynchronization is ``O(n^2)`` relays carrying ``O(n)``-size
  signature chains, vs Sync's fixed-size point-to-point pings.

Protocol sketch (simplified from [10] to its load-bearing mechanism):

* time is divided into epochs ``k`` with target clock values
  ``k * resync_period``;
* when a processor's clock reaches epoch ``k``'s target it broadcasts
  ``Resync(k)`` signed by itself;
* a received ``Resync(k, signers)`` is *believable* if it carries
  ``f+1`` distinct signatures, or if the receiver's own clock is within
  ``accept_window`` of the epoch target (so the timely majority
  bootstraps the chain);
* on first believing epoch ``k``, a processor sets its clock to the
  epoch target plus the expected one-hop latency, appends its
  signature, rebroadcasts once, and starts waiting for ``k+1``.

Signatures are modelled structurally: only the process bound to a node
(or the adversary controlling it) can extend a chain with that node's
id — i.e. unforgeable signatures, exactly assumption A4's good half.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ParameterError
from repro.protocols.base import register_protocol
from repro.runtime.messages import Message
from repro.runtime.process import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams
    from repro.runtime.api import NodeRuntime


@dataclass(frozen=True)
class Resync:
    """A (chain-)signed resynchronization message.

    Attributes:
        epoch: The epoch number ``k`` being announced.
        signers: Ordered tuple of node ids whose signatures the chain
            carries; structural unforgeability means each entry was
            appended by (whoever controlled) that node.
    """

    epoch: int
    signers: tuple[int, ...]


class BroadcastSyncProcess(Process):
    """A [10]-style broadcast/signature clock synchronizer.

    Args:
        resync_period: Clock time between epochs; defaults to
            ``4 * sync_interval`` (broadcast protocols resync less often
            — each resync floods the network).
        accept_window: How close the own clock must be to an epoch
            target to believe an under-signed announcement; defaults to
            ``way_off``.
        detection: Whether recovery is *detected* — [10]'s assumption.
            When True, a released processor knows it must rejoin and
            accepts the next fully-signed epoch unconditionally.  When
            False (default: the realistic undetected case the paper
            argues for), the victim keeps waiting for its scrambled
            epoch counter.

    Attributes:
        epoch: Next epoch this node expects.
        resyncs_accepted: Count of accepted epochs (diagnostics).
    """

    def __init__(self, runtime: "NodeRuntime", params: "ProtocolParams",
                 start_phase: float = 0.0, resync_period: float | None = None,
                 accept_window: float | None = None,
                 detection: bool = False) -> None:
        super().__init__(runtime)
        self.params = params
        if params.n < 2 * params.f + 1:
            raise ParameterError(
                f"broadcast protocol needs a good majority: n >= 2f+1, "
                f"got n={params.n}, f={params.f}"
            )
        self.resync_period = (4.0 * params.sync_interval if resync_period is None
                              else float(resync_period))
        self.accept_window = (params.way_off if accept_window is None
                              else float(accept_window))
        self.detection = detection
        self.epoch = 1
        self.joining = False
        self.resyncs_accepted = 0
        self.sync_records: list = []   # interface parity with SyncProcess
        self.sync_listeners: list = []
        self._initiated_epochs: set[int] = set()
        # Per epoch, the incoming-chain lengths we have already signed
        # and relayed: one relay per (epoch, length) caps traffic at
        # O(f * n) sends per node per epoch while still letting chains
        # grow past f+1 signatures.
        self._signed_lengths: dict[int, set[int]] = {}

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.detection and self.resyncs_accepted > 0:
            # Detected recovery: [10]'s join rule — forget the epoch
            # counter and trust the next fully-signed announcement.
            self.joining = True
        self._arm_epoch_timer()

    def _arm_epoch_timer(self) -> None:
        epoch = self.epoch
        target_clock = epoch * self.resync_period
        remaining = target_clock - self.local_now()
        # Bind the epoch into the callback: a stale timer armed for an
        # epoch we have since accepted must not initiate the next one
        # early.
        self.set_local_timer(max(0.0, remaining),
                             lambda: self._initiate_epoch(epoch), tag="epoch")

    def _initiate_epoch(self, epoch: int) -> None:
        if epoch != self.epoch or epoch in self._initiated_epochs:
            return
        self._initiated_epochs.add(epoch)
        self.broadcast(Resync(epoch=epoch, signers=(self.node_id,)))
        self._accept(epoch, initiated=True)

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, Resync):
            return
        epoch, signers = payload.epoch, payload.signers
        fully_signed = len(set(signers)) >= self.params.f + 1

        if self.joining and fully_signed:
            # Join rule (requires detection): adopt the announced epoch.
            self.joining = False
            self.epoch = epoch
            self._believe_and_relay(epoch, signers)
            return

        if fully_signed and epoch >= self.epoch:
            # f+1 distinct signatures include a good one: the epoch is
            # real, even if our counter lags (we napped through some
            # epochs).  Counters scrambled *ahead* remain stuck — that
            # is the undetected-fault hazard the paper points at.
            self.epoch = epoch
            self._believe_and_relay(epoch, signers)
            return

        if epoch == self.epoch - 1:
            # Already accepted this epoch (e.g. we initiated it); still
            # contribute our signature so chains reach f+1 for laggards.
            self._relay(epoch, signers)
            return
        if epoch != self.epoch:
            return  # stale, or future without a believable chain
        timely = abs(self.local_now() - epoch * self.resync_period) \
            <= self.accept_window
        if timely:
            self._believe_and_relay(epoch, signers)

    def _believe_and_relay(self, epoch: int, signers: tuple[int, ...]) -> None:
        self._relay(epoch, signers)
        self._accept(epoch)

    def _relay(self, epoch: int, signers: tuple[int, ...]) -> None:
        """Sign and forward a chain we have not contributed to yet.

        Chains longer than ``f+1`` are already believable everywhere, so
        extending them buys nothing; one relay per (epoch, incoming
        length) bounds traffic while letting chains accumulate the
        ``f+1`` distinct signatures laggards need.
        """
        length = len(set(signers))
        if self.node_id in signers or length > self.params.f + 1:
            return
        seen = self._signed_lengths.setdefault(epoch, set())
        if length in seen:
            return
        seen.add(length)
        self.broadcast(Resync(epoch=epoch, signers=signers + (self.node_id,)))

    def _accept(self, epoch: int, initiated: bool = False) -> None:
        if epoch < self.epoch:
            return
        # Set the clock to the epoch target plus expected one-hop latency.
        target = epoch * self.resync_period + (0.0 if initiated
                                               else self.params.delta / 2.0)
        self.set_clock_value(target)
        self.resyncs_accepted += 1
        self.epoch = epoch + 1
        if len(self._initiated_epochs) > 8:
            self._initiated_epochs = {e for e in self._initiated_epochs
                                      if e >= epoch - 2}
        for old in [e for e in self._signed_lengths if e < epoch - 2]:
            del self._signed_lengths[old]
        self._arm_epoch_timer()


@register_protocol("broadcast-detected")
def make_broadcast_detected(runtime: "NodeRuntime", params: "ProtocolParams",
                            start_phase: float) -> BroadcastSyncProcess:
    """[10]-style broadcast sync WITH the fault-detection assumption."""
    return BroadcastSyncProcess(runtime, params,
                                start_phase=start_phase, detection=True)


@register_protocol("broadcast-undetected")
def make_broadcast_undetected(runtime: "NodeRuntime", params: "ProtocolParams",
                              start_phase: float) -> BroadcastSyncProcess:
    """[10]-style broadcast sync in the realistic undetected-fault world."""
    return BroadcastSyncProcess(runtime, params,
                                start_phase=start_phase, detection=False)
