"""Srikanth-Toueg optimal authenticated clock sync ([27]) style.

The second majority-resilient comparator the paper names in Section 5:
"[p]revious clock synchronization protocols assuming authenticated
channels were able to require only a majority of non-faulty processors
[19, 27]. It is interesting to close this gap."

[27]'s mechanism differs from the [10] signature *chains*: acceptance
is driven by counting **independently signed** round messages —

* when a processor's clock reaches ``k * P`` it signs and broadcasts
  ``round k``;
* on collecting ``f+1`` distinct signers for ``round k`` a processor
  *accepts*: it resynchronizes to ``k * P + alpha_latency``, relays its
  own ``round k`` signature if it had not yet, and moves to ``k+1``.

``f+1`` distinct signers guarantee at least one good initiator whose
clock really reached ``k * P``, which gives [27] its optimal accuracy;
a good majority (``n >= 2f+1``) guarantees progress.  Like every
pre-mobile-adversary protocol it has no recovery story: the counters
are internal state that an undetected break-in scrambles permanently
(the same axis bench E12 measures for [10]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ParameterError
from repro.protocols.base import register_protocol
from repro.runtime.messages import Message
from repro.runtime.process import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams
    from repro.runtime.api import NodeRuntime


@dataclass(frozen=True)
class RoundReady:
    """A signed "my clock reached round k" announcement.

    Attributes:
        round_no: The round ``k``.
        signer: The announcing node (structurally authenticated).
    """

    round_no: int
    signer: int


class SrikanthTouegProcess(Process):
    """[27]-style round-broadcast synchronizer.

    Args:
        resync_period: Clock time between rounds; defaults to
            ``4 * sync_interval`` like the [10] baseline, for
            comparability.

    Attributes:
        round_no: The next round this node expects to accept.
        accepts: Count of accepted rounds.
    """

    def __init__(self, runtime: "NodeRuntime", params: "ProtocolParams",
                 start_phase: float = 0.0,
                 resync_period: float | None = None) -> None:
        super().__init__(runtime)
        self.params = params
        if params.n < 2 * params.f + 1:
            raise ParameterError(
                f"Srikanth-Toueg needs a good majority: n >= 2f+1, got "
                f"n={params.n}, f={params.f}")
        self.resync_period = (4.0 * params.sync_interval
                              if resync_period is None else float(resync_period))
        self.round_no = 1
        self.accepts = 0
        self.sync_records: list = []   # interface parity
        self.sync_listeners: list = []
        self._signers_by_round: dict[int, set[int]] = {}
        self._announced: set[int] = set()

    def start(self) -> None:
        """Arm the timer for the next round target (also post-recovery)."""
        self._arm_round_timer()

    def _arm_round_timer(self) -> None:
        round_no = self.round_no
        remaining = round_no * self.resync_period - self.local_now()
        self.set_local_timer(max(0.0, remaining),
                             lambda: self._announce(round_no), tag="round")

    def _announce(self, round_no: int) -> None:
        if round_no != self.round_no or round_no in self._announced:
            return
        self._announced.add(round_no)
        self.broadcast(RoundReady(round_no=round_no, signer=self.node_id))
        self._note_signer(round_no, self.node_id)

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, RoundReady):
            return
        if payload.signer != message.sender:
            return  # forged signature: structurally impossible for goods
        if payload.round_no < self.round_no:
            return
        self._note_signer(payload.round_no, payload.signer)

    def _note_signer(self, round_no: int, signer: int) -> None:
        signers = self._signers_by_round.setdefault(round_no, set())
        signers.add(signer)
        # Accept the current round — or any LATER round that reaches
        # f+1 signers, which is how a processor that napped through
        # rounds catches up (in [27] a correct processor accepts any
        # properly supported round and skips the missed ones).
        if round_no >= self.round_no and len(signers) >= self.params.f + 1:
            self._accept(round_no)

    def _accept(self, round_no: int) -> None:
        # f+1 distinct signers include a good one whose clock truly
        # reached the round target: resync to it (plus expected latency).
        self.set_clock_value(round_no * self.resync_period
                             + self.params.delta / 2.0)
        self.accepts += 1
        # Relay own signature so slower processors reach f+1 too.
        if round_no not in self._announced:
            self._announced.add(round_no)
            self.broadcast(RoundReady(round_no=round_no, signer=self.node_id))
        self.round_no = round_no + 1
        for old in [r for r in self._signers_by_round if r < round_no - 1]:
            del self._signers_by_round[old]
        self._announced = {r for r in self._announced if r >= round_no - 1}
        self._arm_round_timer()


@register_protocol("srikanth-toueg")
def make_srikanth_toueg(runtime: "NodeRuntime", params: "ProtocolParams",
                        start_phase: float) -> SrikanthTouegProcess:
    """Factory for the [27]-style round-broadcast baseline."""
    return SrikanthTouegProcess(runtime, params, start_phase=start_phase)
