"""Interactive convergence baseline (Lamport-Melliar-Smith [19], CNV).

Section 5 notes that "[p]revious clock synchronization protocols
assuming authenticated channels were able to require only a majority of
non-faulty processors [19, 27]" — [19]'s *interactive consistency*
variants do; its simpler interactive *convergence* algorithm (CNV),
implemented here, needs ``n >= 3f+1`` like the paper's protocol and is
the classic point of comparison for convergence-function designs: an
egocentric mean instead of order-statistic selection.

Expected behaviour (and what the tests check): bounded under f-limited
Byzantine faults, but (a) the adversary can bias the mean by
``~f * threshold / n`` per sync — a standing offset lever the paper's
selection rule denies — and (b) recovery of a way-off processor is
averaged-rate, not the WayOff jump.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.convergence import EgocentricMeanConvergence
from repro.core.sync import SyncProcess
from repro.protocols.base import register_protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams
    from repro.runtime.api import NodeRuntime


class InteractiveConvergenceProcess(SyncProcess):
    """Sync machinery with the [19] egocentric-mean convergence."""

    def __init__(self, runtime: "NodeRuntime", params: "ProtocolParams",
                 start_phase: float = 0.0) -> None:
        super().__init__(runtime, params,
                         convergence=EgocentricMeanConvergence(),
                         start_phase=start_phase)


@register_protocol("interactive-convergence")
def make_interactive_convergence(runtime: "NodeRuntime",
                                 params: "ProtocolParams",
                                 start_phase: float) -> InteractiveConvergenceProcess:
    """Factory for the [19] interactive-convergence baseline."""
    return InteractiveConvergenceProcess(runtime, params, start_phase)
