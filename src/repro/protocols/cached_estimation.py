"""Cached (separate-thread) clock estimation — the Section 3.1 caveat.

The paper discusses reducing network load by performing clock probes
"in a different thread which will spread them across a time interval",
and immediately warns: "when implemented this way, we cannot guarantee
the conditions of Definition 4 anymore, since the separate thread may
return an old cached value which was measured before the call to the
clock estimation procedure. (Hence, the analysis in this paper cannot
be applied 'right out of the box' ...)".

This module implements exactly that design so the caveat can be
*measured* (bench A2):

* a probe loop pings one peer every ``probe_interval`` of local time,
  round-robin, refreshing a per-peer cache of ``(d, a, measured_at)``;
* the Sync alarm consumes the cache instantly instead of running a
  fresh parallel estimation;
* per the mobile-adversary note in the paper, the protocol re-arms the
  probe loop on recovery (the adversary may have killed the thread),
  and the cache — like all protocol state — is lost.

Two variants:

* **naive** (``compensate=False``) — uses cached ``d`` as-is.  Wrong
  after the node's own clock was adjusted: ``d`` was measured relative
  to the *old* own clock.  The recovering node's first syncs act on
  garbage until the cache refreshes, delaying recovery by up to a full
  cache-fill period.
* **compensated** (``compensate=True``) — subtracts the own-clock
  adjustment accumulated since each entry was measured and inflates the
  error bound by ``2 * rho * staleness``; this restores a Definition
  4-like guarantee at the cost of wider ``a`` values.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.estimation import ClockEstimate, timeout_estimate
from repro.core.sync import SyncProcess
from repro.protocols.base import register_protocol
from repro.runtime.messages import Message, Ping, Pong

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams
    from repro.runtime.api import NodeRuntime


@dataclass
class _CacheEntry:
    distance: float
    accuracy: float
    measured_local: float
    adj_at_measurement: float


class CachedEstimationProcess(SyncProcess):
    """Sync over a background probe cache instead of fresh estimations.

    Args:
        probe_interval: Local time between background probes (one peer
            per probe, round-robin); defaults to
            ``sync_interval / n`` so the whole cache refreshes about
            once per sync interval.
        max_staleness: Cache entries older than this (local time) are
            treated as timeouts; defaults to ``2 * sync_interval``.
        compensate: Apply the own-adjustment and staleness corrections
            (the "right" way); False reproduces the naive design the
            paper warns about.
    """

    def __init__(self, runtime: "NodeRuntime", params: "ProtocolParams",
                 start_phase: float = 0.0, probe_interval: float | None = None,
                 max_staleness: float | None = None,
                 compensate: bool = False) -> None:
        super().__init__(runtime, params, start_phase=start_phase)
        self.probe_interval = (params.sync_interval / max(1, params.n)
                               if probe_interval is None else float(probe_interval))
        self.max_staleness = (2.0 * params.sync_interval if max_staleness is None
                              else float(max_staleness))
        self.compensate = compensate
        self._cache: dict[int, _CacheEntry] = {}
        self._probe_nonces = itertools.count(1)
        self._pending_probes: dict[int, tuple[int, float, float]] = {}
        self._probe_targets: list[int] = []

    # ------------------------------------------------------------------
    # Probe loop (the "separate thread")
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._cache = {}
        self._pending_probes = {}
        self._probe_targets = []
        super().start()
        self.set_local_timer(self.probe_interval, self._probe_next, tag="probe")

    def _probe_next(self) -> None:
        if not self._probe_targets:
            self._probe_targets = self.neighbors()
        if self._probe_targets:
            peer = self._probe_targets.pop(0)
            nonce = -next(self._probe_nonces)  # negative: never collides
            self._pending_probes[nonce] = (peer, self.local_now(), self.clock.adj)
            self.send(peer, Ping(nonce=nonce))
        self.set_local_timer(self.probe_interval, self._probe_next, tag="probe")

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, Pong) and payload.nonce in self._pending_probes:
            peer, sent_local, adj_at_send = self._pending_probes.pop(payload.nonce)
            if peer != message.sender:
                return
            receive_local = self.local_now()
            round_trip = receive_local - sent_local
            self._cache[peer] = _CacheEntry(
                distance=payload.clock_value - (receive_local + sent_local) / 2.0,
                accuracy=round_trip / 2.0,
                measured_local=receive_local,
                adj_at_measurement=self.clock.adj,
            )
            return
        super().on_message(message)

    # ------------------------------------------------------------------
    # Sync consumes the cache
    # ------------------------------------------------------------------

    def _begin_sync(self) -> None:
        """Replace the parallel estimation round with a cache read."""
        self._round += 1
        self._session = _CacheSession(self)
        self._complete_sync()

    def cached_estimates(self) -> dict[int, ClockEstimate]:
        """Read the probe cache as Definition 4-shaped estimates.

        Entries older than ``max_staleness`` become timeout estimates;
        with ``compensate`` the cached distance is corrected for own
        adjustments since measurement and the error bound inflated by
        ``2 * rho * staleness``.
        """
        now_local = self.local_now()
        estimates: dict[int, ClockEstimate] = {}
        for peer in self.neighbors():
            entry = self._cache.get(peer)
            if entry is None or now_local - entry.measured_local > self.max_staleness:
                estimates[peer] = timeout_estimate(peer)
                continue
            distance, accuracy = entry.distance, entry.accuracy
            if self.compensate:
                # The cached d was relative to the own clock *then*; any
                # adjustment since shifts the true distance by -delta_adj,
                # and drift can have moved both clocks by 2*rho*staleness.
                distance -= (self.clock.adj - entry.adj_at_measurement)
                staleness = now_local - entry.measured_local
                accuracy += 2.0 * self.params.rho * staleness
            estimates[peer] = ClockEstimate(peer=peer, distance=distance,
                                            accuracy=accuracy,
                                            round_trip=2 * entry.accuracy)
        return estimates


class _CacheSession:
    """Duck-typed stand-in for EstimationSession backed by the cache."""

    def __init__(self, owner: CachedEstimationProcess) -> None:
        self._owner = owner

    def finish(self) -> dict[int, ClockEstimate]:
        return self._owner.cached_estimates()

    def on_pong(self, message: Message) -> bool:  # pragma: no cover - unused
        return False

    @property
    def complete(self) -> bool:  # pragma: no cover - unused
        return True


@register_protocol("cached-naive")
def make_cached_naive(runtime: "NodeRuntime", params: "ProtocolParams",
                      start_phase: float) -> CachedEstimationProcess:
    """Factory for the naive cached-estimation variant (the caveat)."""
    return CachedEstimationProcess(runtime, params,
                                   start_phase=start_phase, compensate=False)


@register_protocol("cached-compensated")
def make_cached_compensated(runtime: "NodeRuntime", params: "ProtocolParams",
                            start_phase: float) -> CachedEstimationProcess:
    """Factory for the adjustment/staleness-compensated cached variant."""
    return CachedEstimationProcess(runtime, params,
                                   start_phase=start_phase, compensate=True)
