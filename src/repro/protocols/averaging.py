"""Unprotected averaging (NTP-flavoured) baseline.

Identical machinery to the paper's Sync — same ping/pong estimation,
same schedule — but the convergence function is a plain mean over all
answering peers.  Against benign drift it performs beautifully; a
single Byzantine liar drags the whole cluster, which is exactly the
point of experiment E5.  The paper notes (Section 1) that existing
"secure time" protocols merely authenticate this kind of exchange and
"may not withstand a malicious attack, even if the authentication is
secure" — this baseline is that protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.convergence import MeanConvergence
from repro.core.sync import SyncProcess
from repro.protocols.base import register_protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams
    from repro.runtime.api import NodeRuntime


class AveragingProcess(SyncProcess):
    """Sync machinery with an unprotected mean convergence function."""

    def __init__(self, runtime: "NodeRuntime", params: "ProtocolParams",
                 start_phase: float = 0.0) -> None:
        super().__init__(runtime, params,
                         convergence=MeanConvergence(), start_phase=start_phase)


@register_protocol("averaging")
def make_averaging(runtime: "NodeRuntime", params: "ProtocolParams",
                   start_phase: float) -> AveragingProcess:
    """Factory for the unprotected averaging baseline."""
    return AveragingProcess(runtime, params, start_phase)
