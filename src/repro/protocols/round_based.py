"""Round-based convergence baseline (Welch-Lynch / Cristian-Fetzer style).

Many classical convergence-function protocols proceed in *rounds*: each
processor keeps a logical clock per round, and when asked for a round-i
clock after having already synchronized into round i+1, it answers "as
if it didn't do the last synchronization" (Section 3.3's description).
This baseline implements that discipline on top of the shared ping/pong
machinery:

* Pings carry the requestor's round number.
* A responder ahead of the requestor's round answers with its clock
  minus the corrections it applied after that round (one round of
  lookback, as in [8, 9]).
* The convergence function is the fault-tolerant midpoint.

The paper's criticism is operational: round counters and per-round
clocks are state that "[has] to be recovered from a break-in".  Here,
as in reality, a released processor restarts with a reset round counter
and an empty correction history — so its answers to round-tagged
queries are wrong in exactly the way the paper warns about, and
experiment E5 measures the resulting recovery lag against the
stateless Sync.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.convergence import MidpointConvergence
from repro.core.sync import SyncProcess
from repro.protocols.base import register_protocol
from repro.runtime.messages import Message, Ping, Pong

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams
    from repro.runtime.api import NodeRuntime


class RoundBasedProcess(SyncProcess):
    """Round-disciplined convergence protocol.

    Attributes:
        corrections_by_round: Correction applied at the end of each of
            this node's rounds (lost on break-in, like all round state).
    """

    def __init__(self, runtime: "NodeRuntime", params: "ProtocolParams",
                 start_phase: float = 0.0) -> None:
        super().__init__(runtime, params,
                         convergence=MidpointConvergence(), start_phase=start_phase)
        self.corrections_by_round: dict[int, float] = {}

    def start(self) -> None:
        # Round state does not survive a break-in: the counter and the
        # correction history restart from scratch (the recovery hazard
        # the paper calls out for round-based designs).
        self._round = 0
        self.corrections_by_round = {}
        super().start()

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, Ping):
            value = self.local_now()
            requestor_round = payload.round_no
            if requestor_round < self._round:
                # Answer "as if we hadn't done the last synchronization":
                # undo the corrections applied after the requested round.
                for round_no in range(requestor_round + 1, self._round + 1):
                    value -= self.corrections_by_round.get(round_no, 0.0)
            self.send(message.sender, Pong(nonce=payload.nonce, clock_value=value))
        else:
            super().on_message(message)

    def _complete_sync(self) -> None:
        round_no = self._round
        before = len(self.sync_records)
        super()._complete_sync()
        if len(self.sync_records) > before:
            self.corrections_by_round[round_no] = self.sync_records[-1].correction
            # Bounded lookback: keep only the last few rounds.
            for old in [r for r in self.corrections_by_round if r < round_no - 3]:
                del self.corrections_by_round[old]


@register_protocol("round-based")
def make_round_based(runtime: "NodeRuntime", params: "ProtocolParams",
                     start_phase: float) -> RoundBasedProcess:
    """Factory for the round-based baseline."""
    return RoundBasedProcess(runtime, params, start_phase)
