"""The no-synchronization baseline: clocks free-run on hardware drift.

A :class:`DriftOnlyProcess` answers pings honestly — so it is a valid
time *source* for other protocols under test — but never adjusts its
own clock.  Its deviation grows linearly at the mutual drift rate,
which calibrates every comparison plot's "do nothing" line.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.base import register_protocol
from repro.runtime.messages import Message, Ping, Pong
from repro.runtime.process import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams
    from repro.runtime.api import NodeRuntime


class DriftOnlyProcess(Process):
    """Answers clock queries, never synchronizes."""

    def __init__(self, runtime: "NodeRuntime", params: "ProtocolParams",
                 start_phase: float = 0.0) -> None:
        super().__init__(runtime)
        self.params = params
        self.sync_records: list = []  # uniform interface with SyncProcess
        self.sync_listeners: list = []

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, Ping):
            self.send(message.sender, Pong(nonce=payload.nonce, clock_value=self.local_now()))


@register_protocol("drift-only")
def make_drift_only(runtime: "NodeRuntime", params: "ProtocolParams",
                    start_phase: float) -> DriftOnlyProcess:
    """Factory for the drift-only baseline."""
    return DriftOnlyProcess(runtime, params, start_phase)
