"""Drift-compensating Sync (a Section 5 future-work feature).

Section 5: "practical protocols such as the Network Time Protocol
involve many mechanisms which may provide better results in typical
cases, such as feedback to estimate and compensate for clock drift.
Such improvements may be needed to our protocol (while making sure to
retain security!)."

This extension adds exactly that feedback loop on top of the unmodified
Sync machinery: each processor maintains an estimate of its rate error
relative to the cluster (an EWMA of ``correction / elapsed local time``
over its sync history) and pre-compensates by slewing that rate between
syncs.  Security is retained by construction:

* the compensation rate is **clamped to ``[-2*rho, +2*rho]``** — the
  largest rate error physically possible under eq. (2) — so Byzantine
  peers cannot use the feedback loop to drag a clock faster than
  hardware drift already could;
* the slew is applied through the ordinary ``adj`` mechanism at sync
  time, so every Theorem 5 measurement (discontinuity included) sees it;
* all feedback state is discarded on recovery from a break-in, like any
  other protocol state.

The ablation bench (`bench_a1_ablations.py`) measures the payoff: on
clocks pinned at opposite drift extremes, compensation removes most of
the steady-state deviation that plain Sync re-corrects every round.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.sync import SyncProcess
from repro.protocols.base import register_protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams
    from repro.runtime.api import NodeRuntime


class DriftCompensatingProcess(SyncProcess):
    """Sync plus a clamped rate-error feedback loop.

    Args:
        gain: EWMA gain for the rate-error estimate (0 < gain <= 1).
        comp_limit: Clamp on the compensation rate; defaults to
            ``2 * rho`` (the maximum possible mutual drift rate).

    Attributes:
        comp_rate: Current rate-error estimate (clock units per local
            second); reset on recovery.
    """

    def __init__(self, runtime: "NodeRuntime", params: "ProtocolParams",
                 start_phase: float = 0.0, gain: float = 0.3,
                 comp_limit: float | None = None) -> None:
        super().__init__(runtime, params, start_phase=start_phase)
        if not (0.0 < gain <= 1.0):
            raise ValueError(f"gain must be in (0, 1], got {gain}")
        self.gain = float(gain)
        self.comp_limit = (2.0 * params.rho if comp_limit is None
                           else float(comp_limit))
        self.comp_rate = 0.0
        self._last_sync_local: float | None = None

    def start(self) -> None:
        # Feedback state does not survive a break-in (Section 3.3's
        # rule for all protocol state).
        self.comp_rate = 0.0
        self._last_sync_local = None
        super().start()

    def _complete_sync(self) -> None:
        local_now = self.local_now()
        elapsed = (local_now - self._last_sync_local
                   if self._last_sync_local is not None else 0.0)
        if elapsed > 0.0:
            # Slew: apply the predicted drift correction for the elapsed
            # stretch before measuring, so the measured correction is
            # the *residual* rate error.
            self.adjust_clock(self.comp_rate * elapsed)

        records_before = len(self.sync_records)
        super()._complete_sync()

        if len(self.sync_records) > records_before and elapsed > 0.0:
            residual_rate = self.sync_records[-1].correction / elapsed
            blended = (1.0 - self.gain) * self.comp_rate \
                + self.gain * (self.comp_rate + residual_rate)
            self.comp_rate = max(-self.comp_limit, min(self.comp_limit, blended))
        self._last_sync_local = self.local_now()


@register_protocol("drift-compensating")
def make_drift_compensating(runtime: "NodeRuntime", params: "ProtocolParams",
                            start_phase: float) -> DriftCompensatingProcess:
    """Factory for the drift-compensating Sync extension."""
    return DriftCompensatingProcess(runtime, params, start_phase=start_phase)
