"""Fetzer-Cristian-style minimal-correction baseline ([9]).

The design goal the paper contrasts itself with (Section 1.1): [9]
minimizes the clock change made at each synchronization.  We isolate
that feature by running the paper's own convergence function through a
per-sync correction cap.  Among synchronized processors the cap never
binds (corrections are tiny), so steady-state behaviour matches [9]'s
quality.  But a recovering processor that is ``X`` away needs
``X / max_step`` syncs to crawl back — and when ``max_step`` per sync
is smaller than what the good clocks can drift in a sync interval, it
*never* completes recovery, the failure mode the paper predicts
("with [9] such recovery may never complete").

The default cap mirrors the flavour of [9]'s optimal bound: a small
multiple of the reading error plus the drift accumulated over one sync
interval.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.convergence import ClampedConvergence, PaperConvergence
from repro.core.sync import SyncProcess
from repro.protocols.base import register_protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams
    from repro.runtime.api import NodeRuntime


def default_max_step(params: "ProtocolParams") -> float:
    """The [9]-flavoured cap: ``4*epsilon + 2*rho*SyncInt``.

    Enough to track drift and reading error among synchronized clocks,
    deliberately far too small to re-absorb a way-off recoverer quickly.
    """
    return 4.0 * params.epsilon + 2.0 * params.rho * params.sync_interval


class MinimalCorrectionProcess(SyncProcess):
    """Sync machinery with the per-sync correction magnitude capped.

    Args:
        max_step: Cap on ``|correction|`` per sync; defaults to
            :func:`default_max_step`.
    """

    def __init__(self, runtime: "NodeRuntime", params: "ProtocolParams",
                 start_phase: float = 0.0, max_step: float | None = None) -> None:
        step = default_max_step(params) if max_step is None else float(max_step)
        super().__init__(
            runtime, params,
            convergence=ClampedConvergence(PaperConvergence(), step),
            start_phase=start_phase,
        )
        self.max_step = step


@register_protocol("minimal-correction")
def make_minimal_correction(runtime: "NodeRuntime", params: "ProtocolParams",
                            start_phase: float) -> MinimalCorrectionProcess:
    """Factory for the minimal-correction baseline."""
    return MinimalCorrectionProcess(runtime, params, start_phase)
