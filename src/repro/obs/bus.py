"""The observability event bus: typed, timestamped structured events.

One :class:`EventBus` per run replaces the three parallel ad-hoc hook
mechanisms that grew organically (the network tap, the protocol's
``sync_listeners``, and the adversary's corruption callback) with a
single publish/subscribe fabric.  Components that can emit telemetry
carry an ``obs`` attribute (``None`` by default); the flight recorder
(:mod:`repro.obs.recorder`) sets it to the run's bus.  Publishers guard
every emission with ``if self.obs is not None`` so a run without a
recorder pays one attribute check per potential event — measured to be
within noise by ``benchmarks/bench_obs_overhead.py``.

Events are **advisory and deterministic**: no protocol decision may read
bus state (the paper's no-detection property), and every event field is
a pure function of ``(scenario, seed)`` — wall-clock quantities are
deliberately excluded so two identical-seed runs serialize to
byte-identical JSONL streams (enforced by ``tools/check_determinism.py``).

Event kinds currently emitted:

======================  =============================================
``run.start``           Recorder attached; params/bounds snapshot.
``sync.begin``          A Sync execution started (Figure 1 line 1).
``sync.reply``          Node answered a peer's Ping with its clock.
``est.ping``            Pings to one peer queued and sent.
``est.pong``            A reply accepted (carries the RTT/estimate).
``est.timeout``         A peer never answered before the deadline.
``sync.complete``       Correction applied (Figure 1 lines 6-12).
``adv.break_in``        The mobile adversary seized a node.
``adv.release``         The adversary left a node.
``net.deliver``         A message was delivered (opt-in; voluminous).
``net.drop``            A message was dropped (down link / loss).
``monitor.alert``       An advisory health alert was raised.
``probe.violation``     A live Theorem 5 envelope bound was exceeded.
``engine.run_end``      A ``Simulator.run()`` loop exited.
``metrics.snapshot``    Final metrics registry snapshot.
``run.end``             Recorder finalized; lifetime counters.
======================  =============================================
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


@dataclass(frozen=True)
class ObsEvent:
    """One structured observability event.

    Attributes:
        seq: Monotonically increasing sequence number within the bus
            (total order, breaks timestamp ties deterministically).
        time: Simulated real time (``tau``) of the emission.
        kind: Dotted event type, e.g. ``"sync.complete"``.
        node: The node the event concerns (``None`` for run-global
            events such as ``run.end``).
        data: JSON-compatible payload (floats may be ``inf``/``nan``;
            the serializer encodes those as strings).
    """

    seq: int
    time: float
    kind: str
    node: int | None
    data: dict[str, Any] = field(default_factory=dict)


def _jsonable(value: Any) -> Any:
    """Encode ``inf``/``nan`` floats as strings (JSON has neither)."""
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "nan"
        return "inf" if value > 0 else "-inf"
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def _unjsonable(value: Any) -> Any:
    """Inverse of :func:`_jsonable` for the known sentinel strings."""
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    if value == "nan":
        return math.nan
    if isinstance(value, dict):
        return {key: _unjsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_unjsonable(item) for item in value]
    return value


def event_to_json(event: ObsEvent) -> str:
    """Serialize one event to its canonical (sorted, compact) JSON line."""
    return json.dumps(
        {"seq": event.seq, "t": event.time, "kind": event.kind,
         "node": event.node, "data": _jsonable(event.data)},
        sort_keys=True, separators=(",", ":"))


def event_from_json(line: str) -> ObsEvent:
    """Parse one JSONL line back into an :class:`ObsEvent`."""
    raw = json.loads(line)
    return ObsEvent(seq=raw["seq"], time=raw["t"], kind=raw["kind"],
                    node=raw["node"], data=_unjsonable(raw.get("data", {})))


def events_to_jsonl(events: Iterable[ObsEvent]) -> str:
    """Serialize an event stream to newline-delimited JSON."""
    return "".join(event_to_json(event) + "\n" for event in events)


def read_events_jsonl(path: str | pathlib.Path) -> list[ObsEvent]:
    """Load an event stream previously written as JSONL."""
    events = []
    for line in pathlib.Path(path).read_text().splitlines():
        if line.strip():
            events.append(event_from_json(line))
    return events


class EventBus:
    """Synchronous publish/subscribe fabric for one run's telemetry.

    The bus stamps every event with the simulated time obtained from
    ``clock`` (wired to ``sim.now`` by the recorder) and a per-bus
    sequence number, then hands it to every subscriber in registration
    order.  Subscribers must not publish re-entrantly from within a
    callback *for the same event* they are handling (the recorder's
    probes publish only from sampling hooks, never from dispatch).

    Args:
        clock: Zero-argument callable returning the current simulated
            time; defaults to a constant 0.0 until :meth:`set_clock`.
    """

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._subscribers: list[Callable[[ObsEvent], None]] = []
        self._seq = 0

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Point the bus at a run's time source (``lambda: sim.now``)."""
        self._clock = clock

    def subscribe(self, callback: Callable[[ObsEvent], None]) -> None:
        """Register ``callback`` to receive every published event."""
        self._subscribers.append(callback)

    def publish(self, kind: str, /, node: int | None = None,
                **data: Any) -> ObsEvent:
        """Create, stamp, and dispatch one event; returns it.

        ``kind`` is positional-only so payloads may carry their own
        ``kind`` field (e.g. ``net.deliver``'s payload class name).
        """
        event = ObsEvent(seq=self._seq, time=self._clock(), kind=kind,
                         node=node, data=data)
        self._seq += 1
        for callback in self._subscribers:
            callback(event)
        return event

    @property
    def events_published(self) -> int:
        """Number of events published so far."""
        return self._seq
