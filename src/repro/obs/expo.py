"""Metrics exposition: Prometheus text format and the admin scrape port.

Renders a :meth:`~repro.obs.metricsreg.MetricsRegistry.snapshot` into
the Prometheus text exposition format (version 0.0.4, the format every
scraper speaks) and serves it — together with JSON ``/health`` and
``/stats`` documents — over a deliberately tiny HTTP/1.0 server built
on ``asyncio.start_server``.  No third-party dependency: the server
answers exactly three GET paths and closes the connection, which is all
a Prometheus scrape (or ``repro stats``) needs.

Naming follows the Prometheus conventions: every family is prefixed
(``repro_`` by default), counters gain a ``_total`` suffix, and
per-node series carry a ``node`` label (the run-global series carries
no label).  Histograms emit the canonical triplet — cumulative
``_bucket{le="..."}`` series ending in ``le="+Inf"``, ``_sum`` and
``_count`` — when the histogram was created with bucket bounds, and
just ``_sum``/``_count`` otherwise.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Any, Callable

#: Default metric-family prefix.
PREFIX = "repro_"


def _format_value(value: float) -> str:
    """Prometheus sample value: shortest float repr, inf/nan spelled out."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(value)


def _labels(node: str, extra: str = "") -> str:
    """Render the label block for a snapshot node key (``"_"`` = global)."""
    parts = []
    if node != "_":
        parts.append(f'node="{node}"')
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: dict[str, Any], prefix: str = PREFIX) -> str:
    """Render a registry snapshot as Prometheus text exposition format.

    Args:
        snapshot: A :meth:`MetricsRegistry.snapshot` dict.
        prefix: Family-name prefix (``repro_``).

    Returns:
        The exposition body, one family per ``# TYPE`` block, ending in
        a trailing newline (scrapers require it).
    """
    lines: list[str] = []
    for name, series in snapshot.get("counters", {}).items():
        family = f"{prefix}{name}_total"
        lines.append(f"# TYPE {family} counter")
        for node, value in series.items():
            lines.append(f"{family}{_labels(node)} {_format_value(value)}")
    for name, series in snapshot.get("gauges", {}).items():
        family = f"{prefix}{name}"
        lines.append(f"# TYPE {family} gauge")
        for node, value in series.items():
            lines.append(f"{family}{_labels(node)} {_format_value(value)}")
    for name, series in snapshot.get("histograms", {}).items():
        family = f"{prefix}{name}"
        lines.append(f"# TYPE {family} histogram")
        for node, entry in series.items():
            bounds = entry.get("bucket_bounds")
            if bounds:
                cumulative = 0
                for bound, count in zip(bounds, entry["bucket_counts"]):
                    cumulative += count
                    le = 'le="' + _format_value(float(bound)) + '"'
                    lines.append(f"{family}_bucket{_labels(node, le)}"
                                 f" {cumulative}")
                inf_le = 'le="+Inf"'
                lines.append(f"{family}_bucket{_labels(node, inf_le)}"
                             f" {entry['count']}")
            lines.append(f"{family}_sum{_labels(node)} "
                         f"{_format_value(entry['sum'])}")
            lines.append(f"{family}_count{_labels(node)} {entry['count']}")
    return "\n".join(lines) + "\n"


def metric_families(exposition: str) -> set[str]:
    """The family names present in an exposition body (scrape checking).

    A histogram family contributes its base name plus the ``_bucket`` /
    ``_sum`` / ``_count`` series names, so callers can require either.
    """
    families: set[str] = set()
    for line in exposition.splitlines():
        if line.startswith("# TYPE "):
            families.add(line.split()[2])
        elif line and not line.startswith("#"):
            families.add(line.split("{")[0].split()[0])
    return families


def snapshot_percentile(entry: dict[str, Any], q: float) -> float:
    """:meth:`Histogram.percentile` over a *snapshot* histogram entry.

    Lets a scraper (``repro stats``) estimate latency quantiles from the
    serialized bucket counts without holding the live registry.  Returns
    ``nan`` for an empty or bucket-less entry.
    """
    count = entry.get("count", 0)
    bounds = entry.get("bucket_bounds")
    if not count or not bounds:
        return math.nan
    target = q * count
    low, high = entry.get("min"), entry.get("max")
    cumulative = 0
    for i, bucket_count in enumerate(entry["bucket_counts"]):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= target:
            if i == len(bounds):
                return high
            upper = bounds[i]
            lower = bounds[i - 1] if i > 0 else low
            lower = min(lower, upper)
            estimate = lower + (target - cumulative) / bucket_count * (upper - lower)
            return min(max(estimate, low), high)
        cumulative += bucket_count
    return high


class MetricsHttpServer:
    """Minimal admin HTTP endpoint: ``/metrics``, ``/health``, ``/stats``.

    Args:
        render_metrics: Zero-argument callable returning the Prometheus
            exposition body (``/metrics``).
        health: Callable returning the JSON-able health document
            (``/health``).
        stats: Callable returning the JSON-able stats document
            (``/stats``); defaults to the health callable.

    Attributes:
        address: ``(host, port)`` after :meth:`start`.
        scrapes: Requests answered with a 200, by path.
    """

    def __init__(self, render_metrics: Callable[[], str],
                 health: Callable[[], dict],
                 stats: Callable[[], dict] | None = None) -> None:
        self._render_metrics = render_metrics
        self._health = health
        self._stats = stats if stats is not None else health
        self._server: asyncio.AbstractServer | None = None
        self.address: tuple[str, int] | None = None
        self.scrapes: dict[str, int] = {}

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        """Bind the listening socket; returns the actual ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    def close(self) -> None:
        """Stop listening (idempotent; open scrapes finish on their own)."""
        if self._server is not None:
            self._server.close()
            self._server = None

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await reader.readline()
            parts = request.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else ""
            # Drain the remaining request headers (HTTP/1.0, no body).
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if len(parts) < 2 or parts[0] != "GET":
                body, content_type, status = "bad request\n", "text/plain", 400
            elif path == "/metrics":
                body, content_type, status = (self._render_metrics(),
                                              "text/plain; version=0.0.4", 200)
            elif path == "/health":
                body = json.dumps(self._health(), sort_keys=True) + "\n"
                content_type, status = "application/json", 200
            elif path == "/stats":
                body = json.dumps(self._stats(), sort_keys=True) + "\n"
                content_type, status = "application/json", 200
            else:
                body, content_type, status = "not found\n", "text/plain", 404
            if status == 200:
                self.scrapes[path] = self.scrapes.get(path, 0) + 1
            payload = body.encode("utf-8")
            reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}[status]
            writer.write((f"HTTP/1.0 {status} {reason}\r\n"
                          f"Content-Type: {content_type}\r\n"
                          f"Content-Length: {len(payload)}\r\n"
                          f"Connection: close\r\n\r\n").encode("latin-1"))
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # scraper went away mid-request: nothing to answer
        finally:
            writer.close()
