"""The flight recorder: one object wiring the whole obs stack to a run.

:class:`FlightRecorder` owns the run's :class:`~repro.obs.bus.EventBus`
and, per its :class:`ObsConfig`, a :class:`~repro.obs.spans.SpanTracer`,
a :class:`~repro.obs.metricsreg.MetricsCollector`, and a
:class:`~repro.obs.probes.Theorem5Probe`.  ``attach()`` points every
publisher (engine, network, protocol processes, adversary) at the bus;
the runner calls ``on_sample`` from the clock-sampling grid (probes and
queue-depth sampling piggyback on existing sampling events, so enabling
observability never adds, removes, or reorders simulator events) and
``finalize()`` after the run.

The recorder is strictly **advisory**: it subscribes and publishes but
nothing in :mod:`repro.core`, :mod:`repro.protocols`, or
:mod:`repro.service` ever reads recorder state — the paper's
no-fault-detection property is preserved by construction.

Usage::

    from repro import mobile_byzantine_scenario, run
    from repro.obs import FlightRecorder

    recorder = FlightRecorder()
    result = run(mobile_byzantine_scenario(duration=20.0, seed=1),
                 recorder=recorder)
    recorder.write_jsonl("out.jsonl")          # replayable event stream
    recorder.write_chrome_trace("trace.json")  # about://tracing format
    print(recorder.metrics.snapshot())
    assert not recorder.violations
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.bus import EventBus, ObsEvent, events_to_jsonl
from repro.obs.metricsreg import MetricsCollector, MetricsRegistry
from repro.obs.probes import ProbeViolation, Theorem5Probe
from repro.obs.spans import Span, SpanTracer, write_chrome_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.adversary.mobile import MobileAdversary
    from repro.clocks.logical import LogicalClock
    from repro.core.params import ProtocolParams
    from repro.net.network import Network
    from repro.runtime.process import Process
    from repro.sim.engine import Simulator


@dataclass
class ObsConfig:
    """Which recorder subsystems to enable.

    Attributes:
        spans: Build the Sync/estimation span tree live.
        metrics: Maintain the per-node metrics registry.
        probes: Run the live Theorem 5 envelope probes.
        messages: Publish per-delivery ``net.deliver``/``net.drop``
            events (voluminous; off by default).
        monitors: Attach an advisory
            :class:`~repro.service.monitor.SyncHealthMonitor` per node
            whose alerts are published as ``monitor.alert`` events.
        probe_warmup: Real-time warmup before the probes start checking
            (initial convergence; same convention as the verdict).
    """

    spans: bool = True
    metrics: bool = True
    probes: bool = True
    messages: bool = False
    monitors: bool = False
    probe_warmup: float = 0.0


class FlightRecorder:
    """Unified observability for one simulation run.

    Args:
        config: Subsystem selection; defaults to spans + metrics +
            probes with message events off.

    Attributes:
        config: The active configuration.
        bus: The run's event bus.
        events: Every event published, in order.
        tracer: Span tracer (``None`` when spans are disabled).
        collector: Metrics collector (``None`` when metrics disabled).
        probe: Theorem 5 probe (``None`` until attached or disabled).
    """

    def __init__(self, config: ObsConfig | None = None) -> None:
        self.config = config if config is not None else ObsConfig()
        self.bus = EventBus()
        self.events: list[ObsEvent] = []
        self.bus.subscribe(self.events.append)
        self.tracer: SpanTracer | None = SpanTracer() if self.config.spans else None
        if self.tracer is not None:
            self.bus.subscribe(self.tracer.on_event)
        self.collector: MetricsCollector | None = (
            MetricsCollector() if self.config.metrics else None)
        if self.collector is not None:
            self.bus.subscribe(self.collector.on_event)
        self.probe: Theorem5Probe | None = None
        self._sim: "Simulator | None" = None
        self._monitors: list[Any] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, sim: "Simulator", network: "Network",
               processes: dict[int, "Process"],
               clocks: dict[int, "LogicalClock"],
               params: "ProtocolParams",
               adversary: "MobileAdversary | None" = None) -> None:
        """Point every publisher at the bus and start the probes.

        Called by :func:`repro.runner.experiment.run` before the
        simulation starts; idempotence is not required (one recorder
        serves exactly one run).
        """
        self._sim = sim
        self.bus.set_clock(lambda: sim.now)
        sim.obs = self.bus
        if self.config.messages:
            network.obs = self.bus
        for process in processes.values():
            process.obs = self.bus
        if adversary is not None:
            adversary.obs = self.bus
        if self.config.probes:
            self.probe = Theorem5Probe(params, clocks, bus=self.bus,
                                       warmup=self.config.probe_warmup)
            self.bus.subscribe(self.probe.on_event)
        if self.config.monitors:
            from repro.service.monitor import SyncHealthMonitor

            for node, process in processes.items():
                listeners = getattr(process, "sync_listeners", None)
                if listeners is None:
                    continue
                monitor = SyncHealthMonitor(params, node)
                monitor.obs = self.bus
                listeners.append(monitor.on_sync)
                self._monitors.append(monitor)
        bounds = params.bounds()
        self.bus.publish(
            "run.start",
            n=params.n, f=params.f, delta=params.delta, rho=params.rho,
            pi=params.pi, sync_interval=params.sync_interval,
            max_wait=params.max_wait, way_off=params.way_off,
            max_deviation_bound=bounds.max_deviation,
            logical_drift_bound=bounds.logical_drift,
            discontinuity_bound=bounds.discontinuity,
            probe_warmup=self.config.probe_warmup,
        )

    def on_sample(self, tau: float, index: int) -> None:
        """Clock-sampler hook: drive probes and queue-depth sampling.

        Runs inside existing sampling events, so observability adds no
        events of its own to the simulation schedule.
        """
        if self.collector is not None and self._sim is not None:
            self.collector.sample_queue_depth(self._sim.pending_events)
        if self.probe is not None:
            self.probe.on_sample(tau)

    def finalize(self, sim: "Simulator") -> None:
        """Emit the end-of-run snapshot events (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        if self.collector is not None:
            self.bus.publish("metrics.snapshot",
                             snapshot=self.collector.registry.snapshot())
        perf = sim.perf_counters()
        # Only the deterministic counters: wall time and events/sec
        # would break byte-identical streams across identical-seed runs.
        self.bus.publish(
            "run.end",
            events_processed=perf.events_processed,
            events_pushed=perf.events_pushed,
            events_cancelled=perf.events_cancelled,
            heap_high_water=perf.heap_high_water,
            pending_events=perf.pending_events,
            violations=len(self.violations),
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The metrics registry (empty when metrics are disabled)."""
        if self.collector is None:
            return MetricsRegistry()
        return self.collector.registry

    @property
    def spans(self) -> list[Span]:
        """The span tree (empty when spans are disabled)."""
        return self.tracer.spans if self.tracer is not None else []

    @property
    def violations(self) -> list[ProbeViolation]:
        """Live probe violations (empty when probes are disabled)."""
        return self.probe.violations if self.probe is not None else []

    def events_jsonl(self) -> str:
        """The full event stream as canonical JSONL text."""
        return events_to_jsonl(self.events)

    def write_jsonl(self, path: str | pathlib.Path) -> None:
        """Write the event stream to ``path`` as JSONL."""
        pathlib.Path(path).write_text(self.events_jsonl())

    def write_chrome_trace(self, path: str | pathlib.Path) -> None:
        """Write the span tree to ``path`` in Chrome trace_event format."""
        write_chrome_trace(self.spans, path)
