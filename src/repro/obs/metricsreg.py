"""Per-node metrics registry: counters, gauges, histograms.

A tiny Prometheus-flavoured registry keyed by ``(metric name, node)``
(node ``None`` means run-global).  :class:`MetricsCollector` is the
standard wiring: it subscribes to the run's event bus and maintains the
canonical protocol metrics — corrections applied, WayOff jumps, reply
counts, estimation RTT distribution, timeouts — while the flight
recorder samples queue depth from the engine on the clock-sampling
grid.

All values are pure functions of ``(scenario, seed)`` (no wall-clock
quantities), so snapshots are deterministic and safe to embed in the
JSONL event stream.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.bus import ObsEvent


#: Default log-spaced latency buckets (seconds): four bounds per decade
#: from 10 us to 10 s, sized so one histogram resolves everything from
#: an in-process dispatch (~tens of us) to a badly stalled event loop.
LATENCY_BUCKETS = tuple(
    round(10.0 ** (exponent / 4.0), 12) for exponent in range(-20, 5)
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Histogram:
    """A value distribution: count/sum/min/max plus bucket counts.

    Args:
        buckets: Ascending upper bounds; an implicit ``+inf`` bucket
            catches the tail.  :meth:`latency` builds one with the
            default log-spaced :data:`LATENCY_BUCKETS`.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, buckets: tuple[float, ...] = ()) -> None:
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    @classmethod
    def latency(cls) -> "Histogram":
        """A histogram pre-bucketed for latencies (:data:`LATENCY_BUCKETS`)."""
        return cls(LATENCY_BUCKETS)

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # bisect_left yields the first bound >= value (its bucket under
        # the `value <= bound` convention); len(buckets) is the +inf
        # overflow slot.
        self.bucket_counts[bisect_left(self.buckets, value)] += 1

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from buckets.

        Standard bucketed estimation with linear interpolation inside
        the containing bucket, sharpened by the tracked extremes: the
        first populated bucket interpolates up from the observed ``min``
        rather than the bucket's lower bound, and a quantile landing in
        the ``+inf`` overflow bucket reports the observed ``max`` (there
        is no upper bound to interpolate toward).  The estimate is
        clamped to ``[min, max]``; an empty histogram returns ``nan``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                if i == len(self.buckets):
                    return self.max
                upper = self.buckets[i]
                lower = self.buckets[i - 1] if i > 0 else self.min
                lower = min(lower, upper)
                fraction = (target - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - cumulative always reaches count


class MetricsRegistry:
    """Get-or-create registry of named per-node metrics.

    Counters, gauges, and histograms live in separate namespaces, so a
    family name identifies one metric type within its section of the
    snapshot.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, int | None], Counter] = {}
        self._gauges: dict[tuple[str, int | None], Gauge] = {}
        self._histograms: dict[tuple[str, int | None], Histogram] = {}

    def counter(self, name: str, node: int | None = None) -> Counter:
        """The counter ``name`` for ``node`` (created on first use)."""
        key = (name, node)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, node: int | None = None) -> Gauge:
        """The gauge ``name`` for ``node`` (created on first use)."""
        key = (name, node)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, node: int | None = None,
                  buckets: tuple[float, ...] = ()) -> Histogram:
        """The histogram ``name`` for ``node`` (created on first use)."""
        key = (name, node)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(buckets)
        return metric

    def latency_histogram(self, name: str, node: int | None = None) -> Histogram:
        """The histogram ``name`` with the default log-spaced latency
        buckets (created on first use)."""
        return self.histogram(name, node, LATENCY_BUCKETS)

    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Export every metric as a nested JSON-compatible dict.

        Shape: ``{"counters": {name: {node: value}}, "gauges": ...,
        "histograms": {name: {node: {count, sum, min, max, mean}}}}``
        with node keys stringified (``"_"`` for the global series).
        """

        def node_key(node: int | None) -> str:
            return "_" if node is None else str(node)

        counters: dict[str, dict[str, float]] = {}
        for (name, node), metric in sorted(self._counters.items(),
                                           key=lambda kv: (kv[0][0], str(kv[0][1]))):
            counters.setdefault(name, {})[node_key(node)] = metric.value
        gauges: dict[str, dict[str, float]] = {}
        for (name, node), metric in sorted(self._gauges.items(),
                                           key=lambda kv: (kv[0][0], str(kv[0][1]))):
            gauges.setdefault(name, {})[node_key(node)] = metric.value
        histograms: dict[str, dict[str, Any]] = {}
        for (name, node), metric in sorted(self._histograms.items(),
                                           key=lambda kv: (kv[0][0], str(kv[0][1]))):
            entry = {
                "count": metric.count,
                "sum": metric.total,
                "min": metric.min if metric.count else None,
                "max": metric.max if metric.count else None,
                "mean": metric.mean,
            }
            if metric.buckets:
                # Per-bucket (non-cumulative) counts; the last slot is
                # the +inf overflow bucket.  Exposition formats that
                # want cumulative counts derive them from these.
                entry["bucket_bounds"] = list(metric.buckets)
                entry["bucket_counts"] = list(metric.bucket_counts)
            histograms.setdefault(name, {})[node_key(node)] = entry
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def delta(self, previous: dict[str, Any]) -> dict[str, Any]:
        """Counter increments since ``previous`` (a prior snapshot).

        Gauges and histograms are point-in-time / cumulative and are
        returned as-is from the current snapshot.
        """
        current = self.snapshot()
        prior = previous.get("counters", {})
        deltas: dict[str, dict[str, float]] = {}
        for name, series in current["counters"].items():
            deltas[name] = {
                node: value - prior.get(name, {}).get(node, 0.0)
                for node, value in series.items()
            }
        return {"counters": deltas, "gauges": current["gauges"],
                "histograms": current["histograms"]}


#: Default RTT histogram buckets (seconds): sub-millisecond to 100 ms.
RTT_BUCKETS = (0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1)


class MetricsCollector:
    """Standard bus subscriber maintaining the canonical protocol metrics.

    Per-node series: ``syncs_completed``, ``corrections_applied``,
    ``correction_abs`` (histogram), ``wayoff_jumps``, ``replies``
    (histogram of replies per sync), ``replies_sent``,
    ``estimation_rtt`` (histogram), ``estimation_timeouts``,
    ``corruptions``.  Global series: ``probe_violations``,
    ``monitor_alerts``, ``messages_delivered``, ``messages_dropped``,
    ``queue_depth`` (gauge + histogram, fed by the recorder's sampling
    hook from :class:`~repro.sim.engine.EnginePerfCounters` state).
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def on_event(self, event: "ObsEvent") -> None:
        """Bus-subscriber entry point: fold one event into the registry."""
        kind = event.kind
        reg = self.registry
        node = event.node
        if kind == "sync.complete":
            data = event.data
            reg.counter("syncs_completed", node).inc()
            correction = data.get("correction", 0.0)
            if correction:
                reg.counter("corrections_applied", node).inc()
            reg.histogram("correction_abs", node).observe(abs(correction))
            if data.get("own_discarded"):
                reg.counter("wayoff_jumps", node).inc()
            reg.histogram("replies", node).observe(data.get("replies", 0))
        elif kind == "est.pong":
            reg.histogram("estimation_rtt", node, RTT_BUCKETS).observe(
                event.data.get("rtt", 0.0))
        elif kind == "est.timeout":
            reg.counter("estimation_timeouts", node).inc()
        elif kind == "sync.reply":
            reg.counter("replies_sent", node).inc()
        elif kind == "adv.break_in":
            reg.counter("corruptions", node).inc()
        elif kind == "probe.violation":
            reg.counter("probe_violations").inc()
        elif kind == "monitor.alert":
            reg.counter("monitor_alerts").inc()
        elif kind == "net.deliver":
            reg.counter("messages_delivered").inc()
        elif kind == "net.drop":
            reg.counter("messages_dropped").inc()

    def sample_queue_depth(self, depth: int) -> None:
        """Record the engine's live event-queue depth (sampling hook)."""
        self.registry.gauge("queue_depth").set(depth)
        self.registry.histogram("queue_depth_dist").observe(depth)
