"""Observability: event bus, span tracing, metrics, live envelope probes.

The flight-recorder layer of the reproduction: a single typed event bus
that the engine, network, protocol, adversary, and health monitor
publish into, with span tracing (Sync executions and their per-peer
estimations), a per-node metrics registry, and live Theorem 5 envelope
probes that flag a violated bound the moment it happens instead of at
verdict time.

Everything here is advisory and deterministic: no protocol decision
reads observability state (the paper's no-detection property), and the
serialized event stream is byte-identical across identical-seed runs.
See ``DESIGN.md`` ("Observability") for the contract.
"""

from repro.obs.bus import (
    EventBus,
    ObsEvent,
    event_from_json,
    event_to_json,
    events_to_jsonl,
    read_events_jsonl,
)
from repro.obs.expo import (
    MetricsHttpServer,
    metric_families,
    render_prometheus,
    snapshot_percentile,
)
from repro.obs.live import ClusterIntrospection, LiveTelemetry, merged_latency
from repro.obs.metricsreg import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
)
from repro.obs.probes import ProbeViolation, Theorem5Probe, violations_from_events
from repro.obs.recorder import FlightRecorder, ObsConfig
from repro.obs.spans import Span, SpanTracer, chrome_trace, write_chrome_trace
from repro.obs.summary import TraceSummary, render_summary, summarize_events

__all__ = [
    "EventBus",
    "ObsEvent",
    "event_to_json",
    "event_from_json",
    "events_to_jsonl",
    "read_events_jsonl",
    "Span",
    "SpanTracer",
    "chrome_trace",
    "write_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "MetricsCollector",
    "LiveTelemetry",
    "ClusterIntrospection",
    "merged_latency",
    "MetricsHttpServer",
    "render_prometheus",
    "metric_families",
    "snapshot_percentile",
    "Theorem5Probe",
    "ProbeViolation",
    "violations_from_events",
    "FlightRecorder",
    "ObsConfig",
    "TraceSummary",
    "summarize_events",
    "render_summary",
]
