"""Offline analysis of a recorded JSONL event stream (``repro trace``).

Reconstructs the span tree and metrics registry by replaying a stream
written with :meth:`~repro.obs.recorder.FlightRecorder.write_jsonl`,
then renders the flight-recorder report: run header, per-kind event
counts, per-node phase/time breakdown (time attributed to Sync
executions and to estimation waiting), the top-N slowest estimations,
the per-node metrics table, and any live envelope-probe violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.metrics.report import table
from repro.obs.bus import ObsEvent
from repro.obs.metricsreg import MetricsCollector
from repro.obs.probes import ProbeViolation, violations_from_events
from repro.obs.spans import Span, SpanTracer


@dataclass
class TraceSummary:
    """Everything ``repro trace`` derives from one event stream.

    Attributes:
        events: The replayed events.
        tracer: Span tracer rebuilt from the stream.
        collector: Metrics collector rebuilt from the stream.
        violations: Probe violations found in the stream.
        run_start: The ``run.start`` event (``None`` if absent).
        run_end: The ``run.end`` event (``None`` if absent).
    """

    events: list[ObsEvent]
    tracer: SpanTracer = field(default_factory=SpanTracer)
    collector: MetricsCollector = field(default_factory=MetricsCollector)
    violations: list[ProbeViolation] = field(default_factory=list)
    run_start: ObsEvent | None = None
    run_end: ObsEvent | None = None


def summarize_events(events: Sequence[ObsEvent]) -> TraceSummary:
    """Replay a stream into spans, metrics, and violations."""
    summary = TraceSummary(events=list(events))
    for event in events:
        summary.tracer.on_event(event)
        summary.collector.on_event(event)
        if event.kind == "run.start":
            summary.run_start = event
        elif event.kind == "run.end":
            summary.run_end = event
    summary.violations = violations_from_events(events)
    return summary


def kind_counts(events: Sequence[ObsEvent]) -> dict[str, int]:
    """Event counts grouped by kind, sorted by kind name."""
    counts: dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return dict(sorted(counts.items()))


def phase_breakdown(tracer: SpanTracer, horizon: float) -> list[list]:
    """Per-node rows: syncs, time in sync spans, estimation outcomes.

    ``horizon`` is the observed stream length, used to express sync
    time as a share of the run ("the node spent 4.2% of the run inside
    Sync executions, the rest free-running").
    """
    per_node: dict[int, dict[str, float]] = {}
    for span in tracer.sync_spans():
        if span.end is None:
            continue
        acc = per_node.setdefault(span.node, {
            "syncs": 0, "sync_time": 0.0, "max_span": 0.0})
        acc["syncs"] += 1
        acc["sync_time"] += span.duration
        acc["max_span"] = max(acc["max_span"], span.duration)
    est_ok: dict[int, int] = {}
    est_timeout: dict[int, int] = {}
    for span in tracer.estimate_spans():
        if span.status == "timeout":
            est_timeout[span.node] = est_timeout.get(span.node, 0) + 1
        elif span.status == "ok":
            est_ok[span.node] = est_ok.get(span.node, 0) + 1
    rows = []
    for node in sorted(per_node):
        acc = per_node[node]
        share = acc["sync_time"] / horizon if horizon > 0 else 0.0
        rows.append([node, int(acc["syncs"]), acc["sync_time"], share,
                     acc["max_span"], est_ok.get(node, 0),
                     est_timeout.get(node, 0)])
    return rows


def slowest_estimation_rows(tracer: SpanTracer, top: int = 10) -> list[list]:
    """Rows for the top-N slowest estimation spans."""
    rows = []
    for span in tracer.slowest_estimates(top):
        rows.append([span.span_id, span.node, span.attrs.get("peer"),
                     span.attrs.get("round"), span.duration, span.status])
    return rows


def metrics_rows(collector: MetricsCollector) -> list[list]:
    """Per-node rows of the headline counters and RTT statistics."""
    snapshot = collector.registry.snapshot()
    counters = snapshot["counters"]
    histograms = snapshot["histograms"]
    nodes: set[str] = set()
    for series in counters.values():
        nodes.update(series)
    for series in histograms.values():
        nodes.update(series)
    rows = []
    for node in sorted((n for n in nodes if n != "_"), key=int):
        rtt = histograms.get("estimation_rtt", {}).get(node, {})
        rows.append([
            int(node),
            int(counters.get("syncs_completed", {}).get(node, 0)),
            int(counters.get("corrections_applied", {}).get(node, 0)),
            int(counters.get("wayoff_jumps", {}).get(node, 0)),
            int(counters.get("replies_sent", {}).get(node, 0)),
            int(counters.get("estimation_timeouts", {}).get(node, 0)),
            rtt.get("mean", 0.0),
            rtt.get("max") if rtt.get("max") is not None else 0.0,
        ])
    return rows


def render_summary(summary: TraceSummary, top: int = 10) -> str:
    """Render the full flight-recorder report as printable text."""
    events = summary.events
    out: list[str] = []
    if not events:
        return "empty event stream"
    first, last = events[0].time, events[-1].time
    horizon = last - first
    header = [f"events={len(events)} span=[{first:.3f}s, {last:.3f}s]"]
    if summary.run_start is not None:
        data = summary.run_start.data
        header.append(f"n={data.get('n')} f={data.get('f')} "
                      f"pi={data.get('pi')} "
                      f"deviation_bound={data.get('max_deviation_bound'):.4g}")
    out.append("  ".join(header))
    out.append("")
    out.append(table(
        ["event kind", "count"],
        [[kind, count] for kind, count in kind_counts(events).items()],
        title="Event stream", precision=0,
    ))
    phase_rows = phase_breakdown(summary.tracer, horizon)
    if phase_rows:
        out.append("")
        out.append(table(
            ["node", "syncs", "sync_time_s", "sync_share", "max_span_s",
             "est_ok", "est_timeout"],
            phase_rows,
            title="Phase breakdown (time inside Sync executions)",
            precision=4,
        ))
    slow_rows = slowest_estimation_rows(summary.tracer, top)
    if slow_rows:
        out.append("")
        out.append(table(
            ["span", "node", "peer", "round", "duration_s", "status"],
            slow_rows,
            title=f"Top {len(slow_rows)} slowest estimations",
            precision=5,
        ))
    metric_rows = metrics_rows(summary.collector)
    if metric_rows:
        out.append("")
        out.append(table(
            ["node", "syncs", "corrections", "wayoff", "replies_sent",
             "est_timeouts", "rtt_mean_s", "rtt_max_s"],
            metric_rows,
            title="Per-node metrics", precision=5,
        ))
    out.append("")
    if summary.violations:
        out.append(table(
            ["time_s", "probe", "node", "measured", "bound"],
            [[v.time, v.probe, "-" if v.node is None else v.node,
              v.measured, v.bound] for v in summary.violations],
            title=f"ENVELOPE VIOLATIONS ({len(summary.violations)})",
            precision=6,
        ))
    else:
        out.append("envelope probes: 0 violations")
    return "\n".join(out)
