"""Live Theorem 5 envelope probes: invariant checking *during* the run.

The post-hoc verdict (:func:`repro.core.analysis.theorem5_verdict`)
only reports violations after the run ends.  :class:`Theorem5Probe`
performs the same measured-vs-bound comparison online, on the clock
sampling grid, and publishes a ``probe.violation`` event the moment a
bound is first exceeded — turning "the run failed" from a verdict-time
surprise into a timestamped flight-recorder event.

Three probes, mirroring the theorem's clauses:

* **deviation** — max pairwise difference of good-set logical clocks
  against the Theorem 5(i) bound ``16e + 18pT + 4C``;
* **drift** — each good node's bias must stay inside the Appendix A
  :class:`~repro.core.envelope.Envelope` anchored at its previous
  sample (slope ``rho~``), widened by the discontinuity allowance per
  correction applied in the step (eq. (3) per sampling step);
* **discontinuity** — each correction applied while good must not
  exceed the Theorem 5(ii) ``alpha`` bound.

The good set is tracked online from ``adv.break_in`` / ``adv.release``
events with Definition 3 semantics (non-faulty throughout
``[tau - PI, tau]``), so the probe never peeks at the adversary's
future plan.  Probes are advisory: they read clocks and bus events,
publish events, and decide nothing — the protocol cannot observe them.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.envelope import Envelope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.clocks.logical import LogicalClock
    from repro.core.params import ProtocolParams
    from repro.obs.bus import EventBus, ObsEvent


@dataclass(frozen=True)
class ProbeViolation:
    """One live bound violation.

    Attributes:
        probe: ``"deviation"``, ``"drift"``, or ``"discontinuity"``.
        time: Real time of the violating sample.
        node: The offending node (``None`` for the pairwise deviation
            probe, which concerns the whole good set).
        measured: The measured quantity.
        bound: The Theorem 5 bound it exceeded.
    """

    probe: str
    time: float
    node: int | None
    measured: float
    bound: float


class Theorem5Probe:
    """Online checker of the Theorem 5 accuracy/agreement envelopes.

    Wire :meth:`on_event` as a bus subscriber (corruption tracking) and
    :meth:`on_sample` into the clock sampler's hook.  Violations are
    edge-triggered per probe kind: the deviation probe re-arms once the
    deviation drops back under the bound, the per-node probes fire on
    every violating step (each step is a fresh envelope).

    Args:
        params: Protocol parameterization (bounds, ``PI``).
        clocks: Logical clocks by node (read-only access).
        bus: Event bus to publish ``probe.violation`` events into.
        warmup: Skip checks before this real time (initial convergence,
            same convention as the post-hoc verdict).
        slack: Absolute tolerance added to every bound before flagging.

    Attributes:
        violations: Every violation observed, in order.
    """

    def __init__(self, params: "ProtocolParams", clocks: dict[int, "LogicalClock"],
                 bus: "EventBus | None" = None, warmup: float = 0.0,
                 slack: float = 1e-9) -> None:
        bounds = params.bounds()
        self.params = params
        self.clocks = clocks
        self.bus = bus
        self.warmup = float(warmup)
        self.slack = float(slack)
        self.deviation_bound = bounds.max_deviation
        self.drift_bound = bounds.logical_drift
        self.discontinuity_bound = bounds.discontinuity
        self.violations: list[ProbeViolation] = []
        self._controlled: set[int] = set()
        self._last_release: dict[int, float] = {}
        # Incremental good set: membership changes only at break-ins
        # (immediate removal) and at `release + PI` elapsing (re-entry),
        # so on_sample maintains it with a heap of pending re-entries
        # instead of re-deriving Definition 3 per node per sample.
        self._good: set[int] = set(clocks)
        self._pending: list[tuple[float, int]] = []
        self._deviation_violating = False
        # Per-node (tau, bias, len(adjustments)) at the previous sample
        # where the node was good; None while not good.
        self._prev: dict[int, tuple[float, float, int] | None] = {
            node: None for node in clocks
        }

    # ------------------------------------------------------------------
    # Corruption tracking (bus subscriber)
    # ------------------------------------------------------------------

    def on_event(self, event: "ObsEvent") -> None:
        """Track the faulty set from adversary events."""
        if event.kind == "adv.break_in":
            self._controlled.add(event.node)
            self._good.discard(event.node)
            self._prev[event.node] = None
        elif event.kind == "adv.release":
            self._controlled.discard(event.node)
            self._last_release[event.node] = event.time
            heapq.heappush(self._pending, (event.time, event.node))

    def good_set(self, tau: float) -> set[int]:
        """Definition 3's good set at ``tau``, from observed events only.

        A node is good iff it is not currently controlled and its last
        release (if any) precedes ``tau - PI`` strictly — matching the
        closed-interval window convention of
        :func:`repro.metrics.sampler.good_set`.
        """
        pi = self.params.pi
        good = set()
        for node in self.clocks:
            if node in self._controlled:
                continue
            release = self._last_release.get(node)
            if release is not None and release >= tau - pi:
                continue
            good.add(node)
        return good

    def _advance_good(self, tau: float) -> set[int]:
        """The incremental good set at ``tau`` (``tau`` non-decreasing).

        Pops matured releases (``release < tau - PI``) off the pending
        heap and re-admits their nodes; a stale entry (the node was
        re-released or is controlled again) is detected and dropped.
        Matches :meth:`good_set` exactly for the sampler's
        non-decreasing grid.
        """
        pending = self._pending
        cutoff = tau - self.params.pi
        while pending and pending[0][0] < cutoff:
            release, node = heapq.heappop(pending)
            if self._last_release.get(node) == release and node not in self._controlled:
                self._good.add(node)
        return self._good

    def on_sample(self, tau: float) -> None:
        """Run every probe against the clocks at sample time ``tau``."""
        good = self._advance_good(tau)
        biases = {node: self.clocks[node].read(tau) - tau for node in good}
        if tau >= self.warmup:
            self._check_deviation(tau, biases)
            self._check_accuracy(tau, biases)
        # Update per-node state for the next step (also during warmup,
        # so the first post-warmup step has an anchor).
        for node in self.clocks:
            if node in good:
                self._prev[node] = (tau, biases[node],
                                    len(self.clocks[node].adjustments))
            else:
                self._prev[node] = None

    def _emit(self, probe: str, tau: float, node: int | None,
              measured: float, bound: float) -> None:
        violation = ProbeViolation(probe=probe, time=tau, node=node,
                                   measured=measured, bound=bound)
        self.violations.append(violation)
        if self.bus is not None:
            self.bus.publish("probe.violation", node=node, probe=probe,
                             measured=measured, bound=bound)

    def _check_deviation(self, tau: float, biases: dict[int, float]) -> None:
        """Theorem 5(i): pairwise good-set deviation vs its bound."""
        if len(biases) < 2:
            self._deviation_violating = False
            return
        deviation = max(biases.values()) - min(biases.values())
        if deviation > self.deviation_bound + self.slack:
            if not self._deviation_violating:
                self._emit("deviation", tau, None, deviation, self.deviation_bound)
            self._deviation_violating = True
        else:
            self._deviation_violating = False

    def _check_accuracy(self, tau: float, biases: dict[int, float]) -> None:
        """Theorem 5(ii): per-node drift envelope and discontinuity."""
        for node, bias in biases.items():
            prev = self._prev.get(node)
            if prev is None:
                continue
            prev_tau, prev_bias, prev_adj = prev
            if tau <= prev_tau:
                continue
            adjustments = self.clocks[node].adjustments
            new_adj = adjustments[prev_adj:]
            for adj_tau, delta, _ in new_adj:
                if abs(delta) > self.discontinuity_bound + self.slack:
                    self._emit("discontinuity", tau, node, abs(delta),
                               self.discontinuity_bound)
            allowance = self.discontinuity_bound * len(new_adj)
            envelope = Envelope(prev_tau, prev_bias, prev_bias,
                                self.drift_bound)
            if allowance > 0.0:
                envelope = envelope.widened(allowance)
            if not envelope.contains(tau, bias, slack=self.slack):
                measured = envelope.distance_outside(tau, bias)
                self._emit("drift", tau, node, measured, 0.0)

    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True while no probe has fired."""
        return not self.violations

    def first_violation(self) -> ProbeViolation | None:
        """The earliest violation, or ``None`` when the run is clean."""
        return self.violations[0] if self.violations else None


def violations_from_events(events) -> list[ProbeViolation]:
    """Rebuild :class:`ProbeViolation` records from a recorded stream."""
    out = []
    for event in events:
        if event.kind == "probe.violation":
            out.append(ProbeViolation(
                probe=event.data.get("probe", "?"), time=event.time,
                node=event.node, measured=event.data.get("measured", math.nan),
                bound=event.data.get("bound", math.nan)))
    return out
