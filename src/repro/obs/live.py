"""Live telemetry plane: the PR 2 flight-recorder stack on a real cluster.

:class:`LiveTelemetry` is the wall-clock sibling of
:class:`~repro.obs.recorder.FlightRecorder`.  It owns the same
subsystems — event capture, :class:`~repro.obs.spans.SpanTracer`,
:class:`~repro.obs.metricsreg.MetricsCollector`,
:class:`~repro.obs.probes.Theorem5Probe` — selected by the same
:class:`~repro.obs.recorder.ObsConfig`, and publishes the same
``run.start`` / ``metrics.snapshot`` / ``run.end`` schema, so a JSONL
stream captured from a live cluster replays through ``repro trace``
exactly like a simulator trace.  What differs is the substrate: instead
of a :class:`~repro.sim.engine.Simulator` it attaches to a (duck-typed)
:class:`~repro.rt.live.LiveCluster`, rides its telemetry sampler
instead of the clock-sampling grid, and folds the transports' bare-int
drop counters into the registry on each sample (a *pull*, so the
datagram hot path stays untouched — the attribute-guard overhead
contract of PR 2 extends to the live path).

:class:`ClusterIntrospection` is the read side: the ``stats`` /
``health`` documents served by the admin endpoints
(:class:`~repro.service.query.TimeQueryServer` query kinds and the
Prometheus scrape port — :mod:`repro.obs.expo`).  It works with or
without telemetry attached; without it the metrics section is absent
but spread-vs-bound health still answers.

This module never imports :mod:`repro.rt` at runtime (the rt layer
imports obs, not vice versa); the cluster is duck-typed on the handful
of attributes it actually reads.
"""

from __future__ import annotations

import pathlib
from typing import TYPE_CHECKING, Any

from repro.obs.bus import EventBus, ObsEvent, events_to_jsonl
from repro.obs.metricsreg import MetricsCollector, MetricsRegistry
from repro.obs.probes import ProbeViolation, Theorem5Probe
from repro.obs.recorder import ObsConfig
from repro.obs.spans import SpanTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams


#: Transport counter attributes pulled into the registry, in metric
#: name order: ``(registry counter name, transport attribute)``.
TRANSPORT_COUNTERS = (
    ("transport_sent", "messages_sent"),
    ("transport_delivered", "messages_delivered"),
    ("transport_malformed_dropped", "malformed_dropped"),
    ("transport_misrouted_dropped", "misrouted_dropped"),
    ("transport_version_dropped", "version_dropped"),
)

#: Query-server counter attributes pulled into the registry.
QUERY_COUNTERS = (
    ("queries_answered", "queries_answered"),
    ("queries_failed", "queries_failed"),
    ("queries_malformed", "malformed_dropped"),
)

#: The query-latency histogram family (log-spaced latency buckets),
#: populated by :class:`~repro.service.query.TimeQueryServer`.
QUERY_LATENCY_METRIC = "query_latency_seconds"


def _pull_counters(registry: MetricsRegistry, source: Any, node: int | None,
                   table: tuple[tuple[str, str], ...]) -> None:
    """Mirror an object's bare-int counters into registry counters.

    The source objects (transports, query servers) increment plain
    ints on their hot paths; mirroring happens only on the sampling
    grid, so the counters stay current to within one sample interval at
    zero per-datagram cost.  Missing attributes are skipped (loopback
    has no drop counters).
    """
    for name, attr in table:
        value = getattr(source, attr, None)
        if value is not None:
            registry.counter(name, node).value = float(value)


class LiveTelemetry:
    """Unified observability for one live cluster.

    Args:
        params: Protocol parameterization (bounds for the probe and the
            ``run.start`` header).
        clocks: The cluster's logical clocks by node (read-only).
        bus: The cluster's event bus.
        config: Subsystem selection; defaults to spans + metrics +
            probes, like the simulator recorder.

    Attributes:
        config: The active configuration.
        bus: The cluster's event bus.
        events: Every event published, in order (the JSONL stream).
        tracer: Span tracer (``None`` when spans are disabled).
        collector: Metrics collector (``None`` when metrics disabled).
        probe: Wall-clock Theorem 5 probe (``None`` when disabled).
    """

    def __init__(self, params: "ProtocolParams", clocks: dict[int, Any],
                 bus: EventBus, config: ObsConfig | None = None) -> None:
        self.params = params
        self.config = config if config is not None else ObsConfig()
        self.bus = bus
        self.events: list[ObsEvent] = []
        bus.subscribe(self.events.append)
        self.tracer: SpanTracer | None = (SpanTracer() if self.config.spans
                                          else None)
        if self.tracer is not None:
            bus.subscribe(self.tracer.on_event)
        self.collector: MetricsCollector | None = (
            MetricsCollector() if self.config.metrics else None)
        if self.collector is not None:
            bus.subscribe(self.collector.on_event)
        self.probe: Theorem5Probe | None = None
        if self.config.probes:
            self.probe = Theorem5Probe(params, clocks, bus=bus,
                                       warmup=self.config.probe_warmup)
            bus.subscribe(self.probe.on_event)
        self._cluster: Any = None
        self._finalized = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, cluster: Any) -> None:
        """Point the cluster's processes at the bus; emit ``run.start``.

        ``cluster`` is duck-typed (needs ``processes``, ``transports``,
        ``query_servers``, ``spread``); called by ``build_cluster`` when
        telemetry is enabled.
        """
        self._cluster = cluster
        for process in cluster.processes.values():
            process.obs = self.bus
        params = self.params
        bounds = params.bounds()
        self.bus.publish(
            "run.start",
            n=params.n, f=params.f, delta=params.delta, rho=params.rho,
            pi=params.pi, sync_interval=params.sync_interval,
            max_wait=params.max_wait, way_off=params.way_off,
            max_deviation_bound=bounds.max_deviation,
            logical_drift_bound=bounds.logical_drift,
            discontinuity_bound=bounds.discontinuity,
            probe_warmup=self.config.probe_warmup,
        )

    def on_sample(self, tau: float, spread: float | None = None) -> None:
        """Sampler hook: drive the probe and refresh pulled counters."""
        if self.probe is not None:
            self.probe.on_sample(tau)
        if self.collector is not None:
            registry = self.collector.registry
            if spread is not None:
                registry.gauge("cluster_spread").set(spread)
                registry.gauge("cluster_spread_bound").set(
                    self.params.bounds().max_deviation)
            self.pull_counters()

    def pull_counters(self) -> None:
        """Fold transport / query-server bare-int counters into the
        registry (idempotent: counters are *set*, not incremented)."""
        if self.collector is None or self._cluster is None:
            return
        registry = self.collector.registry
        seen: set[int] = set()
        for node, transport in self._cluster.transports.items():
            if id(transport) in seen:
                continue  # loopback: one shared hub for every node
            seen.add(id(transport))
            owner = getattr(transport, "node_id", None)
            _pull_counters(registry, transport,
                           node if owner is not None else None,
                           TRANSPORT_COUNTERS)
        for node, server in self._cluster.query_servers.items():
            _pull_counters(registry, server, node, QUERY_COUNTERS)

    def finalize(self) -> None:
        """Emit the end-of-run snapshot events (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        self.pull_counters()
        if self.collector is not None:
            self.bus.publish("metrics.snapshot",
                             snapshot=self.collector.registry.snapshot())
        self.bus.publish("run.end", violations=len(self.violations))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The metrics registry (empty when metrics are disabled)."""
        if self.collector is None:
            return MetricsRegistry()
        return self.collector.registry

    @property
    def violations(self) -> list[ProbeViolation]:
        """Wall-clock probe violations (empty when probes disabled)."""
        return self.probe.violations if self.probe is not None else []

    def events_jsonl(self) -> str:
        """The captured event stream as canonical JSONL text."""
        return events_to_jsonl(self.events)

    def write_jsonl(self, path: str | pathlib.Path) -> None:
        """Write the event stream to ``path`` as JSONL (``repro trace``
        replays it like a simulator stream)."""
        pathlib.Path(path).write_text(self.events_jsonl())


def merged_latency(snapshot: dict[str, Any],
                   name: str = QUERY_LATENCY_METRIC) -> dict[str, Any] | None:
    """Merge a snapshot histogram family across nodes into one entry.

    All per-node query-latency histograms share the same bucket bounds,
    so their bucket counts add; the merged entry feeds the cluster-wide
    p50/p99 in :meth:`ClusterIntrospection.health`.  Returns ``None``
    when the family is absent or empty.
    """
    series = snapshot.get("histograms", {}).get(name, {})
    merged: dict[str, Any] | None = None
    for entry in series.values():
        if not entry.get("count") or not entry.get("bucket_bounds"):
            continue
        if merged is None:
            merged = {
                "count": 0, "sum": 0.0, "min": entry["min"],
                "max": entry["max"],
                "bucket_bounds": list(entry["bucket_bounds"]),
                "bucket_counts": [0] * len(entry["bucket_counts"]),
            }
        merged["count"] += entry["count"]
        merged["sum"] += entry["sum"]
        merged["min"] = min(merged["min"], entry["min"])
        merged["max"] = max(merged["max"], entry["max"])
        for i, count in enumerate(entry["bucket_counts"]):
            merged["bucket_counts"][i] += count
    return merged


class ClusterIntrospection:
    """Read-only stats/health view over a running (duck-typed) cluster.

    The single source behind every admin surface: the ``stats`` /
    ``health`` query kinds of
    :class:`~repro.service.query.TimeQueryServer`, the scrape port's
    ``/stats`` and ``/health`` documents, and ``repro stats``.

    Args:
        cluster: Duck-typed live cluster (``params``, ``spread``,
            ``processes``, ``transports``, ``query_servers``, ``now``).
        telemetry: The cluster's :class:`LiveTelemetry`, or ``None``
            for an uninstrumented cluster (health still answers from
            the sampler's spread series; the metrics section is empty).
    """

    def __init__(self, cluster: Any,
                 telemetry: LiveTelemetry | None = None) -> None:
        self.cluster = cluster
        self.telemetry = telemetry

    @property
    def registry(self) -> MetricsRegistry | None:
        """The live registry, or ``None`` without metrics telemetry."""
        if self.telemetry is None or self.telemetry.collector is None:
            return None
        return self.telemetry.collector.registry

    def metrics_snapshot(self) -> dict[str, Any]:
        """Current registry snapshot (fresh counter pull first)."""
        if self.telemetry is not None:
            self.telemetry.pull_counters()
        registry = self.registry
        return registry.snapshot() if registry is not None else {
            "counters": {}, "gauges": {}, "histograms": {}}

    def transport_counters(self) -> dict[str, dict[str, int]]:
        """Per-node transport counters straight off the transports.

        Keys are stringified node ids (``"_"`` for a shared loopback
        hub), mirroring the registry snapshot convention.
        """
        out: dict[str, dict[str, int]] = {}
        seen: set[int] = set()
        for node, transport in self.cluster.transports.items():
            if id(transport) in seen:
                continue
            seen.add(id(transport))
            owner = getattr(transport, "node_id", None)
            key = "_" if owner is None else str(node)
            counters = {}
            for name, attr in TRANSPORT_COUNTERS:
                value = getattr(transport, attr, None)
                if value is not None:
                    counters[name] = int(value)
            out[key] = counters
        return out

    def query_counters(self) -> dict[str, dict[str, int]]:
        """Per-node query-server counters (empty when not serving)."""
        return {
            str(node): {name: int(getattr(server, attr))
                        for name, attr in QUERY_COUNTERS}
            for node, server in self.cluster.query_servers.items()
        }

    def health(self) -> dict[str, Any]:
        """The operator's one-look document: is Theorem 5 holding?

        ``bounded`` is true iff the sampler has produced spread samples
        and every one stayed under the Theorem 5(i) deviation bound —
        the same criterion as ``LiveReport.bounded()``, answered while
        the cluster runs.
        """
        cluster = self.cluster
        bound = cluster.params.bounds().max_deviation
        spreads = [s for _, s in cluster.spread]
        telemetry = self.telemetry
        doc: dict[str, Any] = {
            "tau": cluster.now(),
            "nodes": cluster.params.n,
            "f": cluster.params.f,
            "bound": bound,
            "samples": len(spreads),
            "spread": spreads[-1] if spreads else None,
            "max_spread": max(spreads) if spreads else None,
            "bounded": bool(spreads) and all(s <= bound for s in spreads),
            "rounds": {str(node): proc.rounds_completed
                       for node, proc in cluster.processes.items()},
            "telemetry": telemetry is not None,
            "violations": (len(telemetry.violations)
                           if telemetry is not None else None),
        }
        entry = merged_latency(self.metrics_snapshot())
        if entry is not None:
            from repro.obs.expo import snapshot_percentile

            doc["query_p50"] = snapshot_percentile(entry, 0.50)
            doc["query_p99"] = snapshot_percentile(entry, 0.99)
        else:
            doc["query_p50"] = None
            doc["query_p99"] = None
        return doc

    def stats(self) -> dict[str, Any]:
        """The full introspection document: health + raw counters +
        metrics snapshot."""
        return {
            "health": self.health(),
            "transport": self.transport_counters(),
            "queries": self.query_counters(),
            "metrics": self.metrics_snapshot(),
        }
