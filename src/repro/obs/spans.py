"""Span tracing: Sync executions as a tree of timed spans.

Each Sync execution (Figure 1) becomes one ``sync`` span; each per-peer
clock estimation inside it becomes a child ``estimate`` span covering
queued → ping-sent → pong-received (or timeout).  The tracer builds the
tree incrementally from bus events, so it works both live (subscribed
to the run's :class:`~repro.obs.bus.EventBus`) and offline (replaying a
JSONL stream loaded with :func:`~repro.obs.bus.read_events_jsonl`).

Spans export to Chrome's ``trace_event`` JSON format
(:func:`chrome_trace`), loadable in ``about://tracing`` / Perfetto with
one track ("thread") per node.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.bus import ObsEvent


@dataclass
class Span:
    """One timed operation, possibly nested under a parent span.

    Attributes:
        span_id: Unique id, e.g. ``"n3:r7"`` (sync) or ``"n3:r7:p5"``
            (estimation of peer 5).
        name: Operation name (``"sync"`` or ``"estimate"``).
        node: The node performing the operation.
        start: Real time the span opened.
        end: Real time it closed (``None`` while still open).
        parent_id: Enclosing span's id (``None`` for roots).
        status: ``"ok"``, ``"timeout"``, or ``"open"``.
        attrs: Extra attributes (round, peer, correction, RTT, ...).
    """

    span_id: str
    name: str
    node: int
    start: float
    end: float | None = None
    parent_id: str | None = None
    status: str = "open"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in real time (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0


class SpanTracer:
    """Builds the span tree from the observability event stream.

    Feed events via :meth:`on_event` (usable directly as a bus
    subscriber).  Completed and still-open spans are available on
    :attr:`spans` in open order.

    Attributes:
        spans: Every span seen so far, in open order.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._open_syncs: dict[int, Span] = {}           # node -> sync span
        self._open_estimates: dict[tuple[int, int], Span] = {}  # (node, peer)

    # ------------------------------------------------------------------

    def on_event(self, event: "ObsEvent") -> None:
        """Bus-subscriber entry point: fold one event into the tree."""
        kind = event.kind
        if kind == "sync.begin":
            self._begin_sync(event)
        elif kind == "est.ping":
            self._begin_estimate(event)
        elif kind == "est.pong":
            self._end_estimate(event, status="ok")
        elif kind == "est.timeout":
            self._end_estimate(event, status="timeout")
        elif kind == "sync.complete":
            self._end_sync(event)

    def _begin_sync(self, event: "ObsEvent") -> None:
        node = event.node
        span = Span(
            span_id=f"n{node}:r{event.data['round']}",
            name="sync", node=node, start=event.time,
            attrs={"round": event.data["round"]},
        )
        self._open_syncs[node] = span
        self.spans.append(span)

    def _begin_estimate(self, event: "ObsEvent") -> None:
        node, peer = event.node, event.data["peer"]
        parent = self._open_syncs.get(node)
        span = Span(
            span_id=f"n{node}:r{event.data['round']}:p{peer}",
            name="estimate", node=node, start=event.time,
            parent_id=parent.span_id if parent is not None else None,
            attrs={"round": event.data["round"], "peer": peer},
        )
        self._open_estimates[(node, peer)] = span
        self.spans.append(span)

    def _end_estimate(self, event: "ObsEvent", status: str) -> None:
        span = self._open_estimates.get((event.node, event.data["peer"]))
        if span is None or span.end is not None:
            return  # duplicate pong after the winning one; keep the first
        if status == "ok":
            span.attrs.update(rtt=event.data.get("rtt"),
                              distance=event.data.get("distance"))
        span.end = event.time
        span.status = status
        if status == "ok":
            del self._open_estimates[(event.node, event.data["peer"])]

    def _end_sync(self, event: "ObsEvent") -> None:
        node = event.node
        span = self._open_syncs.pop(node, None)
        if span is None:
            return
        span.end = event.time
        span.status = "ok"
        span.attrs.update(
            correction=event.data.get("correction"),
            replies=event.data.get("replies"),
            own_discarded=event.data.get("own_discarded"),
        )
        # Any estimate of this node still open timed out at the deadline.
        for key in [k for k in self._open_estimates if k[0] == node]:
            child = self._open_estimates.pop(key)
            if child.end is None:
                child.end = event.time
                child.status = "timeout"

    # ------------------------------------------------------------------

    def replay(self, events: Iterable["ObsEvent"]) -> "SpanTracer":
        """Fold a whole event stream (offline reconstruction); returns self."""
        for event in events:
            self.on_event(event)
        return self

    def sync_spans(self) -> list[Span]:
        """All ``sync`` spans, in open order."""
        return [s for s in self.spans if s.name == "sync"]

    def estimate_spans(self) -> list[Span]:
        """All ``estimate`` child spans, in open order."""
        return [s for s in self.spans if s.name == "estimate"]

    def slowest_estimates(self, top: int = 10) -> list[Span]:
        """The ``top`` longest closed estimation spans, slowest first."""
        closed = [s for s in self.estimate_spans() if s.end is not None]
        closed.sort(key=lambda s: (-s.duration, s.span_id))
        return closed[:top]


def chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """Render spans as a Chrome ``trace_event`` document.

    One complete-duration (``"ph": "X"``) event per closed span, with
    the node as the thread id, so ``about://tracing`` / Perfetto shows
    one swim-lane per node.  Times are microseconds of simulated time.
    """
    trace_events = []
    for span in spans:
        if span.end is None:
            continue
        trace_events.append({
            "name": f"{span.name}" + (f" p{span.attrs['peer']}"
                                      if "peer" in span.attrs else ""),
            "cat": span.name,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": max(span.end - span.start, 0.0) * 1e6,
            "pid": 0,
            "tid": span.node,
            "args": {key: value for key, value in span.attrs.items()
                     if value is not None} | {"status": span.status},
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], path) -> None:
    """Serialize :func:`chrome_trace` output to ``path`` as JSON."""
    import pathlib

    document = chrome_trace(spans)
    pathlib.Path(path).write_text(json.dumps(document, sort_keys=True))
