"""Command-line interface: run scenarios and print the verdict.

Usage (installed as ``python -m repro``)::

    python -m repro run --scenario mobile-byzantine --duration 20 --seed 1
    python -m repro run --scenario recovery --protocol minimal-correction
    python -m repro bounds --n 7 --f 2 --delta 0.005 --rho 5e-4 --pi 4
    python -m repro list

Subcommands:

* ``run`` — execute a canonical scenario and print the Theorem 5
  verdict and recovery report; ``--trace out.jsonl`` additionally
  records the run with a flight recorder and writes the observability
  event stream.
* ``trace`` — summarize a recorded event stream: span tree statistics,
  per-node metrics, and any live envelope-probe violations.
* ``bounds`` — evaluate the Theorem 5 formulas for a parameter choice
  without running anything (the deployment-planning calculator).
* ``sweep`` — run a campaign of JSON configs through the unified
  executor: ``--workers N`` fans out over a process pool (results
  byte-identical to serial), ``--cache-dir`` caches records by content
  hash so re-invocations and interrupted campaigns re-execute only the
  missing runs (``--fresh`` ignores the cache), and ``--backend
  vector`` swaps in the vectorized batch engine (byte-identical
  records, automatic scalar fallback outside its envelope).
  ``--store DIR`` appends the results to a columnar
  :class:`~repro.runner.store.ResultStore` for later querying and
  evaluation.
* ``evaluate`` — judge a campaign's result store against registered
  :class:`~repro.runner.evaluation.EvaluationSpec` s and print a
  pass/fail report per spec; exits non-zero when any applicable spec
  fails (``--list`` shows the registry).
* ``soak`` — long randomized stress run (random f-limited plans,
  seeds advancing per segment) with per-segment invariant checks;
  exits non-zero on the first violated guarantee.
* ``live`` — deploy the same Sync protocol on real asyncio nodes
  (localhost UDP by default, ``--processes`` for one OS process per
  node) for a wall-clock duration, streaming live deviation telemetry
  through the observability bus; exits non-zero unless every sampled
  cluster spread stays under the Theorem 5 bound.  With ``--serve``
  every node additionally answers client time queries on UDP port
  ``--serve-base-port + node``; ``--telemetry`` attaches the live
  telemetry plane (metrics registry + wall-clock Theorem 5 probe) and
  ``--metrics-port`` serves it as Prometheus text exposition plus JSON
  ``/health`` and ``/stats``.
* ``query`` — client side of ``live --serve``: issue ``now`` /
  ``validate`` / ``epoch`` queries against a serving node and print
  QPS and latency percentiles; exits non-zero on any failed query.
  ``--stats`` / ``--health`` instead fetch the node's introspection
  documents over the same UDP protocol.
* ``stats`` — scrape a running cluster's ``--metrics-port`` HTTP
  endpoint and print the health table (spread vs the Theorem 5 bound,
  per-node transport drop counters, query latency percentiles); exits
  non-zero unless the cluster is bounded and every ``--require`` metric
  family is present.
* ``list`` — show the available scenarios and protocols.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.params import ProtocolParams
from repro.metrics.report import check_mark, table
from repro.protocols import registered_protocols
from repro.runner.builders import (
    benign_scenario,
    default_params,
    mobile_byzantine_scenario,
    recovery_scenario,
    split_world_scenario,
    warmup_for,
)
from repro.runner.experiment import run as run_scenario

SCENARIOS = {
    "benign": benign_scenario,
    "mobile-byzantine": mobile_byzantine_scenario,
    "recovery": recovery_scenario,
    "split-world": split_world_scenario,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clock synchronization with faults and recoveries "
                    "(Barak-Halevi-Herzberg-Naor, PODC 2000) — simulator CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a scenario and print the verdict")
    run_p.add_argument("--config", default=None,
                       help="JSON scenario config file (overrides the other "
                            "run options)")
    run_p.add_argument("--json", dest="json_out", default=None,
                       help="write the full result record to this JSON file")
    run_p.add_argument("--trace", dest="trace_out", default=None,
                       help="record the run with a flight recorder and write "
                            "the observability event stream to this JSONL "
                            "file (summarize it with `repro trace`)")
    run_p.add_argument("--scenario", choices=sorted(SCENARIOS), default="mobile-byzantine")
    run_p.add_argument("--protocol", default="sync",
                       help="protocol name (see `repro list`)")
    run_p.add_argument("--duration", type=float, default=20.0,
                       help="simulated seconds")
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--n", type=int, default=7)
    run_p.add_argument("--f", type=int, default=2)
    run_p.add_argument("--delta", type=float, default=0.005,
                       help="message delivery bound (s)")
    run_p.add_argument("--rho", type=float, default=5e-4, help="drift bound")
    run_p.add_argument("--pi", type=float, default=2.0,
                       help="adversary time period PI (s)")
    run_p.add_argument("--stream", action="store_true",
                       help="compute measures online during the run "
                            "(no clock trace kept; same verdict, "
                            "byte-identical measures)")

    bounds_p = sub.add_parser("bounds", help="evaluate Theorem 5 bounds only")
    for flag, kind, default in (("--n", int, 7), ("--f", int, 2),
                                ("--delta", float, 0.005),
                                ("--rho", float, 5e-4), ("--pi", float, 2.0)):
        bounds_p.add_argument(flag, type=kind, default=default)
    bounds_p.add_argument("--target-k", type=int, default=10)

    trace_p = sub.add_parser("trace", help="summarize a recorded event stream")
    trace_p.add_argument("path", help="JSONL event stream written by "
                                      "`repro run --trace`")
    trace_p.add_argument("--top", type=int, default=10,
                         help="rows in the slowest-estimations table")
    trace_p.add_argument("--chrome", default=None,
                         help="additionally write the span tree to this file "
                              "in Chrome trace_event format (about://tracing)")

    sweep_p = sub.add_parser("sweep", help="run a campaign of JSON configs "
                                           "(parallel, cached, resumable)")
    sweep_p.add_argument("configs", nargs="+",
                         help="JSON config files; each holds one config "
                              "object or a list of them")
    sweep_p.add_argument("--workers", type=int, default=None,
                         help="process count (default: serial in-process)")
    sweep_p.add_argument("--cache-dir", default=None,
                         help="content-addressed result cache; repeated or "
                              "interrupted campaigns re-execute only missing "
                              "runs")
    sweep_p.add_argument("--fresh", action="store_true",
                         help="ignore existing cache entries (results are "
                              "still written back)")
    sweep_p.add_argument("--resume", action="store_true",
                         help="resume an interrupted campaign from --cache-dir "
                              "(the default behavior; flag kept for explicit "
                              "intent)")
    sweep_p.add_argument("--warmup-intervals", type=float, default=3.0,
                         help="warmup applied to measures, in analysis "
                              "intervals T")
    sweep_p.add_argument("--stream", action="store_true",
                         help="workers accumulate measures online instead "
                              "of keeping full clock traces (records are "
                              "byte-identical; part of the cache identity)")
    sweep_p.add_argument("--backend", choices=["scalar", "vector"],
                         default="scalar",
                         help="simulation backend: the scalar reference "
                              "engine or the vectorized batch engine "
                              "(byte-identical records, automatic scalar "
                              "fallback outside the vector envelope; part "
                              "of the cache identity)")
    sweep_p.add_argument("--json", dest="json_out", default=None,
                         help="write records and campaign summary to this "
                              "JSON file")
    sweep_p.add_argument("--store", dest="store_dir", default=None,
                         help="append results to the columnar ResultStore at "
                              "this directory (the `repro evaluate` input)")

    evaluate_p = sub.add_parser(
        "evaluate", help="judge a campaign's result store against "
                         "registered evaluation specs")
    evaluate_p.add_argument("store_dir", nargs="?", default=None,
                            help="a ResultStore directory (written by "
                                 "`repro sweep --store` or Campaign(store_dir=…))")
    evaluate_p.add_argument("--spec", action="append", default=None,
                            help="spec name to evaluate (repeatable; default: "
                                 "every registered spec, skipping the "
                                 "inapplicable ones)")
    evaluate_p.add_argument("--json", dest="json_out", default=None,
                            help="additionally write the reports to this "
                                 "JSON file")
    evaluate_p.add_argument("--list", action="store_true", dest="list_specs",
                            help="list registered specs and exit")

    soak_p = sub.add_parser("soak", help="randomized long-run invariant check")
    soak_p.add_argument("--segments", type=int, default=10,
                        help="number of independent run segments")
    soak_p.add_argument("--segment-duration", type=float, default=20.0,
                        help="simulated seconds per segment")
    soak_p.add_argument("--seed", type=int, default=0)
    soak_p.add_argument("--n", type=int, default=7)
    soak_p.add_argument("--f", type=int, default=2)

    live_p = sub.add_parser("live", help="run Sync in real time on asyncio "
                                         "nodes (localhost UDP)")
    live_p.add_argument("--nodes", type=int, default=4)
    live_p.add_argument("--f", type=int, default=1)
    live_p.add_argument("--duration", type=float, default=2.0,
                        help="wall-clock seconds to run")
    live_p.add_argument("--delta", type=float, default=0.02,
                        help="assumed delivery bound (s); keep well above "
                             "real localhost latency")
    live_p.add_argument("--rho", type=float, default=1e-4)
    live_p.add_argument("--pi", type=float, default=2.0)
    live_p.add_argument("--transport", choices=("udp", "loopback"),
                        default="udp")
    live_p.add_argument("--sample-interval", type=float, default=0.1,
                        help="telemetry sampling period (s)")
    live_p.add_argument("--seed", type=int, default=0,
                        help="seed for the per-node clock models "
                             "(rates and initial offsets)")
    live_p.add_argument("--trace", dest="trace_out", default=None,
                        help="write the live.* observability event stream "
                             "to this JSONL file")
    live_p.add_argument("--processes", action="store_true",
                        help="one OS process per node (UDP on fixed ports) "
                             "instead of n runtimes in one process")
    live_p.add_argument("--base-port", type=int, default=19200,
                        help="first UDP port for --processes mode")
    live_p.add_argument("--node-index", type=int, default=None,
                        help=argparse.SUPPRESS)  # child mode, spawned by --processes
    live_p.add_argument("--epoch", type=float, default=None,
                        help=argparse.SUPPRESS)  # shared monotonic epoch for children
    live_p.add_argument("--serve", action="store_true",
                        help="answer client time queries during the run "
                             "(one UDP endpoint per node)")
    live_p.add_argument("--serve-base-port", type=int, default=19300,
                        help="query port of node 0; node i serves on "
                             "base+i (0 = ephemeral ports)")
    live_p.add_argument("--telemetry", action="store_true",
                        help="attach the live telemetry plane (metrics "
                             "registry, span tracer, wall-clock Theorem 5 "
                             "probe); implied by --metrics-port and --trace")
    live_p.add_argument("--metrics-port", type=int, default=None,
                        help="serve Prometheus /metrics plus JSON /health "
                             "and /stats on this HTTP port while the "
                             "cluster runs (0 = ephemeral; implies "
                             "--telemetry)")
    live_p.add_argument("--json", dest="json_out", default=None,
                        help="write the full live report (incl. transport "
                             "drop counters) to this JSON file, '-' for "
                             "stdout")

    query_p = sub.add_parser("query", help="query a node served by "
                                           "`repro live --serve`")
    query_p.add_argument("--host", default="127.0.0.1")
    query_p.add_argument("--port", type=int, default=19300,
                         help="query port of the target node")
    query_p.add_argument("--count", type=int, default=10,
                         help="number of queries to issue")
    query_p.add_argument("--op", choices=("now", "validate", "epoch", "mixed"),
                         default="mixed",
                         help="operation to issue (mixed cycles all three)")
    query_p.add_argument("--max-age", type=float, default=1.0,
                         help="freshness window for validate queries (s)")
    query_p.add_argument("--epoch-length", type=float, default=10.0,
                         help="epoch length for epoch queries (s)")
    query_p.add_argument("--timeout", type=float, default=2.0,
                         help="per-query reply timeout (s)")
    query_p.add_argument("--stats", action="store_true",
                         help="fetch the node's introspection stats "
                              "document instead of issuing time queries")
    query_p.add_argument("--health", action="store_true",
                         help="fetch the node's live Theorem 5 health "
                              "document instead of issuing time queries")
    query_p.add_argument("--json", dest="json_out", default=None,
                         help="write the query/stats result to this JSON "
                              "file, '-' for stdout")

    stats_p = sub.add_parser("stats", help="scrape a running cluster's "
                                           "metrics endpoint and print a "
                                           "health table")
    stats_p.add_argument("--host", default="127.0.0.1")
    stats_p.add_argument("--port", type=int, required=True,
                         help="the cluster's --metrics-port")
    stats_p.add_argument("--timeout", type=float, default=5.0,
                         help="HTTP timeout per request (s)")
    stats_p.add_argument("--require", default=None,
                         help="comma-separated metric families that must be "
                              "present in the Prometheus exposition "
                              "(exit nonzero otherwise)")
    stats_p.add_argument("--json", dest="json_out", default=None,
                         help="write the scraped stats document to this "
                              "JSON file, '-' for stdout")

    sub.add_parser("list", help="list scenarios and protocols")
    return parser


def cmd_run(args: argparse.Namespace) -> int:
    """Run one scenario and print the Theorem 5 verdict."""
    if args.config is not None:
        from repro.runner.config import load_scenario
        scenario = load_scenario(args.config)
        params = scenario.params
    else:
        params = default_params(n=args.n, f=args.f, delta=args.delta,
                                rho=args.rho, pi=args.pi)
        scenario = SCENARIOS[args.scenario](params, duration=args.duration,
                                            seed=args.seed,
                                            protocol=args.protocol)
    recorder = None
    if args.trace_out is not None:
        from repro.obs import FlightRecorder
        recorder = FlightRecorder()
    result = run_scenario(scenario, recorder=recorder,
                          stream_measures=args.stream)
    verdict = result.verdict(warmup=warmup_for(params))
    recovery = result.recovery()
    print(f"scenario={scenario.name} protocol={scenario.protocol} "
          f"n={params.n} f={params.f} duration={scenario.duration}s "
          f"seed={scenario.seed}")
    print(f"events={result.events_processed} messages={result.messages_delivered} "
          f"corruptions={len(result.corruptions)}")
    if result.perf is not None:
        perf = result.perf
        print(f"perf: {perf.events_per_second:,.0f} events/s "
              f"(wall {perf.run_wall_time:.3f}s, heap high-water "
              f"{perf.heap_high_water}, cancelled {perf.cancelled_ratio:.1%})")
    print()
    print(table(
        ["guarantee", "measured", "bound", "holds"],
        [
            ["max deviation", verdict.measured_deviation,
             verdict.bounds.max_deviation, check_mark(verdict.deviation_ok)],
            ["logical drift", verdict.measured_drift,
             verdict.bounds.logical_drift, check_mark(verdict.drift_ok)],
            ["discontinuity", verdict.measured_discontinuity,
             verdict.bounds.discontinuity, check_mark(verdict.discontinuity_ok)],
        ],
        title="Theorem 5 verdict", precision=4,
    ))
    if recovery.events:
        print(f"\nrecoveries: {len(recovery.events)}, all recovered: "
              f"{recovery.all_recovered}, worst: {recovery.max_recovery_time:.3f}s")
    if recorder is not None:
        recorder.write_jsonl(args.trace_out)
        print(f"\n{len(recorder.events)} observability events "
              f"({len(recorder.spans)} spans, "
              f"{len(recorder.violations)} envelope violations) "
              f"written to {args.trace_out}")
    if args.json_out is not None:
        from repro.metrics.export import write_result
        write_result(result, args.json_out, warmup=warmup_for(params))
        print(f"\nresult record written to {args.json_out}")
    return 0 if verdict.all_ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Summarize a recorded observability event stream."""
    from repro.obs import render_summary, summarize_events
    from repro.obs.bus import read_events_jsonl
    from repro.obs.spans import SpanTracer, write_chrome_trace

    events = read_events_jsonl(args.path)
    if not events:
        print(f"{args.path}: no events")
        return 1
    summary = summarize_events(events)
    print(render_summary(summary, top=args.top))
    if args.chrome is not None:
        tracer = SpanTracer()
        tracer.replay(events)
        write_chrome_trace(tracer.spans, args.chrome)
        print(f"\nChrome trace ({len(tracer.spans)} spans) written to "
              f"{args.chrome}")
    return 0 if not summary.violations else 1


def cmd_bounds(args: argparse.Namespace) -> int:
    """Evaluate and print the Theorem 5 bounds without simulating."""
    params = ProtocolParams.derive(n=args.n, f=args.f, delta=args.delta,
                                   rho=args.rho, pi=args.pi,
                                   target_k=args.target_k)
    bounds = params.bounds()
    print(table(
        ["quantity", "value"],
        [
            ["SyncInt", params.sync_interval],
            ["MaxWait", params.max_wait],
            ["WayOff", params.way_off],
            ["epsilon (reading error)", params.epsilon],
            ["T (analysis interval)", bounds.t_interval],
            ["K", bounds.k],
            ["C (residue)", bounds.c],
            ["max deviation (Thm 5.i)", bounds.max_deviation],
            ["logical drift (Thm 5.ii)", bounds.logical_drift],
            ["discontinuity (Thm 5.ii)", bounds.discontinuity],
            ["recovery intervals (Claim 8)", bounds.recovery_intervals],
        ],
        title=f"Theorem 5 bounds for n={args.n}, f={args.f}, "
              f"delta={args.delta}, rho={args.rho}, PI={args.pi}",
        precision=6,
    ))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a campaign of JSON configs; print one row per run record."""
    import json as json_module
    import pathlib

    from repro.runner.campaign import Campaign

    configs = []
    for path in args.configs:
        try:
            payload = json_module.loads(pathlib.Path(path).read_text())
        except FileNotFoundError:
            print(f"config file not found: {path}", file=sys.stderr)
            return 2
        except json_module.JSONDecodeError as exc:
            print(f"invalid JSON in {path}: {exc}", file=sys.stderr)
            return 2
        if isinstance(payload, list):
            configs.extend(payload)
        elif isinstance(payload, dict):
            configs.append(payload)
        else:
            print(f"config root must be an object or list: {path}",
                  file=sys.stderr)
            return 2

    campaign = Campaign(configs=configs, warmup_intervals=args.warmup_intervals,
                        cache_dir=args.cache_dir,
                        stream_measures=args.stream,
                        backend=args.backend,
                        store_dir=args.store_dir)
    result = campaign.run(workers=args.workers, fresh=args.fresh)

    # The table and the JSON payload are both read back through the
    # columnar store — the sweep output exercises the same round trip
    # `repro evaluate` relies on.
    store = result.store()
    columns = store.query().select(
        "index", "name", "seed", "verdict.measured_deviation",
        "verdict.bound.max_deviation", "ok", "error")
    rows = []
    for position in range(store.n_runs):
        if columns["error"][position] is not None:
            rows.append([columns["index"][position], columns["name"][position],
                         columns["seed"][position], "-", "-",
                         f"ERROR: {columns['error'][position]}"])
        else:
            rows.append([columns["index"][position], columns["name"][position],
                         columns["seed"][position],
                         columns["verdict.measured_deviation"][position],
                         columns["verdict.bound.max_deviation"][position],
                         check_mark(columns["ok"][position])])
    print(table(["run", "scenario", "seed", "max dev", "bound", "ok"],
                rows, title="campaign", precision=4))
    print(f"\n{len(result.records)} runs: {result.executed} executed, "
          f"{result.cached} cached, {result.failed} failed")
    if result.scalar_fallbacks:
        print(f"{result.scalar_fallbacks} vector-backend runs fell back "
              f"to the scalar engine:")
        for reason, count in result.fallback_reasons().items():
            print(f"  {count}x {reason}")
    if args.store_dir is not None:
        print(f"results appended to store {args.store_dir}")
    if args.json_out is not None:
        import dataclasses as dc
        payload = {
            "records": [dc.asdict(record) for record in store.to_records()],
            "summary": {
                "runs": len(result.records),
                "executed": result.executed,
                "cached": result.cached,
                "failed": result.failed,
                "all_ok": result.all_ok,
                "scalar_fallbacks": result.scalar_fallbacks,
                "fallback_reasons": result.fallback_reasons(),
            },
        }
        pathlib.Path(args.json_out).write_text(
            json_module.dumps(payload, indent=2, sort_keys=True, default=str))
        print(f"records written to {args.json_out}")
    return 0 if result.all_ok else 1


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Judge a result store against registered evaluation specs."""
    import json as json_module
    import pathlib

    from repro.errors import EvaluationError, StoreError
    from repro.runner.evaluation import evaluate_all, registered_specs
    from repro.runner.store import ResultStore

    if args.list_specs:
        for name, spec in sorted(registered_specs().items()):
            print(f"{name}: {spec.description}")
        return 0
    if args.store_dir is None:
        print("store_dir is required (or use --list)", file=sys.stderr)
        return 2
    try:
        store = ResultStore.load(args.store_dir)
    except StoreError as exc:
        print(f"cannot load store: {exc}", file=sys.stderr)
        return 2
    try:
        reports = evaluate_all(store, names=args.spec)
    except EvaluationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for report in reports:
        print(report.render())
        print()
    judged = [report for report in reports if not report.skipped]
    failed = [report for report in judged if not report.passed]
    print(f"{len(reports)} specs: {len(judged) - len(failed)} passed, "
          f"{len(failed)} failed, {len(reports) - len(judged)} skipped "
          f"({store.n_runs} runs)")
    if args.json_out is not None:
        payload = {
            "store": str(args.store_dir),
            "runs": store.n_runs,
            "reports": [report.to_json() for report in reports],
        }
        pathlib.Path(args.json_out).write_text(
            json_module.dumps(payload, indent=2, sort_keys=True))
        print(f"reports written to {args.json_out}")
    if not judged:
        print("no spec applied to this store", file=sys.stderr)
        return 2
    return 1 if failed else 0


def cmd_soak(args: argparse.Namespace) -> int:
    """Run randomized f-limited segments; fail on any violated guarantee."""
    import dataclasses

    from repro.adversary.plans import PlanSpec, StrategySpec

    params = default_params(n=args.n, f=args.f, pi=2.0)
    bound = params.bounds().max_deviation
    failures = 0
    for segment in range(args.segments):
        seed = args.seed + segment
        # Declarative: the "random" kind derives its plan stream from
        # the scenario seed (salted), so each segment gets a fresh plan.
        plan = PlanSpec("random", StrategySpec("standard-mix"))
        scenario = benign_scenario(params, duration=args.segment_duration,
                                   seed=seed)
        scenario = dataclasses.replace(scenario, plan_builder=plan,
                                       name=f"soak-{segment}")
        result = run_scenario(scenario)
        verdict = result.verdict(warmup=warmup_for(params))
        recovery = result.recovery()
        ok = verdict.all_ok and recovery.all_recovered
        failures += 0 if ok else 1
        print(f"segment {segment:3d} seed={seed}: "
              f"dev={verdict.measured_deviation:.4f}/{bound:.4f} "
              f"corruptions={len(result.corruptions)} "
              f"recovered={recovery.all_recovered} "
              f"{'OK' if ok else 'VIOLATION'}")
    print(f"\n{args.segments - failures}/{args.segments} segments clean")
    return 0 if failures == 0 else 1


def cmd_live(args: argparse.Namespace) -> int:
    """Run Sync on real asyncio nodes and report live deviations."""
    import json as _json

    from repro.rt.live import run_live, run_single_node

    if args.node_index is not None:
        # Child mode (spawned by --processes): run one node, stream
        # samples as JSON lines for the parent to aggregate.
        summary = run_single_node(
            args.node_index, args.nodes, args.f, args.duration,
            delta=args.delta, rho=args.rho, pi=args.pi,
            base_port=args.base_port, epoch=args.epoch or 0.0,
            sample_interval=args.sample_interval, seed=args.seed,
            emit=lambda record: print(_json.dumps(record), flush=True))
        print(_json.dumps({"summary": summary}), flush=True)
        return 0

    if args.processes:
        return _cmd_live_processes(args)

    telemetry = (args.telemetry or args.metrics_port is not None
                 or args.trace_out is not None)
    bus = None
    captured = []
    if args.trace_out is not None:
        from repro.obs import EventBus
        bus = EventBus()
        bus.subscribe(captured.append)
    report = run_live(nodes=args.nodes, f=args.f, duration=args.duration,
                      delta=args.delta, rho=args.rho, pi=args.pi,
                      transport=args.transport,
                      sample_interval=args.sample_interval,
                      seed=args.seed, bus=bus,
                      serve_base_port=(args.serve_base_port if args.serve
                                       else None),
                      telemetry=telemetry,
                      metrics_port=args.metrics_port)
    print(f"live transport={report.transport} nodes={args.nodes} "
          f"f={args.f} duration={report.duration}s seed={args.seed}")
    if report.metrics_port is not None:
        print(f"metrics endpoint: http://127.0.0.1:{report.metrics_port}"
              f"/metrics (also /health, /stats)")
    if report.query_ports:
        answered = sum(report.queries_answered.values())
        failed = sum(report.queries_failed.values())
        malformed = sum(report.queries_malformed.values())
        ports = sorted(report.query_ports.values())
        print(f"time service: ports {ports[0]}-{ports[-1]}, "
              f"{answered} queries answered ({failed} failed, "
              f"{malformed} malformed dropped)")
    rows = []
    for node in sorted(report.series):
        deviations = [abs(dev) for _, dev in report.series[node]]
        rows.append([f"node {node}", report.rounds[node],
                     len(deviations), max(deviations), deviations[-1],
                     f"{report.service_readings[node]:.4f}"])
    print(table(["node", "syncs", "samples", "max |dev|", "final |dev|",
                 "service now()"], rows, title="per-node deviation series",
                precision=6))
    if report.transport_counters:
        drop_rows = [[f"node {node}" if node != "_" else "hub",
                      counters.get("transport_sent", 0),
                      counters.get("transport_delivered", 0),
                      counters.get("transport_malformed_dropped", "-"),
                      counters.get("transport_misrouted_dropped", "-"),
                      counters.get("transport_version_dropped", "-")]
                     for node, counters
                     in sorted(report.transport_counters.items())]
        print()
        print(table(["transport", "sent", "delivered", "malformed",
                     "misrouted", "version"], drop_rows,
                    title="transport counters", precision=0))
    bounded = report.bounded()
    print(f"\ncluster spread: max {report.max_spread():.6f} "
          f"final {report.final_spread():.6f} "
          f"bound {report.bound:.6f} {check_mark(bounded)}")
    print(f"obs events published: {report.events_published}")
    if report.telemetry:
        print(f"telemetry: wall-clock Theorem 5 probe violations: "
              f"{report.probe_violations}")
    if args.trace_out is not None:
        from repro.obs import event_to_json
        with open(args.trace_out, "w") as handle:
            for event in captured:
                handle.write(event_to_json(event) + "\n")
        print(f"{len(captured)} live events written to {args.trace_out} "
              f"(summarize with `repro trace`)")
    if args.json_out is not None:
        _write_json(report.to_dict(), args.json_out)
    return 0 if bounded else 1


def _write_json(payload, destination: str) -> None:
    """Write a JSON document to a file, or stdout for ``"-"``."""
    import json as _json

    text = _json.dumps(payload, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        with open(destination, "w") as handle:
            handle.write(text + "\n")
        print(f"JSON written to {destination}")


def _cmd_live_processes(args: argparse.Namespace) -> int:
    """Parent side of --processes: spawn one child per node, aggregate."""
    import json as _json
    import subprocess
    import time

    from repro.rt.live import aggregate_process_samples, default_live_params

    params = default_live_params(n=args.nodes, f=args.f, delta=args.delta,
                                 rho=args.rho, pi=args.pi)
    epoch = time.monotonic() + 1.0  # give every child time to bind first
    children = []
    for node in range(args.nodes):
        command = [sys.executable, "-m", "repro", "live",
                   "--node-index", str(node), "--nodes", str(args.nodes),
                   "--f", str(args.f), "--duration", str(args.duration),
                   "--delta", str(args.delta), "--rho", str(args.rho),
                   "--pi", str(args.pi), "--base-port", str(args.base_port),
                   "--epoch", repr(epoch), "--seed", str(args.seed),
                   "--sample-interval", str(args.sample_interval)]
        children.append(subprocess.Popen(command, stdout=subprocess.PIPE,
                                         text=True))
    samples, summaries = [], []
    failed = False
    for child in children:
        stdout, _ = child.communicate(timeout=args.duration + 30.0)
        failed = failed or child.returncode != 0
        for line in stdout.splitlines():
            record = _json.loads(line)
            (summaries if "summary" in record else samples).append(record)
    series = aggregate_process_samples(samples, args.nodes,
                                       args.sample_interval)
    bound = params.bounds().max_deviation
    print(f"live transport=udp processes={args.nodes} f={args.f} "
          f"duration={args.duration}s base_port={args.base_port}")
    rows = [[f"node {s['summary']['node']}", s["summary"]["rounds"],
             s["summary"]["samples"], s["summary"]["messages"]]
            for s in sorted(summaries, key=lambda s: s["summary"]["node"])]
    print(table(["process", "syncs", "samples", "messages"], rows,
                title="per-process summary"))
    if series:
        max_spread = max(spread for _, spread in series)
        bounded = not failed and max_spread <= bound
        print(f"\ncluster spread over {len(series)} aligned buckets: "
              f"max {max_spread:.6f} final {series[-1][1]:.6f} "
              f"bound {bound:.6f} {check_mark(bounded)}")
        return 0 if bounded else 1
    print("\nno aligned sample buckets (children overlapped too little)")
    return 1


def cmd_query(args: argparse.Namespace) -> int:
    """Issue client time queries against a `live --serve` node."""
    import asyncio
    from statistics import median
    from time import perf_counter

    from repro.service.query import OP_EPOCH, OP_NOW, OP_VALIDATE, QueryError, TimeQueryClient

    if args.stats or args.health:
        return _cmd_query_admin(args)

    async def drive() -> tuple[int, int, list[float]]:
        client = TimeQueryClient(host=args.host, port=args.port,
                                 timeout=args.timeout)
        await client.connect()
        succeeded = failed = 0
        latencies: list[float] = []
        try:
            # Seed validate queries with a real server timestamp.
            reply, _ = await client.request(OP_NOW)
            anchor_value, anchor_node = reply.value, reply.node
            ops = ([args.op] if args.op != "mixed"
                   else [OP_NOW, OP_VALIDATE, OP_EPOCH])
            for index in range(args.count):
                op = ops[index % len(ops)]
                start = perf_counter()
                try:
                    if op == OP_NOW:
                        await client.request(OP_NOW)
                    elif op == OP_VALIDATE:
                        await client.request(OP_VALIDATE,
                                             ts_value=anchor_value,
                                             ts_issuer=anchor_node,
                                             max_age=args.max_age)
                    else:
                        await client.request(OP_EPOCH,
                                             epoch_length=args.epoch_length)
                    succeeded += 1
                    latencies.append(perf_counter() - start)
                except QueryError as exc:
                    failed += 1
                    print(f"query {index} ({op}) failed: {exc}",
                          file=sys.stderr)
        finally:
            client.close()
        return succeeded, failed, latencies

    try:
        succeeded, failed, latencies = asyncio.run(drive())
    except QueryError as exc:
        print(f"query failed: {exc}", file=sys.stderr)
        return 1
    if latencies:
        ordered = sorted(latencies)
        p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
        print(f"queries: {succeeded} ok, {failed} failed against "
              f"{args.host}:{args.port}")
        print(f"latency: p50 {median(ordered) * 1e3:.2f} ms, "
              f"p99 {p99 * 1e3:.2f} ms")
    if args.json_out is not None and latencies:
        ordered = sorted(latencies)
        _write_json({"host": args.host, "port": args.port,
                     "succeeded": succeeded, "failed": failed,
                     "p50_s": median(ordered),
                     "p99_s": ordered[min(len(ordered) - 1,
                                          int(0.99 * len(ordered)))]},
                    args.json_out)
    return 0 if failed == 0 and succeeded == args.count else 1


def _cmd_query_admin(args: argparse.Namespace) -> int:
    """`repro query --stats/--health`: fetch introspection documents."""
    import asyncio
    import json as _json

    from repro.service.query import QueryError, TimeQueryClient

    async def fetch() -> dict:
        client = TimeQueryClient(host=args.host, port=args.port,
                                 timeout=args.timeout)
        await client.connect()
        try:
            return (await client.stats() if args.stats
                    else await client.health())
        finally:
            client.close()

    try:
        document = asyncio.run(fetch())
    except QueryError as exc:
        print(f"admin query failed: {exc}", file=sys.stderr)
        return 1
    if args.json_out is not None:
        _write_json(document, args.json_out)
    else:
        print(_json.dumps(document, indent=2, sort_keys=True))
    health = document.get("health", document)
    return 0 if health.get("bounded") else 1


def cmd_stats(args: argparse.Namespace) -> int:
    """Scrape a running cluster's metrics endpoint; print health tables.

    Exit code 0 requires: all three documents fetched, every
    ``--require`` metric family present in the exposition, and the
    health document reporting ``bounded=true``.
    """
    import json as _json
    import urllib.error
    import urllib.request

    from repro.obs.expo import metric_families

    base = f"http://{args.host}:{args.port}"

    def fetch(path: str) -> bytes:
        with urllib.request.urlopen(base + path,
                                    timeout=args.timeout) as response:
            return response.read()

    try:
        exposition = fetch("/metrics").decode("utf-8")
        stats = _json.loads(fetch("/stats"))
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"scrape of {base} failed: {exc}", file=sys.stderr)
        return 1

    health = stats.get("health", {})
    bound = health.get("bound")
    spread = health.get("spread")
    bounded = bool(health.get("bounded"))
    print(f"cluster at {base}: tau={health.get('tau', 0.0):.3f}s "
          f"nodes={health.get('nodes')} f={health.get('f')} "
          f"samples={health.get('samples')}")
    print(table(
        ["quantity", "value"],
        [
            ["spread (last sample)", spread if spread is not None else "-"],
            ["max spread", health.get("max_spread") or "-"],
            ["Theorem 5 bound", bound],
            ["bounded", check_mark(bounded)],
            ["probe violations", health.get("violations", "-")],
            ["query p50 (s)", health.get("query_p50") or "-"],
            ["query p99 (s)", health.get("query_p99") or "-"],
        ],
        title="live Theorem 5 health", precision=6,
    ))
    transport = stats.get("transport", {})
    queries = stats.get("queries", {})
    if transport:
        rows = []
        for node in sorted(transport, key=lambda k: (k == "_", k)):
            counters = transport[node]
            qc = queries.get(node, {})
            rows.append([
                "hub" if node == "_" else f"node {node}",
                health.get("rounds", {}).get(node, "-"),
                counters.get("transport_sent", 0),
                counters.get("transport_delivered", 0),
                counters.get("transport_malformed_dropped", "-"),
                counters.get("transport_misrouted_dropped", "-"),
                counters.get("transport_version_dropped", "-"),
                qc.get("queries_answered", "-"),
                qc.get("queries_failed", "-"),
            ])
        print()
        print(table(["node", "syncs", "sent", "delivered", "malformed",
                     "misrouted", "version", "answered", "q_failed"],
                    rows, title="per-node transport / query counters",
                    precision=0))
    missing: list[str] = []
    if args.require:
        present = metric_families(exposition)
        missing = [family for family in
                   (f.strip() for f in args.require.split(","))
                   if family and family not in present]
        if missing:
            print(f"\nMISSING metric families: {', '.join(missing)}",
                  file=sys.stderr)
        else:
            print(f"\nall required metric families present")
    if args.json_out is not None:
        _write_json(stats, args.json_out)
    return 0 if bounded and not missing else 1


def cmd_list(args: argparse.Namespace) -> int:
    """Print the available scenarios and registered protocols."""
    print("scenarios: " + ", ".join(sorted(SCENARIOS)))
    print("protocols: " + ", ".join(registered_protocols()))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {"run": cmd_run, "bounds": cmd_bounds, "list": cmd_list,
                "soak": cmd_soak, "trace": cmd_trace, "sweep": cmd_sweep,
                "evaluate": cmd_evaluate,
                "live": cmd_live, "query": cmd_query, "stats": cmd_stats}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
