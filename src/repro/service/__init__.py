"""Application-facing secure time services built on Sync.

The paper's Section 1 applications (proactive maintenance epochs,
freshness validation, expirations) expressed as an API whose tolerances
derive from the Theorem 5 bounds.
"""

from repro.service.monitor import Alert, MonitorThresholds, SyncHealthMonitor
from repro.service.query import (
    QueryError,
    TimeQuery,
    TimeQueryClient,
    TimeQueryServer,
    TimeReply,
    answer_query,
)
from repro.service.refresh import (
    KeyAnnouncement,
    RefreshingSyncProcess,
    RotationRecord,
    make_refreshing,
)
from repro.service.timeservice import SecureTimeService, Timestamp

__all__ = [
    "SecureTimeService",
    "Timestamp",
    "TimeQuery",
    "TimeReply",
    "TimeQueryServer",
    "TimeQueryClient",
    "QueryError",
    "answer_query",
    "SyncHealthMonitor",
    "MonitorThresholds",
    "Alert",
    "RefreshingSyncProcess",
    "make_refreshing",
    "KeyAnnouncement",
    "RotationRecord",
]
