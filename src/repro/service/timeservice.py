"""Secure time service: the application-facing API the paper motivates.

Section 1 motivates synchronized clocks with security applications:
time-stamping, payments and bids with expiration dates, Kerberos-style
freshness, and above all the periodic maintenance of proactive
security.  All of those need more than a raw clock value — they need to
*reason about other processors' clocks* through the synchronization
guarantee.  :class:`SecureTimeService` packages that reasoning:

* ``now()`` — this node's logical clock;
* ``epoch(length)`` — the clock-derived epoch number used by proactive
  refresh protocols, with :meth:`epochs_agree_within` giving the
  guaranteed cross-node epoch skew;
* ``validate_timestamp(ts, max_age)`` — Kerberos-style freshness: is a
  peer-issued timestamp plausibly fresh, given that a *good* peer's
  clock is within the deviation bound of ours?
* ``is_expired(expiry)`` / ``safe_expiry(ttl)`` — bid/payment
  expiration, where "expired for everyone" and "valid for everyone"
  differ by the deviation window.

All tolerances derive from the Theorem 5 deviation bound of the
underlying deployment's :class:`~repro.core.params.ProtocolParams`, so
an application written against this API inherits the paper's guarantee:
among processors non-faulty per Definition 3, no validation decision
disagrees by more than the bound's window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.params import ProtocolParams
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.process import Process


@dataclass(frozen=True)
class Timestamp:
    """A clock reading issued by a node, for freshness validation.

    Attributes:
        value: The issuing node's logical clock at issue time.
        issuer: Node id (authenticated by the link layer in transit).
    """

    value: float
    issuer: int


class SecureTimeService:
    """Application-facing time API over a synchronized node.

    Args:
        process: The node's protocol process (supplies clock and time).
        params: Deployment parameters; the Theorem 5 deviation bound
            becomes the service's skew allowance.
        extra_allowance: Added slack on top of the bound (e.g. for
            message latency between issue and validation); defaults to
            ``delta``.
    """

    def __init__(self, process: "Process", params: ProtocolParams,
                 extra_allowance: float | None = None) -> None:
        self.process = process
        self.params = params
        self.skew = params.bounds().max_deviation
        self.extra = params.delta if extra_allowance is None else float(extra_allowance)
        if self.extra < 0:
            raise ConfigurationError(f"extra_allowance must be >= 0, got {self.extra}")

    # ------------------------------------------------------------------
    # Reading time
    # ------------------------------------------------------------------

    def now(self) -> float:
        """This node's logical clock value."""
        return self.process.local_now()

    def timestamp(self) -> Timestamp:
        """Issue a timestamp as this node."""
        return Timestamp(value=self.now(), issuer=self.process.node_id)

    # ------------------------------------------------------------------
    # Epochs (proactive security)
    # ------------------------------------------------------------------

    def epoch(self, length: float) -> int:
        """Current epoch number ``floor(now / length)``.

        Raises:
            ConfigurationError: If ``length`` is not usefully larger
                than the deviation bound (epochs shorter than the clock
                disagreement are meaningless).
        """
        if length <= 2.0 * self.skew:
            raise ConfigurationError(
                f"epoch length {length} must exceed twice the deviation "
                f"bound {self.skew:.6g} to be meaningful"
            )
        return int(math.floor(self.now() / length))

    def epochs_agree_within(self, length: float) -> int:
        """Max epoch difference between good nodes: the guarantee.

        Two good clocks differ by at most the deviation bound, so their
        epoch numbers differ by at most ``ceil(bound / length)`` — with
        the :meth:`epoch` length check, that is always 1.
        """
        return max(1, math.ceil(self.skew / length))

    # ------------------------------------------------------------------
    # Freshness / expiration
    # ------------------------------------------------------------------

    def validate_timestamp(self, ts: Timestamp, max_age: float) -> bool:
        """Kerberos-style freshness check on a peer-issued timestamp.

        Accepts iff the timestamp could have been issued within the
        last ``max_age`` by a processor whose clock is within the
        deviation bound of ours: ``now - ts in [-skew - extra,
        max_age + skew + extra]``.  A timestamp from a *good* node
        issued within ``max_age - extra`` is always accepted; one older
        than ``max_age + 2*skew`` (by real time) is always rejected.
        """
        age = self.now() - ts.value
        allowance = self.skew + self.extra
        return -allowance <= age <= max_age + allowance

    def safe_expiry(self, ttl: float) -> float:
        """Expiry value for an item that must be accepted by every good
        node for at least ``ttl`` of local time: pad by the skew window."""
        return self.now() + ttl + self.skew + self.extra

    def is_expired(self, expiry: float, conservative: bool = True) -> bool:
        """Whether an expiry has passed.

        Args:
            expiry: The clock-value deadline.
            conservative: If True (default), only declare expiration
                when *every* good node agrees it expired (used when
                expiring causes an irreversible action, e.g. rejecting
                a payment); if False, declare it as soon as it is
                possibly expired anywhere (used for conservative
                acceptance).
        """
        margin = self.skew + self.extra
        if conservative:
            return self.now() - margin > expiry
        return self.now() + margin > expiry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SecureTimeService(node={self.process.node_id}, "
                f"skew={self.skew:.6g}, extra={self.extra:.6g})")
