"""Health monitoring for a synchronized node.

The paper's model has no fault *detection* — the protocol must work
without it — but an operator still wants telemetry: a node that keeps
discarding its own clock was probably just corrupted; a node whose
estimations keep timing out is watching the network degrade.  The
monitor consumes the node's own :class:`~repro.core.sync.SyncRecord`
stream (purely local information) and raises typed alerts.

Crucially, alerts are *advisory*: nothing in the protocol consumes
them, preserving the paper's no-detection-required property.  Tests
assert both that the interesting conditions raise alerts and that the
protocol's guarantees never depend on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.params import ProtocolParams
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.sync import SyncRecord


@dataclass(frozen=True)
class Alert:
    """One health finding.

    Attributes:
        kind: ``"way-off"``, ``"estimation-starvation"``, or
            ``"large-corrections"``.
        node: The node the alert concerns.
        real_time: When it was raised.
        detail: Human-readable explanation.
    """

    kind: str
    node: int
    real_time: float
    detail: str


@dataclass
class MonitorThresholds:
    """Tunable alert thresholds.

    Attributes:
        min_replies_fraction: Alert when fewer than this fraction of
            peers answered a Sync (estimation starvation).
        correction_factor: Alert when a correction exceeds this multiple
            of the discontinuity bound while the node believes itself
            good (not a WayOff jump).
        window: Re-alert period for the streak rules: once a rule fires,
            it re-arms and fires again after ``window`` further
            consecutive violating syncs, so a persistent condition is
            re-reported periodically instead of alerting once and going
            silent (or spamming every sync).
        starvation_streak: Consecutive starved syncs before alerting.
    """

    min_replies_fraction: float = 0.5
    correction_factor: float = 2.0
    window: int = 8
    starvation_streak: int = 3


class SyncHealthMonitor:
    """Watches one node's sync records and raises advisory alerts.

    Wire it with ``process.sync_listeners.append(monitor.on_sync)``.

    Args:
        params: Deployment parameters (for bounds-derived thresholds).
        node_id: The monitored node.
        thresholds: Alerting knobs.
        on_alert: Optional callback invoked per alert (e.g. a logger).

    Attributes:
        alerts: All alerts raised so far.
        obs: Observability event bus, or ``None`` (the default); alerts
            are additionally published as ``monitor.alert`` events when
            set.
    """

    def __init__(self, params: ProtocolParams, node_id: int,
                 thresholds: MonitorThresholds | None = None,
                 on_alert: Callable[[Alert], None] | None = None) -> None:
        self.params = params
        self.node_id = node_id
        self.thresholds = thresholds if thresholds is not None else MonitorThresholds()
        if not (0.0 < self.thresholds.min_replies_fraction <= 1.0):
            raise ConfigurationError(
                f"min_replies_fraction must be in (0, 1], got "
                f"{self.thresholds.min_replies_fraction}")
        if self.thresholds.window < 1:
            raise ConfigurationError(
                f"window must be >= 1, got {self.thresholds.window}")
        self.on_alert = on_alert
        self.obs = None
        self.alerts: list[Alert] = []
        self._starved_streak = 0
        self._large_streak = 0

    # ------------------------------------------------------------------

    def on_sync(self, record: "SyncRecord") -> None:
        """Sync-listener entry point."""
        if record.node_id != self.node_id:
            return
        self._check_way_off(record)
        self._check_starvation(record)
        self._check_large_correction(record)

    def _raise(self, kind: str, record: "SyncRecord", detail: str) -> None:
        alert = Alert(kind=kind, node=self.node_id, real_time=record.real_time,
                      detail=detail)
        self.alerts.append(alert)
        if self.obs is not None:
            self.obs.publish("monitor.alert", node=self.node_id, kind=kind,
                             detail=detail)
        if self.on_alert is not None:
            self.on_alert(alert)

    def _check_way_off(self, record: "SyncRecord") -> None:
        if record.own_discarded:
            self._raise(
                "way-off", record,
                f"discarded own clock (correction {record.correction:+.4g}); "
                f"likely just recovered from a break-in")

    def _check_starvation(self, record: "SyncRecord") -> None:
        peers = self.params.n - 1
        if peers <= 0:
            return
        if record.replies / peers < self.thresholds.min_replies_fraction:
            self._starved_streak += 1
            over = self._starved_streak - self.thresholds.starvation_streak
            # First alert at `starvation_streak`, then re-arm: one alert
            # every `window` further consecutive starved syncs.
            if over >= 0 and over % self.thresholds.window == 0:
                self._raise(
                    "estimation-starvation", record,
                    f"{self._starved_streak} consecutive syncs with fewer "
                    f"than {self.thresholds.min_replies_fraction:.0%} of "
                    f"peers answering")
        else:
            self._starved_streak = 0

    def _check_large_correction(self, record: "SyncRecord") -> None:
        if record.own_discarded:
            return  # the WayOff jump is expected to be large
        limit = self.thresholds.correction_factor \
            * self.params.bounds().discontinuity
        if abs(record.correction) > limit:
            self._large_streak += 1
            # Alert on the first oversized correction, then re-arm: one
            # alert per `window` further consecutive oversized ones.
            if (self._large_streak - 1) % self.thresholds.window == 0:
                self._raise(
                    "large-corrections", record,
                    f"correction {record.correction:+.4g} exceeds "
                    f"{self.thresholds.correction_factor:g}x the discontinuity "
                    f"bound {self.params.bounds().discontinuity:.4g}")
        else:
            self._large_streak = 0

    # ------------------------------------------------------------------

    def alert_counts(self) -> dict[str, int]:
        """Alerts grouped by kind."""
        counts: dict[str, int] = {}
        for alert in self.alerts:
            counts[alert.kind] = counts.get(alert.kind, 0) + 1
        return counts
