"""Live proactive-refresh layer: the paper's original motivation.

"The original motivation for this work came from the need to implement
secure clock synchronization for a proactive security toolkit [1]:
... algorithms for proactive security periodically perform some
`corrective/maintenance' action.  For example, they may replace secret
keys which may have been exposed to the attacker.  Clearly, the
security and reliability of such periodical protocols depend on
securely synchronized clocks."

:class:`RefreshingSyncProcess` runs that maintenance loop *live* on top
of Sync: every ``epoch_len`` of logical-clock time it rotates its
(simulated) key share and announces the new epoch to its peers.  The
security property — which the tests check across mobile Byzantine
storms — is that all Definition 3 good processors' key epochs agree to
within one at every instant, so a threshold of fresh shares always
exists and exposed shares age out on schedule.

Design notes mirroring the paper's mobile-adversary cautions:

* the epoch alarm is *re-armed after every Sync* (clock adjustments can
  move the next boundary) and recreated on recovery (the adversary may
  have killed it — the Section 3.3 alarm note);
* the epoch counter is **derived from the clock** (``floor(C /
  epoch_len)``), never stored authority: after a break-in the recovered
  clock re-derives the correct epoch with no detection or handshake —
  round-based protocols' unrecoverable round state is exactly what this
  avoids;
* rotations are monotone: a backward clock correction never un-rotates
  a key (old shares must never come back to life).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.sync import SyncProcess
from repro.errors import ConfigurationError
from repro.runtime.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams
    from repro.runtime.api import NodeRuntime


@dataclass(frozen=True)
class KeyAnnouncement:
    """Gossip: "I now hold the share for key epoch k".

    Attributes:
        epoch: The announced key epoch.
        holder: The announcing node (authenticated by the link layer).
    """

    epoch: int
    holder: int


@dataclass(frozen=True)
class RotationRecord:
    """One local key rotation, for auditing.

    Attributes:
        epoch: The epoch rotated into.
        real_time: When it happened.
        clock_value: The local clock at rotation.
    """

    epoch: int
    real_time: float
    clock_value: float


class RefreshingSyncProcess(SyncProcess):
    """Sync plus the clock-driven proactive maintenance loop.

    Args:
        epoch_len: Logical-clock seconds per key epoch; must exceed
            twice the Theorem 5 deviation bound for epochs to be
            meaningful (same rule as
            :meth:`repro.service.timeservice.SecureTimeService.epoch`).

    Attributes:
        key_epoch: Current key epoch held (monotone).
        rotations: Audit log of local rotations.
        peer_epochs: Last epoch announced by each peer.
    """

    def __init__(self, runtime: "NodeRuntime", params: "ProtocolParams",
                 start_phase: float = 0.0, epoch_len: float = 1.0) -> None:
        super().__init__(runtime, params, start_phase=start_phase)
        bound = params.bounds().max_deviation
        if epoch_len <= 2.0 * bound:
            raise ConfigurationError(
                f"epoch_len {epoch_len} must exceed twice the deviation "
                f"bound {bound:.6g}")
        self.epoch_len = float(epoch_len)
        self.key_epoch = 0
        self.rotations: list[RotationRecord] = []
        self.peer_epochs: dict[int, int] = {}
        self._epoch_timer = None
        self.sync_listeners.append(self._rearm_after_sync)

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Also (re)creates the maintenance alarm on start/recovery."""
        super().start()
        self._arm_epoch_timer()

    def _current_clock_epoch(self) -> int:
        return int(math.floor(self.local_now() / self.epoch_len))

    def _arm_epoch_timer(self) -> None:
        if self._epoch_timer is not None:
            self._epoch_timer.cancel()
        next_boundary = (self._current_clock_epoch() + 1) * self.epoch_len
        remaining = max(0.0, next_boundary - self.local_now())
        self._epoch_timer = self.set_local_timer(
            remaining + 1e-9, self._epoch_boundary, tag="key-epoch")

    def _rearm_after_sync(self, record) -> None:
        # A correction may have moved the next boundary (either way);
        # it may even have crossed one — catch up immediately.
        if self._current_clock_epoch() > self.key_epoch:
            self._rotate()
        self._arm_epoch_timer()

    def _epoch_boundary(self) -> None:
        if self._current_clock_epoch() > self.key_epoch:
            self._rotate()
        self._arm_epoch_timer()

    def _rotate(self) -> None:
        # Monotone: rotate forward to the clock-derived epoch, never back.
        self.key_epoch = max(self.key_epoch, self._current_clock_epoch())
        self.rotations.append(RotationRecord(
            epoch=self.key_epoch, real_time=self.real_now(),
            clock_value=self.local_now()))
        self.broadcast(KeyAnnouncement(epoch=self.key_epoch,
                                       holder=self.node_id))

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, KeyAnnouncement):
            if isinstance(payload.epoch, int) and payload.holder == message.sender:
                previous = self.peer_epochs.get(payload.holder, -1)
                self.peer_epochs[payload.holder] = max(previous, payload.epoch)
            return
        super().on_message(message)

    # ------------------------------------------------------------------

    def share_compatible_with(self, peer: int) -> bool:
        """Whether this node's share can combine with ``peer``'s last
        announced one (proactive schemes tolerate one epoch of skew)."""
        peer_epoch = self.peer_epochs.get(peer)
        if peer_epoch is None:
            return False
        return abs(peer_epoch - self.key_epoch) <= 1


def make_refreshing(epoch_len: float = 1.0):
    """Factory-factory for scenarios: ``protocol=make_refreshing(0.5)``."""

    def factory(runtime, params, start_phase):
        return RefreshingSyncProcess(runtime, params,
                                     start_phase=start_phase,
                                     epoch_len=epoch_len)

    return factory
